//! Behavior tomography and information leakage (the paper's §7 program).
//!
//! Generates a synthetic collector day, then — using nothing but the
//! observed update streams — infers which ASes tag, filter, or ignore
//! communities, counts interconnections revealed by geo tags, and flags
//! anomalous communities in a perturbed copy of the day. Each inference
//! is checked against the generator's ground truth.
//!
//! Run with `cargo run --release --example infer_behavior`.

use keep_communities_clean::analysis::anomaly::{AnomalyConfig, CommunityProfiler};
use keep_communities_clean::analysis::interconnect::infer_interconnections;
use keep_communities_clean::analysis::tomography::{
    classify_ases, infer_behaviors, TomographyConfig,
};
use keep_communities_clean::analysis::{clean_archive, CleaningConfig};
use keep_communities_clean::tracegen::{generate_mar20, Mar20Config};
use keep_communities_clean::types::{Community, MessageKind};

fn main() {
    let cfg = Mar20Config { target_announcements: 60_000, ..Default::default() };
    let mut out = generate_mar20(&cfg);
    clean_archive(&mut out.archive, &out.registry, &CleaningConfig::default());
    println!(
        "observed {} updates over {} sessions\n",
        out.archive.update_count(),
        out.archive.session_count()
    );

    // 1. Who tags, who filters, who ignores? (§7: "classify per-AS
    //    community behavior")
    let inferred = infer_behaviors(&out.archive, &TomographyConfig::default());
    let (taggers, filters, propagators) = classify_ases(&inferred);
    println!("inferred from update streams alone:");
    println!("  taggers:     {} ASes", taggers.len());
    println!("  filters:     {} ASes", filters.len());
    println!("  propagators: {} ASes", propagators.len());

    let true_taggers: Vec<_> =
        out.universe.transits.iter().filter(|t| t.tags_geo).map(|t| t.asn).collect();
    let correct = taggers.iter().filter(|a| true_taggers.contains(a)).count();
    println!(
        "  tagger precision vs ground truth: {}/{} correct (of {} true taggers)\n",
        correct,
        taggers.len(),
        true_taggers.len()
    );

    // 2. Interconnection counting (§7: "infer the number of
    //    interconnections between two ASes and the location where they
    //    peer").
    let links = infer_interconnections(&out.archive);
    let multi: Vec<_> = links.iter().filter(|(_, e)| e.cities.len() > 1).collect();
    println!(
        "interconnections revealed by geo tags: {} adjacencies, {} with >1 city",
        links.len(),
        multi.len()
    );
    if let Some(((x, t), est)) = multi.iter().max_by_key(|(_, e)| e.cities.len()) {
        println!(
            "  richest: AS{x} enters AS{t} at ≥{} distinct cities {:?}\n",
            est.cities.len(),
            est.cities.iter().take(6).collect::<Vec<_>>()
        );
    }

    // 3. Anomaly detection (§7: "predicting anomalous communities").
    //    Train on the clean day, then perturb a copy: inject a blackhole
    //    signal and a fat-fingered community value.
    let mut profiler = CommunityProfiler::new();
    profiler.train(&out.archive);
    let mut perturbed = out.archive.clone();
    let (key, _) = perturbed.sessions().next().map(|(k, r)| (k.clone(), r.clone())).unwrap();
    {
        let rec = perturbed.sessions_mut().find(|(k, _)| **k == key).map(|(_, r)| r).unwrap();
        if let Some(u) =
            rec.updates.iter_mut().find(|u| matches!(u.kind, MessageKind::Announcement(_)))
        {
            if let MessageKind::Announcement(attrs) = &mut u.kind {
                let attrs = std::sync::Arc::make_mut(attrs);
                attrs
                    .communities
                    .insert(keep_communities_clean::types::community::well_known::BLACKHOLE);
                attrs.communities.insert(Community::from_parts(2007, 9_999));
            }
        }
    }
    let alerts = profiler.detect(&perturbed, &AnomalyConfig::default());
    println!("alerts raised on the perturbed day: {}", alerts.len());
    for a in alerts.iter().take(5) {
        println!("  {a}");
    }
    assert!(!alerts.is_empty(), "injected anomalies must be detected");
}
