//! Corpus-scale pipeline: K synthetic vantages → K MRT files → one
//! parallel cross-collector analysis, in constant memory.
//!
//! The multi-collector analogue of `internet_scale`: the same generated
//! day is observed from K collectors (each vantage streamed straight to
//! its own MRT file, never materialized), then `run_corpus_report`
//! pulls all K files through per-collector cleaning and the corpus sink
//! stack in parallel and prints the cross-collector comparison report.
//! Peak resident analysis state is one `PathAttributes` per
//! `(prefix, session)` stream *summed over the collectors* — the number
//! printed at the end, and the one the `corpus-scale` CI job caps with
//! `ulimit -v`.
//!
//! Run with
//! `cargo run --release --example corpus_scale [-- <announcements> [<collectors> [<threads>]]]`.

use std::fs::File;
use std::io::{BufWriter, Write as _};

use keep_communities_clean::analysis::corpus::run_corpus_report;
use keep_communities_clean::analysis::{CleaningConfig, Corpus, MrtFileOptions};
use keep_communities_clean::tracegen::universe::UniverseConfig;
use keep_communities_clean::tracegen::{
    vantage_names, write_vantage_mrt, Mar20Config, MultiVantageConfig, VantageSource,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nums: Vec<u64> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let target: u64 = nums.first().copied().unwrap_or(200_000);
    let collectors: usize = nums.get(1).copied().unwrap_or(6) as usize;
    let threads: usize = nums.get(2).copied().unwrap_or(3) as usize;

    let cfg = MultiVantageConfig {
        base: Mar20Config {
            target_announcements: target,
            universe: UniverseConfig {
                n_collectors: collectors,
                n_sessions: (collectors * 24).max(96),
                n_peers: (collectors * 10).max(40),
                ..Default::default()
            },
            ..Default::default()
        },
        force_second_granularity: Vec::new(),
    };

    // Phase 1: stream each vantage of the shared day to its own MRT
    // file — one session resident at a time, K files on disk.
    let dir = std::env::temp_dir().join(format!("kcc_corpus_scale_{target}_{collectors}"));
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    let names = vantage_names(&cfg.base);
    println!(
        "generating a ~{target}-announcement day as {} vantages into {}…",
        names.len(),
        dir.display()
    );
    let registry = VantageSource::new(&cfg, &names[0]).registry().clone();
    let mut total_updates = 0u64;
    let mut vantage_files = Vec::new();
    for name in &names {
        let path = dir.join(format!("{name}.mrt"));
        let writer = BufWriter::new(File::create(&path).expect("create MRT file"));
        let (updates, route_servers) =
            write_vantage_mrt(&cfg, name, writer).expect("write vantage MRT");
        println!("   {name}: {updates} updates");
        total_updates += updates;
        vantage_files.push((path, route_servers));
    }

    // Phase 2: the corpus run — every file streamed record-at-a-time
    // through its own cleaning stage and sink stack, in parallel. The
    // per-vantage route-server lists ride along (session metadata MRT
    // cannot carry), so the §4 route-server insertion stage really runs.
    let mut corpus = Corpus::new();
    for (path, route_servers) in vantage_files {
        let options = MrtFileOptions { route_servers, ..Default::default() };
        corpus.push_mrt_file_with(&path, cfg.base.epoch_seconds, &options).expect("corpus member");
    }
    let report = run_corpus_report(corpus, threads, &registry, CleaningConfig::default())
        .expect("corpus run");

    print!("{}", report.render());
    println!(
        "\npipeline: {} updates over {} sessions, {} streams, peak state {} bytes ({:.1} MiB)",
        report.stats.updates,
        report.stats.sessions,
        report.stats.streams,
        report.stats.peak_state_bytes,
        report.stats.peak_state_bytes as f64 / (1024.0 * 1024.0),
    );
    assert_eq!(report.stats.updates, total_updates, "every generated update analyzed");
    let _ = std::io::stdout().flush();
    if std::env::var_os("KCC_KEEP_CORPUS").is_some() {
        println!("keeping {} (KCC_KEEP_CORPUS set)", dir.display());
    } else {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
