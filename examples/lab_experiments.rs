//! The paper's §3 controlled experiments, narrated.
//!
//! Builds the Figure 1 topology (collector C1 — X1 — Y1/Y2/Y3 — Z1) for
//! each of the five router implementations the paper tested and walks
//! through Exp1–Exp4, printing what crossed the Y1–X1 link and what
//! reached the collector.
//!
//! Run with `cargo run --example lab_experiments`.

use keep_communities_clean::sim::lab::{run_experiment, LabExperiment};
use keep_communities_clean::sim::VendorProfile;

fn main() {
    for exp in LabExperiment::ALL {
        println!("=== {} ===", exp.name());
        match exp {
            LabExperiment::Exp1 => println!(
                "No communities configured. Disabling Y1-Y2 changes Y1's next hop\n\
                 internally; the eBGP-visible route is unchanged."
            ),
            LabExperiment::Exp2 => println!(
                "Y2 tags Y:300 and Y3 tags Y:400 on ingress from Z. The internal\n\
                 switch now changes the visible community attribute."
            ),
            LabExperiment::Exp3 => println!(
                "As Exp2, but X1 removes all communities on egress toward the\n\
                 collector."
            ),
            LabExperiment::Exp4 => {
                println!("As Exp3, but X1 removes communities on ingress from Y1 instead.")
            }
        }
        println!();
        for vendor in VendorProfile::ALL {
            let r = run_experiment(exp, vendor);
            let collector_detail = r
                .at_collector
                .first()
                .and_then(|m| m.update.attrs())
                .map(|a| format!(" (path [{}], comms [{}])", a.as_path, a.communities))
                .unwrap_or_default();
            println!(
                "  {:<24} Y1->X1: {}  collector: {}{}{}",
                vendor.name,
                r.y1_to_x1.len(),
                r.at_collector.len(),
                collector_detail,
                if r.duplicates_suppressed > 0 { "  [duplicates suppressed]" } else { "" },
            );
        }
        println!();
    }

    println!("Summary (matches the paper's §3):");
    println!(" * All tested implementations except Junos emit duplicate updates by default.");
    println!(" * A community change alone triggers updates that propagate transitively.");
    println!(" * Egress cleaning still leaks an attribute-free duplicate (nn).");
    println!(" * Ingress cleaning is the only configuration that silences the collector.");
}
