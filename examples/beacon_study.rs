//! A full simulated beacon study (the paper's §6 methodology).
//!
//! Simulates a mid-scale Internet for one RIS beacon day, then runs the
//! complete analysis pipeline on the collector's capture: announcement
//! classification, per-session distributions, community-exploration
//! detection with geo decoding, and revealed-information statistics.
//!
//! Run with `cargo run --release --example beacon_study`.

use keep_communities_clean::adapter::capture_to_archive;
use keep_communities_clean::analysis::exploration::{detect, summarize};
use keep_communities_clean::analysis::revealed::revealed_attributes;
use keep_communities_clean::analysis::sessions::{render_distribution, session_type_distribution};
use keep_communities_clean::analysis::{classify_archive, AnnouncementType};
use keep_communities_clean::collector::{BeaconEvent, BeaconSchedule};
use keep_communities_clean::sim::{Network, SimConfig, SimDuration, SimTime};
use keep_communities_clean::topology::{generate, RouterId, Tier, TopologyConfig};
use keep_communities_clean::types::{Asn, Prefix};

fn main() {
    let beacon: Prefix = "84.205.64.0/24".parse().unwrap();
    let beacon_router = RouterId { asn: Asn(12_654), index: 0 };

    // A 30-AS Internet with multi-router transits and a dual-homed beacon
    // origin.
    let topo = generate(&TopologyConfig {
        n_tier1: 3,
        n_transit: 10,
        n_stub: 16,
        routers_transit: (3, 5),
        parallel_link_prob: 0.5,
        with_beacon_origin: true,
        beacon_prefixes: vec![beacon],
        ..Default::default()
    });
    let mut net = Network::from_topology(&topo, SimConfig::default());
    let peers: Vec<RouterId> =
        topo.nodes().filter(|n| n.tier == Tier::Transit).map(|n| n.router_id(0)).collect();
    let (collector, _) = net.attach_collector(Asn(3333), &peers);

    // Converge, park the beacon in withdrawn state, then play one day of
    // the RIS schedule (announce 00:00 +4h, withdraw 02:00 +4h).
    net.announce_all_origins(&topo, SimTime::ZERO);
    net.run_until_quiet();
    net.schedule_withdraw(net.now() + SimDuration::from_secs(10), beacon_router, beacon);
    net.run_until_quiet();
    net.clear_captures();
    let day_start = SimTime(((net.now().0 / 60_000_000) + 2) * 60_000_000);
    let schedule = BeaconSchedule::default();
    for (offset, event) in schedule.day_events() {
        let at = SimTime(day_start.0 + offset);
        match event {
            BeaconEvent::Announce => net.schedule_announce(at, beacon_router, beacon),
            BeaconEvent::Withdraw => net.schedule_withdraw(at, beacon_router, beacon),
        }
    }
    net.run_until_quiet();
    println!(
        "simulated one beacon day: {} events, {} messages delivered\n",
        net.stats.events_processed, net.stats.messages_delivered
    );

    // Analysis pipeline on the capture, rebased to the day origin.
    let capture = net.capture(collector).expect("capture").clone();
    let mut archive = capture_to_archive(&net, "rrc00", &capture, 1_584_230_400);
    for (_, rec) in archive.sessions_mut() {
        for u in &mut rec.updates {
            u.time_us = u.time_us.saturating_sub(day_start.0);
        }
    }

    let classified = classify_archive(&archive);
    println!(
        "collector saw {} announcements / {} withdrawals over {} sessions",
        classified.counts.announcement_total(),
        classified.counts.withdrawals,
        archive.session_count()
    );
    for t in AnnouncementType::ALL {
        println!("  {t}: {:>5}  ({:.1}%)", classified.counts.get(t), classified.counts.share(t));
    }

    println!("\nper-session distribution for {beacon}:");
    let rows = session_type_distribution(&classified, &beacon, Some("rrc00"));
    println!("{}", render_distribution(&rows[..rows.len().min(10)]));

    let episodes = detect(&classified, &schedule, &[beacon]);
    let summary = summarize(&episodes);
    println!(
        "community exploration: {} withdrawal-phase episodes, {} with multiple revealed locations, {} nc updates",
        summary.episodes, summary.exploration_episodes, summary.total_nc
    );
    if let Some(e) = episodes.iter().max_by_key(|e| e.locations.len()) {
        println!(
            "  richest episode: session {} phase {} revealed {} locations: {:?}",
            e.session,
            e.phase,
            e.locations.len(),
            e.locations.iter().take(6).collect::<Vec<_>>()
        );
    }

    let revealed = revealed_attributes(&archive, &schedule, &[beacon]);
    println!(
        "\nrevealed community attributes: {} unique, {} exclusively during withdrawals ({:.0}%)",
        revealed.total,
        revealed.withdrawal_only,
        revealed.withdrawal_ratio() * 100.0
    );
    println!("(the paper reports ~60% across ten years of RIS beacons)");
}
