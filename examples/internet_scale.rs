//! Internet-scale pipeline: generate → MRT bytes → stream → analyze.
//!
//! Exercises the full measurement pipeline the paper applies to
//! RouteViews/RIS data, at a configurable scale — **without ever holding
//! the day in memory**. The trace generator streams one session at a
//! time into an MRT file (what a real collector publishes); the analysis
//! then streams those bytes record-at-a-time through the §4 cleaning
//! stage and the §5 classifier into the Table 1 / Table 2 sinks in one
//! pass. Peak resident analysis state is one `PathAttributes` per
//! `(prefix, session)` stream, and the run prints that number next to
//! the tables.
//!
//! Run with `cargo run --release --example internet_scale [-- <announcements> [--batch]]`.
//!
//! `--batch` runs the pre-redesign path instead (read the whole archive
//! into memory, clean in place, classify) — useful for comparing memory
//! footprints: under a fixed address-space cap (see the `stream-scale`
//! CI job) the streaming path completes where the batch path cannot.

use std::fs::File;
use std::io::{BufReader, BufWriter};

use keep_communities_clean::analysis::table::{OverviewSink, TypeShares};
use keep_communities_clean::analysis::{
    clean_archive, CleaningConfig, CleaningStage, CountsSink, MrtSource, PipelineBuilder,
};
use keep_communities_clean::collector::archive::mrt_record_for;
use keep_communities_clean::collector::{SourceItem, UpdateArchive, UpdateSource};
use keep_communities_clean::mrt::MrtWriter;
use keep_communities_clean::tracegen::{Mar20Config, Mar20Source};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target: u64 = args.iter().find_map(|a| a.parse().ok()).unwrap_or(100_000);
    let batch = args.iter().any(|a| a == "--batch");

    let cfg = Mar20Config { target_announcements: target, ..Default::default() };
    let mrt_path = std::env::temp_dir().join(format!("kcc_internet_scale_{target}.mrt"));

    // Phase 1: stream the synthetic collector day to MRT bytes, one
    // session resident at a time.
    println!(
        "generating a synthetic collector day (~{target} announcements) to {}…",
        mrt_path.display()
    );
    let mut gen = Mar20Source::new(&cfg);
    let registry = gen.registry().clone();
    let route_servers = gen.route_server_peers();
    let mut writer =
        MrtWriter::new(BufWriter::new(File::create(&mrt_path).expect("create MRT file")));
    let mut generated = 0u64;
    while let Some(item) = gen.next_item().expect("generated sources cannot fail") {
        if let SourceItem::Update(meta, update) = item {
            writer.write_record(&mrt_record_for(&meta, cfg.epoch_seconds, &update)).expect("write");
            generated += 1;
        }
    }
    writer.flush().expect("flush");
    drop(writer);
    let mrt_bytes = std::fs::metadata(&mrt_path).map(|m| m.len()).unwrap_or(0);
    println!(
        "MRT archive: {generated} records, {:.1} MiB on disk",
        mrt_bytes as f64 / (1024.0 * 1024.0)
    );

    // Phase 2: one streaming pass over the bytes — cleaning, classifier,
    // Table 1 + Table 2 sinks together.
    let open_source = || {
        let file = BufReader::new(File::open(&mrt_path).expect("open MRT file"));
        MrtSource::new(file, "rrc00", cfg.epoch_seconds).with_route_servers(route_servers.clone())
    };

    let (report, overview, counts, stats) = if batch {
        // The pre-redesign path: materialize, clean in place, classify.
        let mut archive =
            UpdateArchive::from_source(&mut open_source(), cfg.epoch_seconds).expect("MRT import");
        let report = clean_archive(&mut archive, &registry, &CleaningConfig::default());
        let overview = keep_communities_clean::analysis::table::overview(&archive);
        let counts = keep_communities_clean::analysis::classify_archive(&archive).counts;
        (report, overview, counts, None)
    } else {
        let stage = CleaningStage::new(&registry, CleaningConfig::default());
        let out = PipelineBuilder::new(open_source())
            .stages(stage)
            .sink((OverviewSink::default(), CountsSink::default()))
            .run()
            .expect("MRT stream");
        let (overview_sink, counts_sink) = out.sink;
        (out.stages.report(), overview_sink.finish(), counts_sink.finish(), Some(out.stats))
    };

    println!(
        "cleaning: -{} unallocated-ASN, -{} unallocated-prefix, {} RS insertions, {} sessions normalized",
        report.removed_unallocated_asn,
        report.removed_unallocated_prefix,
        report.route_server_insertions,
        report.sessions_normalized
    );

    println!("\n{}", overview.render("Table 1 — overview (synthetic scale model)"));
    let shares = TypeShares::new(vec![("d_mar20".into(), counts)]);
    println!("{}", shares.render());
    println!(
        "no-path-change announcements: {:.1}% (the paper reports ~50%)",
        counts.share(keep_communities_clean::analysis::AnnouncementType::Nc)
            + counts.share(keep_communities_clean::analysis::AnnouncementType::Nn)
    );

    match stats {
        Some(stats) => println!(
            "\nstreaming state: {} sessions, {} (prefix, session) streams, \
             peak resident stream state ≈ {:.1} MiB ({} updates in one pass, mode=streaming)",
            stats.sessions,
            stats.streams,
            stats.peak_state_bytes as f64 / (1024.0 * 1024.0),
            stats.updates,
        ),
        None => println!("\nmode=batch: whole archive materialized (no streaming state bound)"),
    }

    let _ = std::fs::remove_file(&mrt_path);
}
