//! Internet-scale pipeline: generate → MRT → clean → classify.
//!
//! Exercises the full measurement pipeline the paper applies to
//! RouteViews/RIS data, at a configurable scale: synthesize a March-2020
//! style collector day, serialize it to RFC 6396 MRT bytes, read it back
//! (exactly as one would read a downloaded archive), run the §4 cleaning
//! stages, and produce the Table 1 / Table 2 statistics.
//!
//! Run with `cargo run --release --example internet_scale [-- <announcements>]`.

use keep_communities_clean::analysis::table::{overview, TypeShares};
use keep_communities_clean::analysis::{classify_archive, clean_archive, CleaningConfig};
use keep_communities_clean::collector::UpdateArchive;
use keep_communities_clean::tracegen::{generate_mar20, Mar20Config};

fn main() {
    let target: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(100_000);

    println!("generating a synthetic collector day (~{target} announcements)…");
    let cfg = Mar20Config { target_announcements: target, ..Default::default() };
    let out = generate_mar20(&cfg);

    // Serialize to MRT and read it back: the bytes are what a real
    // collector would publish.
    let mut mrt_bytes = Vec::new();
    out.archive.write_mrt(&mut mrt_bytes).expect("MRT export");
    println!(
        "MRT archive: {} records, {:.1} MiB",
        out.archive.update_count(),
        mrt_bytes.len() as f64 / (1024.0 * 1024.0)
    );
    let mut archive = UpdateArchive::read_mrt(&mrt_bytes[..], "rrc00", out.archive.epoch_seconds)
        .expect("MRT import");

    // §4 cleaning: unallocated ASN/prefix filtering, route-server ASN
    // insertion, timestamp normalization.
    // (Session metadata like the route-server flag is not expressible in
    // MRT; carry it over from the generator, as the paper does from
    // external peer lists.)
    let rs_sessions: Vec<_> = out
        .archive
        .sessions()
        .filter(|(_, rec)| rec.meta.route_server)
        .map(|(k, _)| k.clone())
        .collect();
    for (key, rec) in archive.sessions_mut() {
        if rs_sessions.iter().any(|k| k.peer_asn == key.peer_asn && k.peer_ip == key.peer_ip) {
            rec.meta.route_server = true;
        }
    }
    let report = clean_archive(&mut archive, &out.registry, &CleaningConfig::default());
    println!(
        "cleaning: -{} unallocated-ASN, -{} unallocated-prefix, {} RS insertions, {} sessions normalized",
        report.removed_unallocated_asn,
        report.removed_unallocated_prefix,
        report.route_server_insertions,
        report.sessions_normalized
    );

    // Table 1 + Table 2.
    let stats = overview(&archive);
    println!("\n{}", stats.render("Table 1 — overview (synthetic scale model)"));
    let classified = classify_archive(&archive);
    let shares = TypeShares::new(vec![("d_mar20".into(), classified.counts)]);
    println!("{}", shares.render());
    println!(
        "no-path-change announcements: {:.1}% (the paper reports ~50%)",
        classified.counts.share(keep_communities_clean::analysis::AnnouncementType::Nc)
            + classified.counts.share(keep_communities_clean::analysis::AnnouncementType::Nn)
    );
}
