//! Quickstart: the paper's core finding in thirty lines.
//!
//! Reproduces Exp2 — a BGP community change alone, with no path change,
//! triggers an update that propagates through an intermediate AS to a
//! route collector — then classifies what the collector saw.
//!
//! Run with `cargo run --example quickstart`.

use keep_communities_clean::analysis::classify_pair;
use keep_communities_clean::sim::lab::{run_experiment, LabExperiment};
use keep_communities_clean::sim::VendorProfile;

fn main() {
    // Run the paper's Exp2 on simulated Cisco IOS routers: AS Y tags
    // routes from AS Z with Y:300 (via Y2) or Y:400 (via Y3); the Y1–Y2
    // session is disabled, forcing an internal switch to Y3.
    let report = run_experiment(LabExperiment::Exp2, VendorProfile::CISCO_IOS);

    println!("Exp2 on {}:", report.vendor);
    println!("  messages Y1 -> X1 after the link flap: {}", report.y1_to_x1.len());
    println!("  messages at the route collector:       {}", report.at_collector.len());

    // The update that reached the collector changed *only* communities.
    let before = report.y1_to_x1[0].update.attrs().expect("announcement");
    let at_collector = report.at_collector[0].update.attrs().expect("announcement");
    println!("  AS path seen by collector: {}", at_collector.as_path);
    println!("  communities:               {}", at_collector.communities);

    // Classify the transition the collector observed: communities changed,
    // path did not -> the paper's `nc` type ("community only").
    let mut previous = at_collector.clone();
    previous.communities = before.communities.clone();
    previous.communities.clear();
    previous.communities.insert(keep_communities_clean::types::Community::from_parts(65_002, 300));
    let atype = classify_pair(&previous, at_collector);
    println!("  announcement type at collector: {atype} (community only — an unnecessary update)");

    assert_eq!(atype.label(), "nc");
    println!("\nA community change alone triggered an inter-domain routing message.");
}
