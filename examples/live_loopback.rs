//! End-to-end live collection over loopback TCP — the CI-pinned proof
//! that the live subsystem reproduces the offline analysis exactly.
//!
//! generated internet → real BGP over TCP → session FSM → live pipeline
//!
//! A generated collector day is replayed by simulated peers speaking
//! real BGP (OPEN/capability negotiation, KEEPALIVEs, UPDATEs, Cease)
//! into an in-process `kccd`-style daemon that also rotates MRT dumps of
//! the feed. The run then verifies, and refuses to exit 0 otherwise:
//!
//! 1. the live pipeline's Table 1 / Table 2 are **byte-identical** to
//!    the offline `ArchiveSource` analysis of the same update set, and
//! 2. re-analyzing the rotated MRT dumps through `MrtSource` yields the
//!    same tables again.
//!
//! Run with `cargo run --release --example live_loopback [-- <announcements>]`.

use keep_communities_clean::analysis::table::{OverviewSink, TypeShares};
use keep_communities_clean::analysis::{CountsSink, MrtSource, PipelineBuilder};
use keep_communities_clean::collector::ArchiveSource;
use keep_communities_clean::peer::rotate::concat_dumps;
use keep_communities_clean::peer::{
    offline_reference, Collector, CollectorConfig, RotateConfig, StampMode,
};
use keep_communities_clean::sim::bridge::{replay_archive, BridgeConfig};
use keep_communities_clean::tracegen::{generate_mar20, Mar20Config};
use keep_communities_clean::types::Asn;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target: u64 = args.iter().find_map(|a| a.parse().ok()).unwrap_or(20_000);

    // Phase 1: a generated internet's collector day.
    let mut gen = Mar20Config { target_announcements: target, ..Default::default() };
    gen.universe.n_sessions = 48;
    let day = generate_mar20(&gen);
    let input = day.archive;
    let route_servers: Vec<_> = input
        .sessions()
        .filter(|(_, rec)| rec.meta.route_server)
        .map(|(k, _)| (k.peer_asn, k.peer_ip))
        .collect();
    println!(
        "generated day: {} updates over {} sessions ({} route-server)",
        input.update_count(),
        input.session_count(),
        route_servers.len()
    );

    // Phase 2: live collection. Logical stamping keeps the comparison
    // deterministic; MRT dumps rotate every 5 000 records.
    let dump_dir = std::env::temp_dir().join(format!("kcc_live_loopback_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dump_dir);
    let cfg = CollectorConfig::new("rrc00", Asn(3333), "198.51.100.1".parse().unwrap())
        .with_stamp(StampMode::logical(1_000))
        .with_route_servers(route_servers.clone())
        .with_mrt(RotateConfig::new(&dump_dir, 5_000));
    let mut collector = Collector::bind("127.0.0.1:0", cfg.clone()).expect("bind loopback");
    let addr = collector.local_addr();
    let source = collector.take_source();
    let stop = source.shutdown_flag();
    println!("daemon listening on {addr}; replaying over real BGP sessions…");

    let start = std::time::Instant::now();
    let report = replay_archive(addr, &input, &BridgeConfig::default()).expect("replay");
    collector.shutdown();
    let stats = collector.join();
    assert_eq!(report.updates_sent, input.update_count() as u64, "bridge sent everything");
    assert_eq!(stats.updates, report.updates_sent, "daemon ingested everything");
    println!(
        "ingested {} updates from {} sessions in {:.2} s ({} MRT records over {} dumps)",
        stats.updates,
        stats.sessions,
        start.elapsed().as_secs_f64(),
        stats.mrt_records,
        stats.mrt_files.len()
    );

    let live = PipelineBuilder::new(source)
        .sink((CountsSink::default(), OverviewSink::default()))
        .shutdown(&stop)
        .run()
        .expect("live run");
    let (live_counts, live_overview) = live.sink;
    let live_counts = live_counts.finish();
    let live_overview = live_overview.finish();

    // Phase 3: the offline analysis of the same update set.
    let reference = offline_reference(&input, &cfg);
    let offline = PipelineBuilder::new(ArchiveSource::new(&reference))
        .sink((CountsSink::default(), OverviewSink::default()))
        .run()
        .expect("offline run");
    let (off_counts, off_overview) = offline.sink;
    let off_counts = off_counts.finish();
    let off_overview = off_overview.finish();
    assert_eq!(live_counts, off_counts, "live Table 2 != offline");
    assert_eq!(live_overview, off_overview, "live Table 1 != offline");
    // Byte-for-byte on the rendered paper tables.
    let table1_live = live_overview.render("Table 1 — live capture");
    assert_eq!(table1_live, off_overview.render("Table 1 — live capture"));
    assert_eq!(
        TypeShares::new(vec![("live".into(), live_counts)]).render(),
        TypeShares::new(vec![("live".into(), off_counts)]).render()
    );
    println!("\n{}", table1_live);
    println!("\n{}", TypeShares::new(vec![("live".into(), live_counts)]).render());
    println!("\nlive == offline: OK");

    // Phase 4: the rotated dumps re-analyze to the same tables.
    let bytes = concat_dumps(&stats.mrt_files).expect("read dumps");
    let mrt = PipelineBuilder::new(
        MrtSource::new(&bytes[..], "rrc00", 0).with_route_servers(route_servers),
    )
    .sink((CountsSink::default(), OverviewSink::default()))
    .run()
    .expect("mrt reanalysis");
    let (mrt_counts, mrt_overview) = mrt.sink;
    assert_eq!(mrt_counts.finish(), live_counts, "MRT round-trip Table 2 != live");
    assert_eq!(mrt_overview.finish(), live_overview, "MRT round-trip Table 1 != live");
    println!("rotated MRT dumps re-analyze identically: OK");

    let _ = std::fs::remove_dir_all(&dump_dir);
    println!("\nPASS: live TCP BGP collection == offline analysis ({target} announcements)");
}
