//! Daemon soak — the CI-pinned proof that a single `kccd` holds
//! **thousands of concurrent BGP sessions** on a bounded worker pool
//! and still reproduces the offline analysis byte-for-byte.
//!
//! flood rig (N nonblocking speakers) → reactor daemon → live pipeline
//!
//! Phases, each a hard assertion:
//!
//! 1. **Concurrency.** N sessions (default 5 000) handshake and are
//!    held simultaneously Established — the daemon's own gauge must
//!    read N while its reactor runs a handful of shard threads.
//! 2. **Observability.** While the flood streams, the control socket's
//!    `metrics` command is scraped from outside; the rendered registry
//!    must corroborate the soak (every session counted established,
//!    ingestion underway, zero write-queue overflows). With
//!    `--metrics-out FILE` the scrape is kept — CI uploads it as an
//!    artifact.
//! 3. **Integrity.** Every session streams its share of a generated
//!    day; the live Table 1 / Table 2 must be byte-identical to the
//!    offline `ArchiveSource` analysis of the same update set.
//!
//! CI runs this under `ulimit -v`, so the memory to hold N sessions is
//! bounded too. Run with
//! `cargo run --release --example daemon_soak [-- <sessions> [updates] [--metrics-out FILE]]`.

use std::io::{BufRead, BufReader, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use keep_communities_clean::analysis::table::{OverviewSink, TypeShares};
use keep_communities_clean::analysis::{CountsSink, PipelineBuilder};
use keep_communities_clean::collector::{ArchiveSource, SessionKey, UpdateArchive};
use keep_communities_clean::peer::{
    offline_reference, sys, Collector, CollectorConfig, ControlServer, FloodOptions, FloodPlan,
    FloodRig, StampMode,
};
use keep_communities_clean::tracegen::{generate_mar20, Mar20Config};
use keep_communities_clean::types::Asn;

/// Value of an unlabeled series in a Prometheus text scrape.
fn scraped_value(scrape: &str, name: &str) -> u64 {
    scrape
        .lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(|v| v.trim().parse().expect("numeric metric value"))
        })
        .unwrap_or_else(|| panic!("metric {name} missing from scrape"))
}

/// Dials the control socket, issues `metrics`, returns the response up
/// to (excluding) the terminal `ok` line.
fn scrape_metrics(addr: SocketAddr) -> String {
    let stream = TcpStream::connect(addr).expect("dial control socket");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    let mut writer = stream.try_clone().expect("clone control stream");
    let mut reader = BufReader::new(stream);
    writeln!(writer, "metrics").expect("send metrics command");
    let mut scrape = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response line");
        assert!(!line.is_empty(), "control socket closed mid-scrape");
        if line.starts_with("ok") {
            return scrape;
        }
        assert!(!line.starts_with("err"), "metrics command failed: {line}");
        scrape.push_str(&line);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut nums = Vec::new();
    let mut metrics_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--metrics-out" {
            metrics_out = it.next().map(PathBuf::from);
        } else if let Ok(n) = a.parse::<u64>() {
            nums.push(n);
        }
    }
    let sessions = nums.first().copied().unwrap_or(5_000) as usize;
    let total_updates = nums.get(1).copied().unwrap_or(25_000);
    let want_fds = sessions as u64 * 2 + 512;
    if let Err(e) = sys::raise_nofile_limit(want_fds) {
        eprintln!("daemon_soak: cannot raise fd limit to {want_fds}: {e}");
    }

    // A generated day's updates, dealt round-robin over `sessions`
    // session keys so every speaker carries a realistic mix.
    let day = generate_mar20(&Mar20Config {
        target_announcements: total_updates + total_updates / 4,
        ..Default::default()
    });
    let mut workload = UpdateArchive::new(0);
    let mut dealt = 0u64;
    for (i, (_, update)) in day.archive.all_updates().iter().enumerate() {
        let p = i % sessions;
        let key = SessionKey::new(
            "soak",
            Asn(64_512 + p as u32),
            IpAddr::V4(Ipv4Addr::new(10, 99, (p >> 8) as u8, (p & 0xFF) as u8)),
        );
        workload.record(&key, update.clone());
        dealt += 1;
        if dealt >= total_updates {
            break;
        }
    }
    println!("soak: {} updates over {sessions} sessions", workload.update_count());

    let cfg = CollectorConfig::new("soak", Asn(3333), "198.51.100.1".parse().unwrap())
        .with_stamp(StampMode::logical(1_000));
    let mut collector = Collector::bind("127.0.0.1:0", cfg.clone()).expect("bind loopback");
    let addr = collector.local_addr();
    let source = collector.take_source();
    let stop = source.shutdown_flag();
    let gauges = collector.gauges();

    // Phase 1: all sessions concurrently Established, zero UPDATEs sent.
    let start = std::time::Instant::now();
    let plan = FloodPlan::from_archive(&workload, 90);
    assert_eq!(plan.session_count(), sessions);
    let rig = FloodRig::connect(addr, plan, FloodOptions::default()).expect("establish sessions");
    assert_eq!(rig.established_count(), sessions, "rig holds every session");
    // The rig counts a session Established when *its* FSM goes Up —
    // half a round-trip before the daemon processes the closing
    // KEEPALIVE — so the concurrency proof waits on the daemon's gauge.
    assert!(
        gauges.wait_for_established(sessions as u64, std::time::Duration::from_secs(30)),
        "daemon never reported {sessions} concurrent sessions"
    );
    println!(
        "soak: {sessions} sessions concurrently Established in {:.2} s \
         (daemon workers: {})",
        start.elapsed().as_secs_f64(),
        cfg.reactor.workers
    );

    // Phase 2 (observability): a live control socket, scraped from a
    // side thread once ingestion is underway — a real mid-soak scrape,
    // not a post-mortem read.
    let control =
        ControlServer::bind("127.0.0.1:0", collector.config_store(), collector.shutdown_handle())
            .expect("bind control socket");
    let control_addr = control.local_addr();
    let registry = collector.metrics();
    // The coordinator holds shutdown until the scrape lands, so the
    // daemon (and its control socket) are guaranteed alive mid-scrape
    // even when a small flood drains in milliseconds.
    let (scrape_done, scrape_gate) = std::sync::mpsc::channel::<()>();
    let scraper = std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while registry.counter_value("kcc_ingest_updates_total", &[]) == 0 {
            assert!(std::time::Instant::now() < deadline, "soak never started ingesting");
            std::thread::sleep(Duration::from_millis(5));
        }
        let scrape = scrape_metrics(control_addr);
        let established = scraped_value(&scrape, "kcc_reactor_sessions_established_total");
        let ingested = scraped_value(&scrape, "kcc_ingest_updates_total");
        let overflows = scraped_value(&scrape, "kcc_reactor_write_queue_overflows_total");
        assert_eq!(established, sessions as u64, "scrape disagrees with the soak's peer count");
        assert!(ingested > 0, "scraped mid-stream, ingest counter must be moving");
        assert_eq!(overflows, 0, "write queues must never overflow during the soak");
        if let Some(path) = metrics_out {
            std::fs::write(&path, &scrape).expect("write metrics scrape");
            println!("soak: metrics scrape written to {}", path.display());
        }
        println!(
            "soak: mid-soak scrape ok ({established} sessions established, \
             {ingested} updates ingested so far, 0 write-queue overflows)"
        );
        drop(scrape_done);
    });

    // Phase 3: stream, drain, compare tables byte-for-byte.
    let stream_start = std::time::Instant::now();
    let coordinator = std::thread::spawn(move || {
        let report = rig.stream().expect("flood stream");
        // Wait for the mid-soak scrape (Err means the scraper panicked;
        // proceed — the join below surfaces it) before tearing down.
        let _ = scrape_gate.recv_timeout(Duration::from_secs(90));
        collector.shutdown();
        (report, collector.join())
    });
    let live = PipelineBuilder::new(source)
        .sink((CountsSink::default(), OverviewSink::default()))
        .shutdown(&stop)
        .run()
        .expect("live run");
    let (report, stats) = coordinator.join().expect("coordinator thread");
    scraper.join().expect("metrics scraper thread");
    control.join();
    assert_eq!(report.updates_sent, workload.update_count() as u64, "rig sent everything");
    assert_eq!(stats.updates, report.updates_sent, "daemon ingested everything");
    assert_eq!(stats.peak_established, sessions as u64, "peak gauge saw full concurrency");
    println!(
        "soak: streamed + drained {} updates in {:.2} s",
        stats.updates,
        stream_start.elapsed().as_secs_f64()
    );

    let (live_counts, live_overview) = live.sink;
    let live_counts = live_counts.finish();
    let live_overview = live_overview.finish();
    let reference = offline_reference(&workload, &cfg);
    let offline = PipelineBuilder::new(ArchiveSource::new(&reference))
        .sink((CountsSink::default(), OverviewSink::default()))
        .run()
        .expect("offline run");
    let (off_counts, off_overview) = offline.sink;
    let off_counts = off_counts.finish();
    let off_overview = off_overview.finish();
    assert_eq!(live_counts, off_counts, "live Table 2 != offline");
    assert_eq!(live_overview, off_overview, "live Table 1 != offline");
    // Byte-for-byte on the rendered paper tables.
    let table1 = live_overview.render("Table 1 — soak capture");
    assert_eq!(table1, off_overview.render("Table 1 — soak capture"));
    let table2 = TypeShares::new(vec![("soak".into(), live_counts)]).render();
    assert_eq!(table2, TypeShares::new(vec![("soak".into(), off_counts)]).render());
    println!("\n{table1}");
    println!("\n{table2}");
    println!("\nPASS: {sessions} concurrent sessions, tables identical to offline analysis");
}
