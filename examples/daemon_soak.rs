//! Daemon soak — the CI-pinned proof that a single `kccd` holds
//! **thousands of concurrent BGP sessions** on a bounded worker pool
//! and still reproduces the offline analysis byte-for-byte.
//!
//! flood rig (N nonblocking speakers) → reactor daemon → live pipeline
//!
//! Phases, each a hard assertion:
//!
//! 1. **Concurrency.** N sessions (default 5 000) handshake and are
//!    held simultaneously Established — the daemon's own gauge must
//!    read N while its reactor runs a handful of shard threads.
//! 2. **Integrity.** Every session then streams its share of a
//!    generated day; the live Table 1 / Table 2 must be byte-identical
//!    to the offline `ArchiveSource` analysis of the same update set.
//!
//! CI runs this under `ulimit -v`, so the memory to hold N sessions is
//! bounded too. Run with
//! `cargo run --release --example daemon_soak [-- <sessions> [updates]]`.

use std::net::{IpAddr, Ipv4Addr};

use keep_communities_clean::analysis::table::{OverviewSink, TypeShares};
use keep_communities_clean::analysis::{CountsSink, PipelineBuilder};
use keep_communities_clean::collector::{ArchiveSource, SessionKey, UpdateArchive};
use keep_communities_clean::peer::{
    offline_reference, sys, Collector, CollectorConfig, FloodOptions, FloodPlan, FloodRig,
    StampMode,
};
use keep_communities_clean::tracegen::{generate_mar20, Mar20Config};
use keep_communities_clean::types::Asn;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut nums = args.iter().filter_map(|a| a.parse::<u64>().ok());
    let sessions = nums.next().unwrap_or(5_000) as usize;
    let total_updates = nums.next().unwrap_or(25_000);
    let want_fds = sessions as u64 * 2 + 512;
    if let Err(e) = sys::raise_nofile_limit(want_fds) {
        eprintln!("daemon_soak: cannot raise fd limit to {want_fds}: {e}");
    }

    // A generated day's updates, dealt round-robin over `sessions`
    // session keys so every speaker carries a realistic mix.
    let day = generate_mar20(&Mar20Config {
        target_announcements: total_updates + total_updates / 4,
        ..Default::default()
    });
    let mut workload = UpdateArchive::new(0);
    let mut dealt = 0u64;
    for (i, (_, update)) in day.archive.all_updates().iter().enumerate() {
        let p = i % sessions;
        let key = SessionKey::new(
            "soak",
            Asn(64_512 + p as u32),
            IpAddr::V4(Ipv4Addr::new(10, 99, (p >> 8) as u8, (p & 0xFF) as u8)),
        );
        workload.record(&key, update.clone());
        dealt += 1;
        if dealt >= total_updates {
            break;
        }
    }
    println!("soak: {} updates over {sessions} sessions", workload.update_count());

    let cfg = CollectorConfig::new("soak", Asn(3333), "198.51.100.1".parse().unwrap())
        .with_stamp(StampMode::logical(1_000));
    let mut collector = Collector::bind("127.0.0.1:0", cfg.clone()).expect("bind loopback");
    let addr = collector.local_addr();
    let source = collector.take_source();
    let stop = source.shutdown_flag();
    let gauges = collector.gauges();

    // Phase 1: all sessions concurrently Established, zero UPDATEs sent.
    let start = std::time::Instant::now();
    let plan = FloodPlan::from_archive(&workload, 90);
    assert_eq!(plan.session_count(), sessions);
    let rig = FloodRig::connect(addr, plan, FloodOptions::default()).expect("establish sessions");
    assert_eq!(rig.established_count(), sessions, "rig holds every session");
    // The rig counts a session Established when *its* FSM goes Up —
    // half a round-trip before the daemon processes the closing
    // KEEPALIVE — so the concurrency proof waits on the daemon's gauge.
    assert!(
        gauges.wait_for_established(sessions as u64, std::time::Duration::from_secs(30)),
        "daemon never reported {sessions} concurrent sessions"
    );
    println!(
        "soak: {sessions} sessions concurrently Established in {:.2} s \
         (daemon workers: {})",
        start.elapsed().as_secs_f64(),
        cfg.reactor.workers
    );

    // Phase 2: stream, drain, compare tables byte-for-byte.
    let stream_start = std::time::Instant::now();
    let coordinator = std::thread::spawn(move || {
        let report = rig.stream().expect("flood stream");
        collector.shutdown();
        (report, collector.join())
    });
    let live = PipelineBuilder::new(source)
        .sink((CountsSink::default(), OverviewSink::default()))
        .shutdown(&stop)
        .run()
        .expect("live run");
    let (report, stats) = coordinator.join().expect("coordinator thread");
    assert_eq!(report.updates_sent, workload.update_count() as u64, "rig sent everything");
    assert_eq!(stats.updates, report.updates_sent, "daemon ingested everything");
    assert_eq!(stats.peak_established, sessions as u64, "peak gauge saw full concurrency");
    println!(
        "soak: streamed + drained {} updates in {:.2} s",
        stats.updates,
        stream_start.elapsed().as_secs_f64()
    );

    let (live_counts, live_overview) = live.sink;
    let live_counts = live_counts.finish();
    let live_overview = live_overview.finish();
    let reference = offline_reference(&workload, &cfg);
    let offline = PipelineBuilder::new(ArchiveSource::new(&reference))
        .sink((CountsSink::default(), OverviewSink::default()))
        .run()
        .expect("offline run");
    let (off_counts, off_overview) = offline.sink;
    let off_counts = off_counts.finish();
    let off_overview = off_overview.finish();
    assert_eq!(live_counts, off_counts, "live Table 2 != offline");
    assert_eq!(live_overview, off_overview, "live Table 1 != offline");
    // Byte-for-byte on the rendered paper tables.
    let table1 = live_overview.render("Table 1 — soak capture");
    assert_eq!(table1, off_overview.render("Table 1 — soak capture"));
    let table2 = TypeShares::new(vec![("soak".into(), live_counts)]).render();
    assert_eq!(table2, TypeShares::new(vec![("soak".into(), off_counts)]).render());
    println!("\n{table1}");
    println!("\n{table2}");
    println!("\nPASS: {sessions} concurrent sessions, tables identical to offline analysis");
}
