//! Offline, API-compatible subset of the
//! [`criterion`](https://docs.rs/criterion) benchmark harness.
//!
//! The build environment has no crates.io access, so this shim implements
//! the surface the workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{throughput, sample_size, bench_function, finish}`,
//! `Bencher::iter`, [`Throughput`], [`black_box`] and the
//! `criterion_group!`/`criterion_main!` macros. Instead of Criterion's full
//! statistical analysis it runs a short warm-up followed by timed samples
//! and reports the median per-iteration time (plus throughput when
//! configured) on stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives timed iterations of one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Time `routine`, repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration calibration: target ~5ms samples.
        // Calibrate on the fastest of a few warm-up calls — the first call
        // often pays one-time costs (allocator growth, lazy init, cold
        // caches) that would undersize iters_per_sample for steady state.
        let mut one = Duration::MAX;
        let warmup_deadline = Instant::now() + Duration::from_millis(50);
        for _ in 0..5 {
            let start = Instant::now();
            black_box(routine());
            one = one.min(start.elapsed());
            if Instant::now() > warmup_deadline {
                break;
            }
        }
        let one = one.max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        self.iters_per_sample = (target.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn median(&self) -> Duration {
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted.get(sorted.len() / 2).copied().unwrap_or_default()
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate the group's per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Override the target measurement time (accepted for API parity; the
    /// shim's sample calibration ignores it).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher =
            Bencher { samples: Vec::new(), iters_per_sample: 1, sample_count: self.sample_size };
        f(&mut bencher);
        let median = bencher.median();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
                let per_sec = n as f64 / median.as_secs_f64();
                format!("  ({per_sec:.0} elem/s)")
            }
            Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
                let per_sec = n as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
                format!("  ({per_sec:.1} MiB/s)")
            }
            _ => String::new(),
        };
        println!("{}/{:<32} median {:>12.3?}{}", self.name, id, median, rate);
        self
    }

    /// Finish the group (upstream emits summary output here; the shim prints
    /// per-benchmark lines eagerly).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmarking group `{name}`");
        BenchmarkGroup { name, throughput: None, sample_size: 10, _criterion: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declare a benchmark group function, mirroring upstream `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark `main`, mirroring upstream `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100)).sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.finish();
    }
}
