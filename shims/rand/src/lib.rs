//! Offline, API-compatible subset of the [`rand`](https://docs.rs/rand)
//! crate (0.8 API).
//!
//! The build environment has no crates.io access, so the surface this
//! workspace uses — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`] — is implemented
//! here over a xoshiro256++ generator seeded via SplitMix64. All simulator
//! and tracegen code seeds explicitly, so determinism per seed is the only
//! distribution contract the workspace relies on.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the generator's native output.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// The conventional glob-import module.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
