//! Offline, API-compatible subset of the [`bytes`](https://docs.rs/bytes)
//! crate.
//!
//! The build environment for this workspace has no crates.io access, so the
//! exact surface the workspace uses — [`Bytes`], [`BytesMut`], [`Buf`] and
//! [`BufMut`] — is reimplemented here on top of `Vec<u8>`/`Arc`. Semantics
//! match upstream `bytes` 1.x for the implemented methods (including panics
//! on overruns); cheap zero-copy cloning of `Bytes` is preserved via `Arc`.
//! Swapping back to the upstream crate is a one-line change in the root
//! `Cargo.toml`.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Read access to a contiguous or segmented byte buffer with an internal
/// cursor.
pub trait Buf {
    /// Number of bytes between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;
    /// The bytes remaining, starting at the cursor.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when no bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte and advance.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16` and advance.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Read a big-endian `u32` and advance.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Read a big-endian `u64` and advance.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Copy `dst.len()` bytes into `dst` and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Copy the next `len` bytes into an owned [`Bytes`] and advance.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes out of bounds");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A cheaply cloneable immutable byte buffer.
///
/// Backed by an `Arc<[u8]>` plus a window; `clone` and [`Bytes::slice`] are
/// O(1) and share the underlying allocation, like upstream `bytes`.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes { data: Arc::from(src), start: 0, end: src.len() }
    }

    /// Create a buffer from a static slice.
    pub fn from_static(src: &'static [u8]) -> Self {
        Self::copy_from_slice(src)
    }

    /// Length of the remaining view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view of this buffer; `range` is relative to the
    /// current view.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Split off and return the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// The remaining bytes as a slice.
    fn view(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.view().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.view()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
    // Zero-copy, like upstream: share the Arc instead of the default
    // trait method's allocate-and-memcpy.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(..len);
        self.advance(len);
        out
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.view()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.view()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.view()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.view() == other.view()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.view() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.view().cmp(other.view())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.view().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.view() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable, uniquely owned byte buffer.
#[derive(Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
    read: usize,
}

// Like upstream `bytes`, equality is over the visible window only — a
// partially consumed buffer equals a fresh one with the same remaining
// bytes. The derive would also compare the consumed prefix.
impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.view() == other.view()
    }
}
impl Eq for BytesMut {}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap), read: 0 }
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.read
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Append the contents of another buffer.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Clear the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
        self.read = 0;
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.read > 0 {
            self.data.drain(..self.read);
        }
        Bytes::from(self.data)
    }

    /// Split off and return the first `at` unread bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.data[self.read..self.read + at].to_vec();
        self.read += at;
        BytesMut { data: head, read: 0 }
    }

    /// The unread bytes as a slice.
    fn view(&self) -> &[u8] {
        &self.data[self.read..]
    }

    /// The unread bytes as a mutable slice.
    fn view_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.read..]
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.view()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.read += cnt;
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.view()
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.view_mut()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.view()
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.clone().freeze(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(0x0102);
        buf.put_u32(0xdead_beef);
        buf.put_u64(42);
        let mut b = buf.freeze();
        assert_eq!(b.len(), 15);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u32(), 0xdead_beef);
        assert_eq!(b.get_u64(), 42);
        assert!(b.is_empty());
    }

    #[test]
    fn slice_is_relative_to_view() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        b.advance(2);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[3, 4]);
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.copy_to_bytes(3);
        assert_eq!(&head[..], &[1, 2, 3]);
        assert_eq!(b.remaining(), 1);
    }
}
