//! Offline, API-compatible subset of the
//! [`proptest`](https://docs.rs/proptest) property-testing framework.
//!
//! The build environment has no crates.io access, so this shim implements
//! the surface the workspace's property tests use: the [`proptest!`],
//! [`prop_oneof!`], [`prop_assert!`] and [`prop_assert_eq!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map`, tuple/range strategies,
//! [`arbitrary`] `any::<T>()`, [`collection::vec`] and [`option::of`].
//!
//! Semantics differences from upstream: generation is purely random from a
//! fixed deterministic seed (no coverage-guided exploration) and failing
//! cases are reported without shrinking. Each `proptest!` test runs
//! [`NUM_CASES`] cases.

/// Number of cases each `proptest!` test executes.
pub const NUM_CASES: u32 = 128;

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build an error carrying the failed assertion's message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic random source for test-case generation.
pub mod test_runner {
    /// SplitMix64-based generator; deterministic per construction.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator used by the [`crate::proptest!`] macro.
        pub fn deterministic() -> Self {
            TestRng { state: 0x9e37_79b9_7f4a_7c15 }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Core strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Box::new(self) }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.inner.new_value(rng)
        }
    }

    /// Uniform choice between alternative strategies of one value type;
    /// built by [`crate::prop_oneof!`].
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build a union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].new_value(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                    (self.start as i128 + draw) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let draw = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                    (lo as i128 + draw) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    let mut acc: u128 = 0;
                    for _ in 0..std::mem::size_of::<$t>().div_ceil(8) {
                        acc = (acc << 64) | rng.next_u64() as u128;
                    }
                    acc as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match upstream's default: Some with probability 0.75.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }

    /// `Option<V>` values wrapping `inner`'s output.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The conventional glob-import module.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each `fn` runs [`NUM_CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    let outcome = (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            $crate::NUM_CASES,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($option)),+
        ])
    };
}

/// Assert within a `proptest!` body; failure fails just this case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Assert inequality within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 10u32..20, w in 0u8..=4) {
            prop_assert!((10..20).contains(&v));
            prop_assert!(w <= 4);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![0u32..5, 100u32..105].prop_map(|x| x * 2)) {
            prop_assert!(v < 10 || (200..210).contains(&v));
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn vec_sizes(items in crate::collection::vec(any::<bool>(), 1..9)) {
            prop_assert!(!items.is_empty() && items.len() < 9);
        }
    }

    #[test]
    fn option_of_yields_both_variants() {
        let strat = crate::option::of(0u32..10);
        let mut rng = crate::test_runner::TestRng::deterministic();
        let draws: Vec<_> =
            (0..100).map(|_| crate::strategy::Strategy::new_value(&strat, &mut rng)).collect();
        assert!(draws.iter().any(|d| d.is_none()));
        assert!(draws.iter().any(|d| d.is_some()));
    }
}
