//! Collector RIB dumps: the simulator's per-peer table exported as
//! TABLE_DUMP_V2 ("bview") MRT and read back.

use keep_communities_clean::adapter::dump_rib;
use keep_communities_clean::mrt::{MrtReader, MrtRecord, MrtWriter};
use keep_communities_clean::sim::{Network, SimConfig, SimTime};
use keep_communities_clean::topology::{generate, Tier, TopologyConfig};
use keep_communities_clean::types::Asn;

fn converged_network() -> (Network, kcc_topology_reexp::RouterId, usize) {
    let topo =
        generate(&TopologyConfig { n_tier1: 2, n_transit: 4, n_stub: 6, ..Default::default() });
    let mut net = Network::from_topology(&topo, SimConfig::default());
    let peers: Vec<_> =
        topo.nodes().filter(|n| n.tier == Tier::Transit).map(|n| n.router_id(0)).collect();
    let n_peers = peers.len();
    let (collector, _) = net.attach_collector(Asn(3333), &peers);
    net.announce_all_origins(&topo, SimTime::ZERO);
    net.run_until_quiet();
    (net, collector, n_peers)
}

// Small alias so the helper signature stays readable.
use keep_communities_clean::topology as kcc_topology_reexp;

#[test]
fn dump_contains_peer_table_and_all_prefixes() {
    let (net, collector, n_peers) = converged_network();
    let records = dump_rib(&net, collector, "synthetic-bview", 1_584_230_400);
    assert!(!records.is_empty());
    let MrtRecord::PeerIndexTable(table) = &records[0] else {
        panic!("first record must be the PEER_INDEX_TABLE");
    };
    assert_eq!(table.peers.len(), n_peers);
    assert_eq!(table.view_name, "synthetic-bview");

    // Every prefix the collector knows appears exactly once.
    let rib_count = records.iter().filter(|r| matches!(r, MrtRecord::RibSnapshot(_))).count();
    let known = net.router(collector).expect("collector").loc_rib_len();
    assert_eq!(rib_count, known);
}

#[test]
fn dump_roundtrips_through_mrt_bytes() {
    let (net, collector, _) = converged_network();
    let records = dump_rib(&net, collector, "synthetic-bview", 1_584_230_400);

    let mut writer = MrtWriter::new(Vec::new());
    writer.write_all(&records).expect("write bview");
    let raw = writer.into_inner();
    let parsed: Vec<MrtRecord> = MrtReader::new(&raw[..]).map(|r| r.expect("parse")).collect();
    assert_eq!(parsed, records, "bview must round-trip bit-exactly");
}

#[test]
fn rib_entries_reference_valid_peers() {
    let (net, collector, _) = converged_network();
    let records = dump_rib(&net, collector, "v", 0);
    let MrtRecord::PeerIndexTable(table) = &records[0] else { panic!() };
    for r in &records[1..] {
        let MrtRecord::RibSnapshot(snap) = r else { panic!("only RIB after the table") };
        assert!(!snap.entries.is_empty(), "prefix {} has no entries", snap.prefix);
        for e in &snap.entries {
            assert!(
                (e.peer_index as usize) < table.peers.len(),
                "dangling peer index {}",
                e.peer_index
            );
            // The path's first AS matches the indexed peer.
            assert_eq!(
                e.attrs.as_path.first(),
                Some(table.peers[e.peer_index as usize].asn),
                "entry path must start at the announcing peer"
            );
        }
    }
}
