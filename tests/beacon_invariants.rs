//! Invariants of the simulated beacon day (the Figs. 3–5 substrate).

use keep_communities_clean::adapter::capture_to_archive;
use keep_communities_clean::analysis::beacon_phase::{label_archive, phase_counts};
use keep_communities_clean::analysis::classify_archive;
use keep_communities_clean::analysis::exploration::detect;
use keep_communities_clean::analysis::revealed::revealed_attributes;
use keep_communities_clean::collector::{BeaconEvent, BeaconSchedule};
use keep_communities_clean::sim::{Network, SimConfig, SimDuration, SimTime};
use keep_communities_clean::topology::{generate, RouterId, Tier, TopologyConfig};
use keep_communities_clean::types::{Asn, Prefix};

struct BeaconDay {
    archive: keep_communities_clean::collector::UpdateArchive,
    beacon: Prefix,
}

fn run_beacon_day(seed: u64) -> BeaconDay {
    let beacon: Prefix = "84.205.64.0/24".parse().unwrap();
    let beacon_router = RouterId { asn: Asn(12_654), index: 0 };
    let topo = generate(&TopologyConfig {
        seed,
        n_tier1: 3,
        n_transit: 8,
        n_stub: 10,
        routers_transit: (3, 4),
        parallel_link_prob: 0.5,
        with_beacon_origin: true,
        beacon_prefixes: vec![beacon],
        ..Default::default()
    });
    let mut net = Network::from_topology(&topo, SimConfig { seed, ..Default::default() });
    let peers: Vec<RouterId> =
        topo.nodes().filter(|n| n.tier == Tier::Transit).map(|n| n.router_id(0)).collect();
    let (collector, _) = net.attach_collector(Asn(3333), &peers);
    net.announce_all_origins(&topo, SimTime::ZERO);
    net.run_until_quiet();
    net.schedule_withdraw(net.now() + SimDuration::from_secs(10), beacon_router, beacon);
    net.run_until_quiet();
    net.clear_captures();
    let day_start = SimTime(((net.now().0 / 60_000_000) + 2) * 60_000_000);
    for (offset, event) in BeaconSchedule::default().day_events() {
        let at = SimTime(day_start.0 + offset);
        match event {
            BeaconEvent::Announce => net.schedule_announce(at, beacon_router, beacon),
            BeaconEvent::Withdraw => net.schedule_withdraw(at, beacon_router, beacon),
        }
    }
    net.run_until_quiet();
    let capture = net.capture(collector).expect("capture").clone();
    let mut archive = capture_to_archive(&net, "rrc00", &capture, 0);
    for (_, rec) in archive.sessions_mut() {
        for u in &mut rec.updates {
            u.time_us = u.time_us.saturating_sub(day_start.0);
        }
    }
    BeaconDay { archive, beacon }
}

#[test]
fn all_traffic_falls_inside_phases() {
    let day = run_beacon_day(42);
    let labeled = label_archive(&day.archive, &BeaconSchedule::default(), &[day.beacon]);
    assert!(!labeled.is_empty());
    let counts = phase_counts(&labeled);
    // Convergence after a scheduled event completes within the 15-minute
    // windows; nothing may appear outside them.
    assert_eq!(counts.outside, 0, "updates escaped the phase windows: {counts:?}");
    assert!(counts.in_announcement > 0);
    assert!(counts.in_withdrawal > 0, "path exploration must show in withdrawal phases");
}

#[test]
fn withdrawal_phases_dominate_update_volume() {
    // The paper's key observation: withdrawal phases carry the bursts
    // (path + community exploration), announcement phases converge fast.
    let day = run_beacon_day(42);
    let labeled = label_archive(&day.archive, &BeaconSchedule::default(), &[day.beacon]);
    let counts = phase_counts(&labeled);
    assert!(
        counts.in_withdrawal >= counts.in_announcement,
        "withdrawal-phase announcements ({}) should dominate announce-phase ones ({})",
        counts.in_withdrawal,
        counts.in_announcement
    );
}

#[test]
fn exploration_reveals_multiple_locations() {
    let day = run_beacon_day(42);
    let classified = classify_archive(&day.archive);
    let episodes = detect(&classified, &BeaconSchedule::default(), &[day.beacon]);
    assert!(!episodes.is_empty(), "no withdrawal-phase episodes detected");
    let multi = episodes.iter().filter(|e| e.locations.len() > 1).count();
    assert!(multi > 0, "no episode revealed multiple geo locations");
}

#[test]
fn majority_of_attributes_revealed_in_withdrawal_phases() {
    // The Fig. 6 shape: most unique community attributes appear only
    // during withdrawal phases (paper: ~60%, stable over a decade).
    let day = run_beacon_day(42);
    let revealed = revealed_attributes(&day.archive, &BeaconSchedule::default(), &[day.beacon]);
    assert!(revealed.total > 0, "no community attributes revealed at all");
    let ratio = revealed.withdrawal_ratio();
    assert!(ratio >= 0.3, "withdrawal-exclusive ratio {ratio:.2} too low (paper: ~0.6)");
}

#[test]
fn beacon_day_deterministic() {
    let a = run_beacon_day(7);
    let b = run_beacon_day(7);
    assert_eq!(a.archive.update_count(), b.archive.update_count());
    let ca = classify_archive(&a.archive).counts;
    let cb = classify_archive(&b.archive).counts;
    assert_eq!(ca, cb);
}
