//! Enforces the README's "Performance" section the same way
//! `tests/pipeline_readme.rs` enforces the streaming snippet: the
//! trajectory table's "now" column must equal the committed
//! `BENCH_pipeline.json` streaming figures, and the documented
//! reproduction commands must name the tolerance the `bench-smoke` CI
//! job actually gates on — so re-pinning the baseline without updating
//! the README (or vice versa) fails here first.

use std::fs;

/// Pulls every `"updates_per_sec":<digits>` value out of the streaming
/// objects of the committed baseline, in file order. The baseline is
/// machine-written single-line JSON; a tiny scan is enough here (the
/// structural parser lives in `bench_gate`, which CI runs against the
/// same file).
fn committed_streaming_rates(json: &str) -> Vec<u64> {
    let mut rates = Vec::new();
    for chunk in json.split("\"streaming\":").skip(1) {
        let tail = chunk.split("\"updates_per_sec\":").nth(1).expect("streaming rate");
        let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
        rates.push(digits.parse().expect("numeric rate"));
    }
    rates
}

fn with_thousands_separators(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[test]
fn readme_performance_table_matches_committed_baseline() {
    let readme = fs::read_to_string("README.md").unwrap();
    let section = readme
        .split("## Performance")
        .nth(1)
        .expect("README has a Performance section")
        .split("\n## ")
        .next()
        .unwrap();

    let baseline = fs::read_to_string("BENCH_pipeline.json").unwrap();
    let rates = committed_streaming_rates(&baseline);
    assert_eq!(rates.len(), 2, "baseline pins two day sizes");
    for rate in rates {
        let figure = format!("{} upd/s", with_thousands_separators(rate));
        assert!(
            section.contains(&figure),
            "README Performance table is stale: missing \"{figure}\" \
             from the committed BENCH_pipeline.json"
        );
    }
}

/// Pulls `(peers, updates_per_sec)` pairs out of the committed live
/// scaling baseline, in sweep order.
fn committed_live_points(json: &str) -> Vec<(u64, u64)> {
    let mut points = Vec::new();
    for chunk in json.split("{\"peers\":").skip(1) {
        let peers: String = chunk.chars().take_while(char::is_ascii_digit).collect();
        let tail = chunk.split("\"updates_per_sec\":").nth(1).expect("live rate");
        let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
        points.push((peers.parse().expect("peer count"), digits.parse().expect("numeric rate")));
    }
    points
}

#[test]
fn readme_live_scaling_table_matches_committed_baseline() {
    let readme = fs::read_to_string("README.md").unwrap();
    let section = readme
        .split("## Performance")
        .nth(1)
        .expect("README has a Performance section")
        .split("\n## ")
        .next()
        .unwrap();

    let baseline = fs::read_to_string("BENCH_live.json").unwrap();
    let points = committed_live_points(&baseline);
    assert_eq!(points.len(), 4, "baseline pins four sweep points");
    assert_eq!(points.last().map(|&(p, _)| p), Some(5_000), "sweep tops out at 5k sessions");
    for (peers, rate) in points {
        let row = format!(
            "| {} | {} upd/s |",
            with_thousands_separators(peers),
            with_thousands_separators(rate)
        );
        assert!(
            section.contains(&row),
            "README live scaling table is stale: missing \"{row}\" \
             from the committed BENCH_live.json"
        );
    }
}

#[test]
fn readme_reproduction_commands_match_ci_gate() {
    let readme = fs::read_to_string("README.md").unwrap();
    let section = readme.split("## Performance").nth(1).unwrap();
    let ci = fs::read_to_string(".github/workflows/ci.yml").unwrap();

    // The README documents the exact gate CI enforces.
    assert!(section.contains("--tolerance 0.25"), "README must state the gate tolerance");
    assert!(
        section.contains("--overhead-cap 2"),
        "README must state the absolute instrumentation-overhead cap"
    );
    assert!(
        ci.contains("--tolerance 0.25 --overhead-cap 2 --summary"),
        "CI bench-smoke must gate at the documented tolerance and overhead cap \
         and publish delta tables"
    );
    assert!(
        ci.contains("for b in pipeline live corpus watch"),
        "CI bench-smoke must gate all four committed baselines"
    );
    // And the commands name binaries that exist in the bench crate.
    for bin in ["bench_pipeline", "bench_gate"] {
        assert!(section.contains(bin), "README reproduction commands mention {bin}");
        assert!(
            fs::metadata(format!("crates/bench/src/bin/{bin}.rs")).is_ok(),
            "{bin} binary exists"
        );
    }
}
