//! Enforces the README's "Live collection" example, the same way
//! `tests/pipeline_readme.rs` enforces the streaming snippet: the code
//! below mirrors the README block verbatim (printing replaced by
//! assertions), so a live-API rename that would rot the documentation
//! fails here first — and the snippet's live results are checked against
//! the offline path they claim to equal.

use keep_communities_clean::analysis::pipeline::PipelineBuilder;
use keep_communities_clean::analysis::table::{OverviewSink, TypeShares};
use keep_communities_clean::analysis::{run_pipeline, CountsSink};
use keep_communities_clean::collector::ArchiveSource;
use keep_communities_clean::peer::{offline_reference, Collector, CollectorConfig, StampMode};
use keep_communities_clean::sim::bridge::{replay_archive, BridgeConfig};
use keep_communities_clean::tracegen::{generate_mar20, Mar20Config};
use keep_communities_clean::types::Asn;

#[test]
fn readme_live_example_runs_and_matches_offline() {
    // A live collector daemon on a loopback socket. `Logical` stamping
    // makes replays deterministic; a real deployment uses
    // `StampMode::Arrival`.
    let cfg = CollectorConfig::new("rrc00", Asn(3333), "198.51.100.1".parse().unwrap())
        .with_stamp(StampMode::logical(1_000));
    let mut collector = Collector::bind("127.0.0.1:0", cfg.clone()).unwrap();
    let source = collector.take_source();
    let stop = source.shutdown_flag();

    // Simulated peers: every session of a small generated collector day
    // dials in and speaks real BGP — OPEN, capability negotiation,
    // KEEPALIVEs, UPDATEs, Cease.
    let mut gen = Mar20Config { target_announcements: 2_000, ..Default::default() };
    gen.universe.n_sessions = 24;
    gen.universe.n_prefixes_v4 = 200;
    let day = generate_mar20(&gen);
    replay_archive(collector.local_addr(), &day.archive, &BridgeConfig::default()).unwrap();
    collector.shutdown();
    let stats = collector.join();
    assert_eq!(stats.updates, day.archive.update_count() as u64);

    // The live feed drives the same one-pass pipeline as any offline
    // source; `.shutdown(&stop)` makes the run drain-and-finish on
    // trigger.
    let out = PipelineBuilder::new(source)
        .sink((CountsSink::default(), OverviewSink::default()))
        .shutdown(&stop)
        .run()
        .unwrap();
    let (counts, overview) = out.sink;
    let counts = counts.finish();
    let overview = overview.finish();
    assert!(!overview.render("Table 1 — live").is_empty());
    assert!(!TypeShares::new(vec![("live".into(), counts)]).render().is_empty());

    // What the README asserts in prose: the live results equal the
    // offline ArchiveSource analysis of the same update set (under the
    // daemon's stamping/metadata rules, which `offline_reference`
    // computes).
    let reference = offline_reference(&day.archive, &cfg);
    let offline = run_pipeline(
        ArchiveSource::new(&reference),
        (),
        (CountsSink::default(), OverviewSink::default()),
    )
    .unwrap();
    let (off_counts, off_overview) = offline.sink;
    assert_eq!(counts, off_counts.finish(), "README's live counts != offline");
    assert_eq!(overview, off_overview.finish(), "README's live overview != offline");
}
