//! Simulator output through the analysis pipeline: the lab experiments'
//! collector captures must classify exactly as the paper describes.

use keep_communities_clean::adapter::capture_to_archive;
use keep_communities_clean::analysis::classify_archive;
use keep_communities_clean::sim::lab::{build_lab, lab_prefix, LabExperiment, LabNetwork};
use keep_communities_clean::sim::{SimDuration, SimTime, VendorProfile};

/// Runs a lab experiment with *two* link flaps so the collector stream
/// has enough history for the classifier (first flap establishes the
/// predecessor announcement, second one is classified).
fn archive_for(
    exp: LabExperiment,
    vendor: VendorProfile,
) -> keep_communities_clean::collector::UpdateArchive {
    let LabNetwork { mut net, ids } = build_lab(exp, vendor);
    net.schedule_announce(SimTime::ZERO, ids.z1, lab_prefix());
    net.run_until_quiet();
    // Flap down, up, and down again: the collector sees the Y:400 state,
    // the Y:300 state, and the Y:400 state again.
    let t1 = net.now() + SimDuration::from_secs(60);
    net.schedule_link_down(t1, ids.y1_y2);
    net.run_until_quiet();
    let t2 = net.now() + SimDuration::from_secs(60);
    net.schedule_link_up(t2, ids.y1_y2);
    net.run_until_quiet();
    let t3 = net.now() + SimDuration::from_secs(60);
    net.schedule_link_down(t3, ids.y1_y2);
    net.run_until_quiet();
    let capture = net.capture(ids.c1).expect("collector capture").clone();
    capture_to_archive(&net, "rrc00", &capture, 0)
}

#[test]
fn exp2_collector_stream_is_nc() {
    // Every post-initial announcement at the collector changes only the
    // community attribute: the paper's community-only (`nc`) type.
    let archive = archive_for(LabExperiment::Exp2, VendorProfile::CISCO_IOS);
    let classified = classify_archive(&archive);
    assert!(classified.counts.nc >= 2, "expected nc stream, got {:?}", classified.counts);
    assert_eq!(classified.counts.pc, 0);
    assert_eq!(classified.counts.pn, 0);
}

#[test]
fn exp3_collector_stream_is_nn() {
    // With egress cleaning at X1, the same flaps produce pure duplicates.
    let archive = archive_for(LabExperiment::Exp3, VendorProfile::CISCO_IOS);
    let classified = classify_archive(&archive);
    assert!(classified.counts.nn >= 2, "expected nn stream, got {:?}", classified.counts);
    assert_eq!(classified.counts.nc, 0, "no community may survive egress cleaning");
    // And none of the duplicates is explained by MED.
    assert_eq!(classified.counts.nn_med_only, 0);
}

#[test]
fn exp3_junos_collector_stream_is_empty_after_initial() {
    let archive = archive_for(LabExperiment::Exp3, VendorProfile::JUNOS);
    let classified = classify_archive(&archive);
    assert_eq!(
        classified.counts.classified_total(),
        0,
        "Junos must suppress every duplicate: {:?}",
        classified.counts
    );
}

#[test]
fn exp4_collector_silent_for_all_vendors() {
    for vendor in VendorProfile::ALL {
        let archive = archive_for(LabExperiment::Exp4, vendor);
        let classified = classify_archive(&archive);
        assert_eq!(
            classified.counts.classified_total(),
            0,
            "{vendor}: ingress cleaning must silence the collector"
        );
    }
}

#[test]
fn exp1_vendor_split_in_message_counts() {
    // Exp1 produces no collector traffic anywhere; the vendor difference
    // is on the monitored X1–Y1 link, visible in router counters.
    let LabNetwork { mut net, ids } = build_lab(LabExperiment::Exp1, VendorProfile::CISCO_IOS);
    net.schedule_announce(SimTime::ZERO, ids.z1, lab_prefix());
    net.run_until_quiet();
    net.schedule_link_down(net.now() + SimDuration::from_secs(60), ids.y1_y2);
    net.run_until_quiet();
    let y1 = net.router(ids.y1).expect("Y1");
    assert!(y1.counters.duplicates_sent >= 1, "IOS Y1 must transmit the duplicate");

    let LabNetwork { mut net, ids } = build_lab(LabExperiment::Exp1, VendorProfile::JUNOS);
    net.schedule_announce(SimTime::ZERO, ids.z1, lab_prefix());
    net.run_until_quiet();
    net.schedule_link_down(net.now() + SimDuration::from_secs(60), ids.y1_y2);
    net.run_until_quiet();
    let y1 = net.router(ids.y1).expect("Y1");
    assert!(y1.counters.duplicates_suppressed >= 1, "Junos Y1 must suppress");
    assert_eq!(y1.counters.duplicates_sent, 0);
}

#[test]
fn flap_cycle_returns_to_initial_state() {
    // After down→up the collector must hold the original Y:300 route
    // again: the nc updates carry real routing state, not noise.
    let LabNetwork { mut net, ids } = build_lab(LabExperiment::Exp2, VendorProfile::BIRD_2);
    net.schedule_announce(SimTime::ZERO, ids.z1, lab_prefix());
    net.run_until_quiet();
    let before = net
        .router(ids.c1)
        .and_then(|r| r.best_route(&lab_prefix()))
        .expect("converged route")
        .attrs
        .clone();
    net.schedule_link_down(net.now() + SimDuration::from_secs(60), ids.y1_y2);
    net.run_until_quiet();
    net.schedule_link_up(net.now() + SimDuration::from_secs(60), ids.y1_y2);
    net.run_until_quiet();
    let after = net
        .router(ids.c1)
        .and_then(|r| r.best_route(&lab_prefix()))
        .expect("recovered route")
        .attrs
        .clone();
    assert_eq!(before, after, "flap must fully heal the collector's view");
}
