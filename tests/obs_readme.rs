//! Enforces the README's "Observability" example, the same way
//! `tests/watch_readme.rs` enforces the watch snippet: the code below
//! mirrors the README block verbatim, so a registry-API rename that
//! would rot the documentation fails here first — and the exposition
//! lines the README promises must appear exactly as printed.

use keep_communities_clean::obs::Registry;

#[test]
fn readme_observability_example_renders_exactly_as_documented() {
    // Register once up front; the handles are Arc-shared atomics.
    let registry = Registry::new();
    let ingested = registry.counter("kcc_ingest_updates_total");
    let depth = registry.gauge("kcc_reactor_write_queue_peak_bytes");
    let stage = registry.histogram("kcc_pipeline_stage_nanos");
    let alerts = registry.counter_with("kcc_watch_alerts_total", &[("kind", "prefix-hijack")]);

    // Hot path: no locks, no allocation.
    ingested.add(3);
    depth.set_max(512);
    stage.observe(1_250);
    alerts.inc();

    // Prometheus text exposition — deterministically name- and
    // label-sorted, so equal data always renders byte-identically.
    let text = registry.render();
    assert!(text.contains("# TYPE kcc_ingest_updates_total counter"), "{text}");
    assert!(text.contains("kcc_ingest_updates_total 3"), "{text}");
    assert!(text.contains("kcc_watch_alerts_total{kind=\"prefix-hijack\"} 1"), "{text}");

    // Beyond the snippet: the other two kinds render too, and the
    // documented byte-identity holds for a second registry fed the
    // same data in a different order.
    assert!(text.contains("# TYPE kcc_reactor_write_queue_peak_bytes gauge"), "{text}");
    assert!(text.contains("kcc_reactor_write_queue_peak_bytes 512"), "{text}");
    assert!(text.contains("# TYPE kcc_pipeline_stage_nanos histogram"), "{text}");

    let again = Registry::new();
    again.counter_with("kcc_watch_alerts_total", &[("kind", "prefix-hijack")]).inc();
    again.histogram("kcc_pipeline_stage_nanos").observe(1_250);
    again.gauge("kcc_reactor_write_queue_peak_bytes").set_max(512);
    again.counter("kcc_ingest_updates_total").add(3);
    assert_eq!(again.render(), text);
}

/// The README names the real scrape surfaces; hold it to that.
#[test]
fn readme_observability_section_names_real_surfaces() {
    let readme = std::fs::read_to_string("README.md").unwrap();
    let section = readme
        .split("## Observability")
        .nth(1)
        .expect("README has an Observability section")
        .split("\n## ")
        .next()
        .unwrap();

    for needle in
        ["`metrics` command", "--profile-every", "--metrics-out", "daemon-soak", "bench_gate"]
    {
        assert!(section.contains(needle), "Observability section lost {needle:?}");
    }
    // The determinism tests it cites exist.
    for path in ["crates/obs/tests/render_props.rs", "tests/obs_determinism.rs"] {
        assert!(section.contains(path), "Observability section must cite {path}");
        assert!(std::fs::metadata(path).is_ok(), "{path} exists");
    }
}
