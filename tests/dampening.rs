//! System-level route-flap dampening behavior (RFC 2439 in the Fig. 1
//! lab): repeated flaps suppress the unstable route, cutting the
//! community-driven update stream the collector would otherwise see.

use keep_communities_clean::sim::lab::{build_lab, lab_prefix, LabExperiment, LabNetwork};
use keep_communities_clean::sim::{DampeningConfig, SimDuration, VendorProfile};

/// Runs Exp2 with `n_flaps` rapid down/up cycles of Y1–Y2 and returns the
/// number of messages the collector received, with dampening configured
/// at X1 (the router receiving the flapping eBGP route) or not.
fn run_flaps(n_flaps: u32, dampen: bool) -> (usize, u64) {
    let LabNetwork { mut net, ids } = build_lab(LabExperiment::Exp2, VendorProfile::BIRD_2);
    if dampen {
        let x1 = net.router_mut(ids.x1).expect("X1");
        x1.dampening = Some(DampeningConfig::default());
    }
    net.schedule_announce(keep_communities_clean::sim::SimTime::ZERO, ids.z1, lab_prefix());
    net.run_until_quiet();
    net.clear_captures();

    for i in 0..n_flaps {
        let base = net.now() + SimDuration::from_secs(30 + i as u64);
        net.schedule_link_down(base, ids.y1_y2);
        net.schedule_link_up(base + SimDuration::from_secs(5), ids.y1_y2);
        net.run_until(base + SimDuration::from_secs(20));
    }
    net.run_until_quiet();

    let collector_msgs = net.capture(ids.c1).map(|c| c.len()).unwrap_or(0);
    let dampened = net.router(ids.x1).map(|r| r.counters.dampened).unwrap_or(0);
    (collector_msgs, dampened)
}

#[test]
fn dampening_reduces_collector_traffic_under_flapping() {
    let (without, d0) = run_flaps(6, false);
    let (with, d1) = run_flaps(6, true);
    assert_eq!(d0, 0, "no dampening counter without dampening");
    assert!(d1 > 0, "dampening must engage under rapid flaps");
    assert!(with < without, "dampening must cut collector traffic: {with} vs {without}");
}

#[test]
fn single_flap_unaffected_by_dampening() {
    // One flap stays below the suppress threshold: behavior identical.
    let (without, _) = run_flaps(1, false);
    let (with, d) = run_flaps(1, true);
    assert_eq!(d, 0, "one flap must not suppress");
    assert_eq!(with, without);
}

#[test]
fn dampened_route_recovers_after_decay() {
    // After suppression, the route must come back once the penalty decays
    // (the DampReuse event), restoring the collector's view.
    let LabNetwork { mut net, ids } = build_lab(LabExperiment::Exp2, VendorProfile::BIRD_2);
    net.router_mut(ids.x1).expect("X1").dampening = Some(DampeningConfig::default());
    net.schedule_announce(keep_communities_clean::sim::SimTime::ZERO, ids.z1, lab_prefix());
    net.run_until_quiet();

    for i in 0..6u64 {
        let base = net.now() + SimDuration::from_secs(30 + i);
        net.schedule_link_down(base, ids.y1_y2);
        net.schedule_link_up(base + SimDuration::from_secs(5), ids.y1_y2);
        net.run_until(base + SimDuration::from_secs(20));
    }
    // Drain everything including the reuse timer (≥ ~45 min later).
    net.run_until_quiet();
    let collector = net.router(ids.c1).expect("collector");
    assert!(
        collector.best_route(&lab_prefix()).is_some(),
        "the route must be reusable after the penalty decays"
    );
}
