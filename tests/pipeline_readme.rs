//! Enforces the README's "Streaming pipeline" example, the same way
//! `tests/scenario_readme.rs` enforces the scenario snippet: the code
//! below mirrors the README block verbatim (printing replaced by
//! assertions), so a pipeline-API rename that would rot the
//! documentation fails here first — and the snippet's results are
//! checked against the batch wrappers they claim to generalize.

use keep_communities_clean::analysis::pipeline::PipelineBuilder;
use keep_communities_clean::analysis::table::{overview, OverviewSink, TypeShares};
use keep_communities_clean::analysis::{
    classify_archive, CleaningConfig, CleaningStage, CountsSink, MrtSource,
};
use keep_communities_clean::collector::UpdateArchive;
use keep_communities_clean::tracegen::{generate_mar20, Mar20Config};

#[test]
fn readme_streaming_example_runs_and_matches_batch() {
    // Any update source works; here: raw MRT bytes, streamed
    // record-at-a-time.
    let cfg = Mar20Config { target_announcements: 20_000, ..Default::default() };
    let day = generate_mar20(&cfg);
    let mut bytes = Vec::new();
    day.archive.write_mrt(&mut bytes).unwrap();

    // One pass, sharded across 4 workers by session key: §4 cleaning
    // runs as a stage, and both sinks see every surviving update.
    let out = PipelineBuilder::new(MrtSource::new(&bytes[..], "rrc00", cfg.epoch_seconds))
        .shards(4)
        .stages_with(|| CleaningStage::new(&day.registry, CleaningConfig::default()))
        .sinks_with(|| (CountsSink::default(), OverviewSink::default()))
        .run()
        .unwrap();
    let (counts, overview_sink) = out.sink;
    let counts = counts.finish();
    let stats = overview_sink.finish();
    assert!(!stats.render("Table 1").is_empty());
    assert!(!TypeShares::new(vec![("d_mar20".into(), counts)]).render().is_empty());
    assert!(out.stats.peak_state_bytes > 0);
    assert!(out.stats.streams > 0);

    // The streamed single-pass results equal the batch path over the
    // same bytes (read whole archive → clean in place → classify). Both
    // sides see the same MRT-visible metadata (MRT cannot carry the
    // route-server flag; `MrtSource::with_route_servers` restores it
    // when peer lists are available).
    let mut archive = UpdateArchive::read_mrt(&bytes[..], "rrc00", cfg.epoch_seconds).unwrap();
    keep_communities_clean::analysis::clean_archive(
        &mut archive,
        &day.registry,
        &CleaningConfig::default(),
    );
    assert_eq!(classify_archive(&archive).counts, counts, "streaming != batch");
    assert_eq!(overview(&archive), stats, "streaming overview != batch overview");
}
