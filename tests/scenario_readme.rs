//! Enforces the README's "Writing a scenario" example, the same way
//! `tests/quickstart_smoke.rs` enforces the quickstart snippet: the code
//! below mirrors the README block verbatim (modulo the umbrella-crate
//! paths), so a scenario-API rename that would rot the documentation
//! fails here first.

use keep_communities_clean::sim::scenario::{
    self, CollectorDecl, CountBound, Expectation, Phase, ScenarioAction, ScenarioEvent,
    ScenarioSpec, TopologyTemplate,
};
use keep_communities_clean::sim::{SimConfig, SimDuration};
use keep_communities_clean::topology::{BehaviorMix, RouterId, TopologyConfig};
use keep_communities_clean::types::Asn;

#[test]
fn readme_scenario_example_runs_and_holds() {
    // A 40-AS Internet where half the transits geo-tag and cleaning happens
    // at the paper's default rates; converge a full table, then fail the
    // beacon origin's primary uplink.
    let collector = RouterId { asn: Asn(3333), index: 0 };
    let spec = ScenarioSpec {
        name: "beacon-uplink-failure".into(),
        sim: SimConfig::default(),
        topology: TopologyTemplate::Generated {
            config: TopologyConfig::sized(40, 42).with_behavior_mix(BehaviorMix::default()),
            collector: Some(CollectorDecl {
                asn: Asn(3333),
                peers: vec![RouterId { asn: Asn(20_000), index: 0 }],
            }),
        },
        monitors: vec![],
        watch: vec![],
        phases: vec![
            Phase::new(
                "converge",
                vec![ScenarioEvent::immediately(ScenarioAction::AnnounceAllOrigins)],
            ),
            Phase::new(
                "fail",
                vec![ScenarioEvent::after(
                    SimDuration::from_secs(60),
                    ScenarioAction::InterAsLinkDown { a: Asn(12_654), b: Asn(20_000) },
                )],
            ),
        ],
        expectations: vec![Expectation::CollectorTraffic {
            phase: 1,
            collector,
            bound: CountBound::AtLeast(1),
        }],
    };
    let outcome = scenario::run(&spec);
    assert!(outcome.check(&spec.expectations).is_empty());
}
