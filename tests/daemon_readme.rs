//! Enforces the README's "Event-driven daemon" example, the same way
//! `tests/live_readme.rs` enforces the live-collection snippet: the
//! code below mirrors the README block verbatim (printing replaced by
//! assertions), so a reactor/config/flood API rename that would rot the
//! documentation fails here first — and the snippet's live counts are
//! checked against the offline reference the section claims.

use keep_communities_clean::analysis::pipeline::PipelineBuilder;
use keep_communities_clean::analysis::{classify_archive, CountsSink};
use keep_communities_clean::peer::{
    offline_reference, Collector, CollectorConfig, FloodOptions, FloodPlan, FloodRig, StampMode,
};
use keep_communities_clean::tracegen::{generate_mar20, Mar20Config};
use keep_communities_clean::types::Asn;

#[test]
fn readme_daemon_example_runs_and_matches_offline() {
    // Two shard threads, however many sessions dial in.
    let cfg = CollectorConfig::new("rrc00", Asn(3333), "198.51.100.1".parse().unwrap())
        .with_stamp(StampMode::logical(1_000))
        .with_workers(2);
    let mut collector = Collector::bind("127.0.0.1:0", cfg.clone()).unwrap();
    let source = collector.take_source();
    let stop = source.shutdown_flag();

    // Hot reload: edits stage in a candidate config; nothing changes
    // until commit. (The control socket drives this same store from
    // outside.)
    let store = collector.config_store();
    store.edit(|c| c.stamp = StampMode::Arrival);
    assert!(store.dirty()); // candidate differs from running
    store.discard(); // never mind — running config untouched
    assert_eq!(store.running().stamp, StampMode::logical(1_000));

    // The flood rig: a generated day's sessions as concurrent
    // nonblocking speakers, all Established before the first UPDATE
    // flows.
    let mut gen = Mar20Config { target_announcements: 2_000, ..Default::default() };
    gen.universe.n_sessions = 64;
    let day = generate_mar20(&gen);
    let plan = FloodPlan::from_archive(&day.archive, 90);
    let sessions = plan.session_count();
    let rig = FloodRig::connect(collector.local_addr(), plan, FloodOptions::default()).unwrap();
    assert_eq!(rig.established_count(), sessions);
    // A dialer counts Established half a round-trip before the daemon
    // does; wait on the daemon's own gauge before streaming.
    let gauges = collector.gauges();
    assert!(gauges.wait_for_established(sessions as u64, std::time::Duration::from_secs(30)));

    let report = rig.stream().unwrap(); // stream everything, Cease, drain
    collector.shutdown();
    let stats = collector.join();
    assert_eq!(stats.peak_established, sessions as u64); // truly concurrent
    assert_eq!(stats.updates, report.updates_sent); // nothing dropped
    let out =
        PipelineBuilder::new(source).sink(CountsSink::default()).shutdown(&stop).run().unwrap();

    // What the README asserts in prose: the captured feed classifies
    // identically to the offline analysis of the same update set.
    assert_eq!(stats.updates, day.archive.update_count() as u64);
    let reference = offline_reference(&day.archive, &cfg);
    assert_eq!(
        out.sink.finish(),
        classify_archive(&reference).counts,
        "README's daemon counts != offline"
    );
}
