//! Arena-layout invariance properties for the simulator core.
//!
//! The router arena addresses routers by insertion slot, sessions by
//! `(Asn, Asn)` index, and RIBs by hash maps over interned attribute
//! handles — none of which may leak into observable outcomes. These
//! properties pin that: the same declared network, with routers inserted
//! in *any* order (i.e. any arena layout), must produce byte-identical
//! captures, identical [`NetStats`](keep_communities_clean::sim::network::NetStats)
//! and the same `run_until_quiet` quiescence time.
//!
//! The companion regression for real-world traces is `tests/golden_lab.rs`:
//! the Exp1–4 golden fixtures must stay byte-identical across engine
//! refactors.

use std::net::{IpAddr, Ipv4Addr};

use proptest::prelude::*;

use keep_communities_clean::sim::{
    ExportPolicy, ImportPolicy, Network, Router, Session, SessionId, SessionKind, SimConfig,
    SimDuration, SimTime, VendorProfile,
};
use keep_communities_clean::topology::{IgpMap, RouteSource, RouterId};
use keep_communities_clean::types::{Asn, PathAttributes, Prefix};

/// The declared network, independent of any insertion order.
struct Decl {
    n_routers: usize,
    /// Customer-provider edges `(customer, provider)` with provider
    /// always the lower index, so the relationship graph is acyclic.
    edges: Vec<(usize, usize)>,
}

impl Decl {
    /// A connected hierarchy: router `i > 0` buys transit from some
    /// `parent(i) < i`; extra edges add multi-homing.
    fn build(n_routers: usize, parents: &[usize], extras: &[(usize, usize)]) -> Decl {
        let mut edges = Vec::new();
        for i in 1..n_routers {
            edges.push((i, parents[i - 1] % i));
        }
        for &(a, b) in extras {
            let (c, p) = (a % n_routers, b % n_routers);
            if p < c && !edges.contains(&(c, p)) {
                edges.push((c, p));
            }
        }
        Decl { n_routers, edges }
    }

    fn router(&self, i: usize) -> Router {
        let id = RouterId { asn: Asn(100 + i as u32), index: 0 };
        let ip = IpAddr::V4(Ipv4Addr::new(10, 1, i as u8, 1));
        let mut r = Router::new(id, ip, VendorProfile::BIRD_2, IgpMap::ring(1));
        // Router 0 (the hierarchy root) is the observation point: a
        // collector records every message arriving at it.
        r.is_collector = i == 0;
        r
    }

    fn sessions(&self) -> Vec<Session> {
        self.edges
            .iter()
            .map(|&(c, p)| {
                let customer = RouterId { asn: Asn(100 + c as u32), index: 0 };
                let provider = RouterId { asn: Asn(100 + p as u32), index: 0 };
                Session {
                    id: SessionId(0),
                    kind: SessionKind::Ebgp,
                    a: customer,
                    b: provider,
                    a_import: ImportPolicy::for_neighbor(RouteSource::Provider),
                    a_export: ExportPolicy::default(),
                    b_import: ImportPolicy::for_neighbor(RouteSource::Customer),
                    b_export: ExportPolicy::default(),
                    a_view_of_b: Some(RouteSource::Provider),
                    b_view_of_a: Some(RouteSource::Customer),
                    delay: SimDuration::from_micros(1_000 + (c * 37 + p * 11) as u64),
                    up: true,
                }
            })
            .collect()
    }

    /// Builds the network inserting routers in `order`; sessions are
    /// always added in declaration order (session ids are part of the
    /// declared network, not of the layout).
    fn network(&self, order: &[usize]) -> Network {
        let mut net = Network::new(SimConfig::default());
        for &i in order {
            net.add_router(self.router(i));
        }
        for s in self.sessions() {
            net.add_session(s);
        }
        net
    }
}

/// Runs the announce → quiesce → withdraw → quiesce protocol and returns
/// every observable: quiescence times, stats, the collector capture, and
/// each router's best route for the prefix.
#[allow(clippy::type_complexity)]
fn observe(
    decl: &Decl,
    order: &[usize],
) -> (Vec<SimTime>, (u64, u64, u64), Vec<String>, Vec<Option<PathAttributes>>) {
    let mut net = decl.network(order);
    let prefix: Prefix = "84.205.64.0/24".parse().expect("literal prefix");
    let origin = RouterId { asn: Asn(100 + (decl.n_routers - 1) as u32), index: 0 };
    net.schedule_announce(SimTime::ZERO, origin, prefix);
    let t1 = net.run_until_quiet();
    net.schedule_withdraw(t1 + SimDuration::from_secs(5), origin, prefix);
    let t2 = net.run_until_quiet();
    let collector = RouterId { asn: Asn(100), index: 0 };
    let captured = net
        .capture(collector)
        .map(|c| c.entries().iter().map(|e| format!("{e:?}")).collect())
        .unwrap_or_default();
    let bests = (0..decl.n_routers)
        .map(|i| {
            let id = RouterId { asn: Asn(100 + i as u32), index: 0 };
            net.router(id).and_then(|r| r.best_route(&prefix)).map(|e| (*e.attrs).clone())
        })
        .collect();
    let s = &net.stats;
    (vec![t1, t2], (s.events_processed, s.messages_delivered, s.messages_dropped), captured, bests)
}

/// Deterministic shuffle of `0..n` from a seed (SplitMix64 steps).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in (1..n).rev() {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let j = ((z ^ (z >> 31)) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

proptest! {
    #[test]
    fn outcome_invariant_under_arena_layout(
        n_routers in 3usize..9,
        parents in proptest::collection::vec(0usize..8, 8..9),
        extras in proptest::collection::vec((0usize..9, 0usize..9), 0..4),
        shuffle_seed in proptest::arbitrary::any::<u64>(),
    ) {
        let decl = Decl::build(n_routers, &parents, &extras);
        let natural: Vec<usize> = (0..n_routers).collect();
        let shuffled = permutation(n_routers, shuffle_seed);

        let a = observe(&decl, &natural);
        let b = observe(&decl, &shuffled);

        prop_assert_eq!(&a.0, &b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(&a.2, &b.2);
        prop_assert_eq!(&a.3, &b.3);
    }
}

/// The reverse layout is the adversarial case for slot-index ordering
/// bugs; pin it explicitly alongside the randomized property.
#[test]
fn reverse_insertion_matches_natural() {
    let decl = Decl::build(6, &[0, 1, 1, 2, 0], &[(4, 1), (5, 2)]);
    let natural: Vec<usize> = (0..6).collect();
    let reversed: Vec<usize> = (0..6).rev().collect();
    assert_eq!(observe(&decl, &natural).2, observe(&decl, &reversed).2);
}
