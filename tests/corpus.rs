//! Multi-collector corpus engine: determinism, equivalence with the
//! single pipeline, and the pinned cross-collector report.
//!
//! The engine's contract is that a corpus run is a *pure function of
//! the member set*: collector insertion order and worker thread count
//! must not change one byte of any per-collector or combined result.
//! These tests pin that contract three ways — a property test over
//! shuffled member orders and thread counts, a byte-identity check of a
//! single-member corpus against `run_pipeline`, and a golden fixture of
//! the full rendered cross-collector report for the generated mar20
//! multi-vantage day (`GOLDEN_REGEN=1 cargo test --test corpus` to
//! regenerate after an intentional change).

use std::path::PathBuf;

use proptest::collection::vec;
use proptest::prelude::*;

use keep_communities_clean::analysis::corpus::{corpus_sink, run_corpus_report, CorpusSink};
use keep_communities_clean::analysis::table::OverviewSink;
use keep_communities_clean::analysis::{
    run_corpus, run_pipeline, CleaningConfig, CleaningStage, Corpus, CountsSink, Merge,
    PipelineOutput,
};
use keep_communities_clean::collector::{ArchiveSource, SessionKey, UpdateArchive};
use keep_communities_clean::tracegen::universe::UniverseConfig;
use keep_communities_clean::tracegen::{
    vantage_names, Mar20Config, Mar20Source, MultiVantageConfig, VantageSource,
};
use keep_communities_clean::types::{
    Asn, Community, CommunitySet, PathAttributes, Prefix, RouteUpdate,
};

/// A small deterministic per-collector archive: `variant` perturbs
/// paths/communities so collectors genuinely disagree.
fn collector_archive(collector: &str, variant: u64) -> UpdateArchive {
    let mut a = UpdateArchive::new(0);
    let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
    let other: Prefix = "84.205.65.0/24".parse().unwrap();
    for peer in 0..4u32 {
        let key = SessionKey::new(
            collector,
            Asn(100 + peer),
            format!("10.9.{}.{}", variant % 200, peer + 1).parse().unwrap(),
        );
        for i in 0..12u64 {
            let attrs = PathAttributes {
                as_path: format!("{} 3356 12654", 100 + peer).parse().unwrap(),
                communities: CommunitySet::from_classic([Community::from_parts(
                    3356,
                    ((i + variant) % 5) as u16,
                )]),
                ..Default::default()
            };
            a.record(&key, RouteUpdate::announce(i, prefix, attrs));
        }
        a.record(&key, RouteUpdate::withdraw(50 + variant, other));
    }
    a
}

type Sinks = (OverviewSink, CountsSink);

fn sinks() -> Sinks {
    (OverviewSink::default(), CountsSink::default())
}

fn finish(s: Sinks) -> (String, String) {
    let (overview, counts) = s;
    (
        overview.finish().render("Table 1"),
        keep_communities_clean::analysis::TypeShares::new(vec![("d".into(), counts.finish())])
            .render(),
    )
}

proptest! {
    /// `run_corpus` over K shuffled collectors equals the serial
    /// per-collector runs merged in name order, for any insertion order
    /// and thread count.
    #[test]
    fn corpus_equals_serial_merge_under_shuffle(
        rotation in 0usize..6,
        swap in any::<bool>(),
        threads in 1usize..6,
        variants in vec(0u64..40, 4..5),
    ) {
        let names = ["rrc10", "rrc04", "route-views3", "rrc21"];
        let archives: Vec<UpdateArchive> = names
            .iter()
            .zip(&variants)
            .map(|(n, &v)| collector_archive(n, v))
            .collect();

        // Serial reference: one plain pipeline per collector, merged in
        // sorted-name order.
        let mut order: Vec<usize> = (0..names.len()).collect();
        order.sort_by_key(|&i| names[i]);
        let mut serial_combined: Option<Sinks> = None;
        let mut serial_per: Vec<(String, PipelineOutput<(), Sinks>)> = Vec::new();
        for &i in &order {
            let out = run_pipeline(ArchiveSource::new(&archives[i]), (), sinks()).unwrap();
            match &mut serial_combined {
                None => serial_combined = Some(out.sink.clone()),
                Some(c) => c.merge(out.sink.clone()),
            }
            serial_per.push((names[i].to_string(), out));
        }
        let serial_combined = serial_combined.unwrap();

        // Shuffled corpus run.
        let mut insertion: Vec<usize> = (0..names.len()).collect();
        insertion.rotate_left(rotation % names.len());
        if swap {
            insertion.swap(0, names.len() - 1);
        }
        let mut corpus = Corpus::new();
        for &i in &insertion {
            corpus.push(names[i], ArchiveSource::new(&archives[i])).unwrap();
        }
        let out = run_corpus(corpus, threads, |_| (), |_| sinks()).unwrap();

        prop_assert_eq!(finish(out.combined), finish(serial_combined));
        prop_assert_eq!(out.per_collector.len(), serial_per.len());
        for ((name, got), (ref_name, reference)) in
            out.per_collector.into_iter().zip(serial_per)
        {
            prop_assert_eq!(&name, &ref_name);
            prop_assert_eq!(got.stats, reference.stats);
            prop_assert_eq!(finish(got.sink), finish(reference.sink));
        }
    }

    /// A single-collector corpus is byte-identical to `Pipeline::run`
    /// over that source — same rendered tables, same stats.
    #[test]
    fn single_collector_corpus_is_byte_identical_to_run(variant in 0u64..200) {
        let a = collector_archive("rrc00", variant);
        let direct = run_pipeline(ArchiveSource::new(&a), (), sinks()).unwrap();
        let corpus = Corpus::new().with("rrc00", ArchiveSource::new(&a)).unwrap();
        let out = run_corpus(corpus, 3, |_| (), |_| sinks()).unwrap();
        prop_assert_eq!(out.stats, direct.stats);
        let (direct_t1, direct_t2) = finish(direct.sink);
        let (combined_t1, combined_t2) = finish(out.combined);
        prop_assert_eq!(&combined_t1, &direct_t1);
        prop_assert_eq!(&combined_t2, &direct_t2);
        let (_, only) = out.per_collector.into_iter().next().unwrap();
        let (per_t1, per_t2) = finish(only.sink);
        prop_assert_eq!(&per_t1, &direct_t1);
        prop_assert_eq!(&per_t2, &direct_t2);
    }
}

/// The generated mar20 day, as a 3-vantage corpus with one collector
/// forced to second granularity — the fixture workload.
fn mar20_corpus_cfg() -> MultiVantageConfig {
    let base = Mar20Config {
        target_announcements: 6_000,
        universe: UniverseConfig {
            n_collectors: 3,
            n_peers: 9,
            n_sessions: 18,
            n_prefixes_v4: 150,
            n_prefixes_v6: 15,
            ..Default::default()
        },
        ..Default::default()
    };
    let names = vantage_names(&base);
    MultiVantageConfig { base, force_second_granularity: vec![names[0].clone()] }
}

fn mar20_report() -> keep_communities_clean::analysis::CorpusReport {
    let cfg = mar20_corpus_cfg();
    let mut corpus = Corpus::new();
    let mut registry = None;
    for name in vantage_names(&cfg.base) {
        let v = VantageSource::new(&cfg, &name);
        if registry.is_none() {
            registry = Some(v.registry().clone());
        }
        corpus.push(&name, v).unwrap();
    }
    run_corpus_report(corpus, 2, &registry.unwrap(), CleaningConfig::default()).unwrap()
}

/// The cross-collector report for the generated mar20 day, pinned.
#[test]
fn mar20_corpus_report_matches_committed_fixture() {
    let rendered = mar20_report().render();
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_corpus.txt");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixture dir");
        std::fs::write(&path, &rendered).expect("write fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with GOLDEN_REGEN=1 cargo test --test corpus",
            path.display()
        )
    });
    if committed != rendered {
        let first_diff = committed
            .lines()
            .zip(rendered.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("first differing line {}:\n  -{a}\n  +{b}", i + 1))
            .unwrap_or_else(|| "one report is a prefix of the other".into());
        panic!("corpus report drifted from the committed fixture\n{first_diff}");
    }
}

/// The same report is byte-identical for any thread count and member
/// insertion order — the tentpole's determinism acceptance, on the real
/// generated workload.
#[test]
fn mar20_corpus_report_is_order_and_thread_independent() {
    let reference = mar20_report().render();
    let cfg = mar20_corpus_cfg();
    let mut names = vantage_names(&cfg.base);
    names.reverse();
    for threads in [1, 5] {
        let mut corpus = Corpus::new();
        let mut registry = None;
        for name in &names {
            let v = VantageSource::new(&cfg, name);
            if registry.is_none() {
                registry = Some(v.registry().clone());
            }
            corpus.push(name, v).unwrap();
        }
        let report =
            run_corpus_report(corpus, threads, &registry.unwrap(), CleaningConfig::default())
                .unwrap();
        assert_eq!(report.render(), reference, "threads={threads} reversed order diverged");
    }
}

/// The combined all-vantage corpus result equals one pipeline over the
/// unsplit day: the vantages are a true partition.
#[test]
fn mar20_corpus_combined_equals_unsplit_day() {
    let mut cfg = mar20_corpus_cfg();
    cfg.force_second_granularity.clear(); // identical data on both paths
    let (corpus, registry) = keep_communities_clean::tracegen::multi_vantage_corpus(&cfg).unwrap();
    let corpus_out = run_corpus(
        corpus,
        3,
        |_| CleaningStage::new(&registry, CleaningConfig::default()),
        |_| corpus_sink(),
    )
    .unwrap();

    let single = run_pipeline(
        Mar20Source::new(&cfg.base),
        CleaningStage::new(&registry, CleaningConfig::default()),
        corpus_sink(),
    )
    .unwrap();

    let (c_overview, c_counts, c_comms) = corpus_out.combined;
    let (s_overview, s_counts, s_comms): CorpusSink = single.sink;
    assert_eq!(c_overview.finish(), s_overview.finish());
    assert_eq!(c_counts.finish(), s_counts.finish());
    assert_eq!(c_comms.finish(), s_comms.finish());
    assert_eq!(corpus_out.stats.updates, single.stats.updates);
    assert_eq!(corpus_out.stats.sessions, single.stats.sessions);
    assert_eq!(corpus_out.stats.streams, single.stats.streams);
}

/// Forced second-granularity vantages exercise the cleaning stage's
/// same-second disambiguation: the truncated collector reports
/// normalized sessions, the others don't (beyond what the universe
/// rolled), and every update survives.
#[test]
fn forced_truncation_reaches_the_cleaning_stage() {
    let report = mar20_report();
    let cfg = mar20_corpus_cfg();
    let forced = &cfg.force_second_granularity[0];
    let forced_col =
        report.collectors.iter().find(|c| &c.name == forced).expect("forced collector present");
    assert!(
        forced_col.cleaning.sessions_normalized > 0,
        "forced vantage must trigger timestamp normalization"
    );
    assert!(forced_col.stats.updates > 0);
}
