//! Reactor-path integration tests: resumable framing under arbitrary
//! byte fragmentation (proptest), FSM timers firing under message
//! flood, and poll/epoll backend equivalence.

use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;
use std::time::Duration;

use proptest::collection::vec;
use proptest::prelude::*;

use keep_communities_clean::collector::{SessionKey, UpdateArchive};
use keep_communities_clean::peer::reactor::framing::{FlushOutcome, FrameBuffer, WriteQueue};
use keep_communities_clean::peer::{
    offline_reference, ActiveSpeaker, Collector, CollectorConfig, FloodOptions, FloodPlan,
    FloodRig, FsmConfig, ManualClock, PeerError, PollerKind, StampMode,
};
use keep_communities_clean::tracegen::{generate_mar20, Mar20Config};
use keep_communities_clean::types::{AsPath, Asn, PathAttributes, Prefix};
use keep_communities_clean::wire::{
    encode_message, Message, Notification, NotificationCode, SessionConfig, UpdatePacket,
};

// ---------------------------------------------------------------------
// Proptests: resumable framing.
// ---------------------------------------------------------------------

fn arb_message() -> impl Strategy<Value = Message> {
    let arb_update =
        (any::<u32>(), 8u8..=24, vec(1u32..65_000, 1..4)).prop_map(|(addr, len, path)| {
            let prefix = Prefix::v4(Ipv4Addr::from(addr), len).expect("valid v4 length");
            let attrs = PathAttributes {
                as_path: AsPath::from_asns(path.into_iter().map(Asn)),
                next_hop: "192.0.2.1".parse().unwrap(),
                ..Default::default()
            };
            Message::Update(UpdatePacket::announce(prefix, attrs))
        });
    let arb_withdraw = (any::<u32>(), 8u8..=24).prop_map(|(addr, len)| {
        let prefix = Prefix::v4(Ipv4Addr::from(addr), len).expect("valid v4 length");
        Message::Update(UpdatePacket::withdraw(prefix))
    });
    prop_oneof![
        Just(Message::Keepalive),
        arb_update,
        arb_withdraw,
        Just(Message::Notification(Notification::cease_admin_shutdown())),
    ]
}

proptest! {
    /// However a TCP stream fragments — down to single bytes, across
    /// arbitrary chunk boundaries — the frame buffer reassembles the
    /// exact message sequence.
    #[test]
    fn fragmented_stream_reassembles_byte_identical_messages(
        messages in vec(arb_message(), 1..20),
        cuts in vec(1usize..64, 1..40),
    ) {
        let cfg = SessionConfig::default();
        let mut wire = bytes::BytesMut::new();
        for m in &messages {
            encode_message(m, &cfg, &mut wire);
        }
        let wire = wire.to_vec();

        let mut fb = FrameBuffer::new(cfg, true);
        let mut decoded = Vec::new();
        let mut offset = 0;
        let mut cut_iter = cuts.iter().cycle();
        while offset < wire.len() {
            let take = (*cut_iter.next().unwrap()).min(wire.len() - offset);
            fb.extend(&wire[offset..offset + take]);
            offset += take;
            while let Some(m) = fb.next_message().expect("valid stream decodes") {
                decoded.push(m);
            }
        }
        prop_assert_eq!(decoded, messages);
        // No residual bytes after the last frame.
        prop_assert_eq!(fb.buffered(), 0);
    }

    /// A write queue flushed through a socket that accepts arbitrary
    /// partial writes (and interleaves WouldBlock) emits a byte stream
    /// identical to a single blocking write.
    #[test]
    fn write_queue_partial_writes_emit_byte_identical_stream(
        messages in vec(arb_message(), 1..16),
        accepts in vec(1usize..40, 1..30),
        block_mask in any::<u64>(),
    ) {
        struct FickleWriter {
            out: Vec<u8>,
            accepts: Vec<usize>,
            mask: u64,
            calls: u32,
        }
        impl std::io::Write for FickleWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let call = self.calls as usize;
                self.calls += 1;
                if self.mask >> (call % 64) & 1 == 1 {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                let n = self.accepts[call % self.accepts.len()].min(buf.len());
                self.out.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let cfg = SessionConfig::default();
        let mut expected = bytes::BytesMut::new();
        let mut q = WriteQueue::new(1 << 20);
        for m in &messages {
            encode_message(m, &cfg, &mut expected);
            q.push_message(m, &cfg).expect("under cap");
        }
        let mut w = FickleWriter { out: Vec::new(), accepts, mask: block_mask, calls: 0 };
        let mut rounds = 0;
        while q.flush(&mut w).expect("no real I/O errors") == FlushOutcome::Pending {
            rounds += 1;
            prop_assert!(rounds < 100_000, "flush never completed");
        }
        prop_assert_eq!(w.out, expected.to_vec());
        prop_assert!(q.is_empty());
    }
}

// ---------------------------------------------------------------------
// FSM timers under flood.
// ---------------------------------------------------------------------

/// While one peer floods the shard with UPDATEs (its readiness never
/// goes quiet), a silent peer's hold timer must still fire: the reactor
/// advances its timer wheel every loop iteration, not just on idle.
#[test]
fn hold_timer_fires_for_silent_peer_while_another_floods() {
    let clock = Arc::new(ManualClock::new());
    let cfg = CollectorConfig::new("flood", Asn(3333), "198.51.100.1".parse().unwrap())
        .with_stamp(StampMode::logical(1_000))
        .with_workers(1); // both sessions on one shard
    let mut collector =
        Collector::bind_with_clock("127.0.0.1:0", cfg, Arc::clone(&clock) as _).expect("bind");
    let addr = collector.local_addr();
    let source = collector.take_source();

    // Both clients run on their own frozen clocks: only the *daemon*
    // observes the time jump, so any teardown is the reactor's doing.
    // The silent peer negotiates a 30 s hold (min of the proposals); the
    // flooder keeps the 90 s default — so the 45 s jump below sits
    // strictly between the two deadlines and the outcome does not
    // depend on scheduling.
    let silent = ActiveSpeaker::connect(
        addr,
        FsmConfig::new(Asn(65_001), "10.9.0.1".parse().unwrap()).with_hold_time(30),
        Arc::new(ManualClock::new()),
        Duration::from_secs(10),
    )
    .expect("silent peer handshake");

    // The flooding peer: streams updates continuously.
    let mut flooder = ActiveSpeaker::connect(
        addr,
        FsmConfig::new(Asn(65_002), "10.9.0.2".parse().unwrap()),
        Arc::new(ManualClock::new()),
        Duration::from_secs(10),
    )
    .expect("flooder handshake");
    let attrs = PathAttributes {
        as_path: "65002 3356".parse().unwrap(),
        next_hop: "192.0.2.1".parse().unwrap(),
        ..Default::default()
    };
    let packet = UpdatePacket::announce("10.0.0.0/8".parse().unwrap(), attrs);
    let flood = std::thread::spawn(move || {
        let mut sent = 0u64;
        for _ in 0..200_000 {
            if flooder.send_update(&packet).is_err() {
                break;
            }
            sent += 1;
        }
        (flooder, sent)
    });

    // Mid-flood, jump past the silent peer's 30 s hold time but not the
    // flooder's 90 s one. The flooder's deadline is also continuously
    // refreshed by its decoded updates; the silent peer's cannot be.
    std::thread::sleep(Duration::from_millis(100));
    clock.advance(45_000);

    // The daemon must Cease the silent peer with Hold Timer Expired.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut silent = silent;
    let notification = loop {
        match silent.tick() {
            Err(PeerError::PeerClosed(n)) => break n,
            Err(e) => panic!("silent peer failed some other way: {e}"),
            Ok(()) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "silent peer never torn down under flood"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    let notification = notification.expect("teardown carries a NOTIFICATION");
    assert_eq!(notification.code, NotificationCode::HoldTimerExpired);

    let (flooder, sent) = flood.join().expect("flood thread");
    assert!(sent > 0, "flood actually ran");
    assert!(flooder.is_established(), "flooding peer survived the clock jump");
    flooder.close().expect("flooder clean close");

    collector.shutdown();
    let stats = collector.join();
    drop(source);
    assert_eq!(stats.established, 2);
    assert_eq!(stats.updates, sent, "every flooded update ingested");
}

// ---------------------------------------------------------------------
// Backend equivalence.
// ---------------------------------------------------------------------

/// The same workload through the epoll backend and the portable
/// `poll(2)` fallback produces identical ingest results — and both
/// match the offline reference.
#[test]
fn poll_and_epoll_backends_ingest_identically() {
    let day = generate_mar20(&Mar20Config { target_announcements: 3_000, ..Default::default() });
    let mut workload = UpdateArchive::new(0);
    let mut dealt = 0u64;
    for (i, (_, update)) in day.archive.all_updates().iter().enumerate() {
        let p = i % 16;
        let key = SessionKey::new(
            "bench",
            Asn(64_512 + p as u32),
            IpAddr::V4(Ipv4Addr::new(10, 99, 0, p as u8)),
        );
        workload.record(&key, update.clone());
        dealt += 1;
        if dealt >= 2_500 {
            break;
        }
    }

    let run = |poller: PollerKind| {
        let cfg = CollectorConfig::new("bench", Asn(3333), "198.51.100.1".parse().unwrap())
            .with_stamp(StampMode::logical(1_000))
            .with_poller(poller);
        let mut collector = Collector::bind("127.0.0.1:0", cfg.clone()).expect("bind");
        let addr = collector.local_addr();
        let source = collector.take_source();
        let stop = source.shutdown_flag();
        let plan = FloodPlan::from_archive(&workload, 90);
        let rig = FloodRig::connect(addr, plan, FloodOptions { poller, ..FloodOptions::default() })
            .expect("establish");
        let coordinator = std::thread::spawn(move || {
            rig.stream().expect("stream");
            collector.shutdown();
            collector.join()
        });
        let out = keep_communities_clean::analysis::run_live(
            source,
            (),
            keep_communities_clean::analysis::CountsSink::default(),
            &stop,
        )
        .expect("live run");
        let stats = coordinator.join().expect("coordinator");
        (out.sink.finish(), stats.updates)
    };

    let (epoll_counts, epoll_updates) = run(PollerKind::Epoll);
    let (poll_counts, poll_updates) = run(PollerKind::Poll);
    assert_eq!(epoll_updates, dealt);
    assert_eq!(poll_updates, dealt);
    assert_eq!(epoll_counts, poll_counts, "backends diverged");

    let cfg = CollectorConfig::new("bench", Asn(3333), "198.51.100.1".parse().unwrap())
        .with_stamp(StampMode::logical(1_000));
    let reference = offline_reference(&workload, &cfg);
    let offline = keep_communities_clean::analysis::classify_archive(&reference).counts;
    assert_eq!(epoll_counts, offline, "live != offline reference");
}
