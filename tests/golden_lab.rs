//! Golden-trace regression tests for the §3 laboratory.
//!
//! Every `LabExperiment × VendorProfile` cell's observable outcome — the
//! exact update sequence on the monitored Y1–X1 link, the collector
//! capture, the RIB verdict and the duplicate counters — is serialized to
//! a canonical text form and diffed against the committed fixture
//! `tests/fixtures/golden_lab.txt`. Engine refactors (the lab now runs on
//! the declarative scenario engine) cannot silently change paper results:
//! any drift in timing, attributes or message counts fails here with a
//! line-level diff.
//!
//! To regenerate the fixture after an *intentional* behavior change:
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test --test golden_lab
//! ```
//!
//! then review the diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use keep_communities_clean::sim::lab::{run_experiment, LabExperiment, LabReport};
use keep_communities_clean::sim::{CapturedUpdate, UpdateBody, VendorProfile};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_lab.txt")
}

/// One captured update in canonical single-line form. Everything that is
/// wire- or analysis-visible is included: time, endpoints, prefix, kind,
/// AS path, communities, next hop and MED.
fn render_update(entry: &CapturedUpdate) -> String {
    let mut line = format!("t={} {}->{} {} ", entry.at, entry.from, entry.to, entry.update.prefix);
    match &entry.update.body {
        UpdateBody::Announce { attrs, .. } => {
            let med = attrs.med.map(|m| m.to_string()).unwrap_or_else(|| "-".into());
            write!(
                line,
                "announce path=[{}] comms=[{}] next_hop={} med={}",
                attrs.as_path, attrs.communities, attrs.next_hop, med
            )
            .expect("write to string");
        }
        UpdateBody::Withdraw => line.push_str("withdraw"),
    }
    line
}

fn render_report(report: &LabReport) -> String {
    let mut out = String::new();
    writeln!(out, "== {} / {} ==", report.experiment.name(), report.vendor.name).unwrap();
    if report.y1_to_x1.is_empty() {
        writeln!(out, "y1->x1: (silent)").unwrap();
    }
    for (i, entry) in report.y1_to_x1.iter().enumerate() {
        writeln!(out, "y1->x1[{i}]: {}", render_update(entry)).unwrap();
    }
    if report.at_collector.is_empty() {
        writeln!(out, "collector: (silent)").unwrap();
    }
    for (i, entry) in report.at_collector.iter().enumerate() {
        writeln!(out, "collector[{i}]: {}", render_update(entry)).unwrap();
    }
    writeln!(
        out,
        "x1_rib_changed={} duplicates_sent={} duplicates_suppressed={}",
        report.x1_rib_changed, report.duplicates_sent, report.duplicates_suppressed
    )
    .unwrap();
    out
}

/// The full golden document: all experiments × all vendors, in order.
fn render_all() -> String {
    let mut out = String::from(
        "# Golden traces: §3 lab experiments, one section per experiment x vendor.\n\
         # Regenerate with GOLDEN_REGEN=1 cargo test --test golden_lab -- and review the diff.\n\n",
    );
    for exp in LabExperiment::ALL {
        for vendor in VendorProfile::ALL {
            out.push_str(&render_report(&run_experiment(exp, vendor)));
            out.push('\n');
        }
    }
    out
}

#[test]
fn lab_traces_match_committed_fixture() {
    let rendered = render_all();
    let path = fixture_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixture dir");
        std::fs::write(&path, &rendered).expect("write fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with GOLDEN_REGEN=1 cargo test --test golden_lab",
            path.display()
        )
    });
    if committed != rendered {
        let first_diff = committed
            .lines()
            .zip(rendered.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {}:\n  committed: {a}\n  rendered:  {b}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: committed {} vs rendered {}",
                    committed.lines().count(),
                    rendered.lines().count()
                )
            });
        panic!(
            "golden lab traces drifted from tests/fixtures/golden_lab.txt — the engine \
             changed paper-visible behavior.\nFirst difference at {first_diff}\n\
             If the change is intentional, regenerate with GOLDEN_REGEN=1 and review."
        );
    }
}

#[test]
fn fixture_covers_every_cell() {
    // The committed fixture must contain one section per experiment ×
    // vendor — a truncated regeneration would otherwise pass silently.
    let committed = std::fs::read_to_string(fixture_path()).expect("fixture present");
    for exp in LabExperiment::ALL {
        for vendor in VendorProfile::ALL {
            let header = format!("== {} / {} ==", exp.name(), vendor.name);
            assert!(committed.contains(&header), "fixture is missing section {header:?}");
        }
    }
}

#[test]
fn golden_traces_are_stable_within_a_run() {
    // The serialization itself must be deterministic: two back-to-back
    // renders of the same cell are identical.
    let a = render_report(&run_experiment(LabExperiment::Exp2, VendorProfile::CISCO_IOS));
    let b = render_report(&run_experiment(LabExperiment::Exp2, VendorProfile::CISCO_IOS));
    assert_eq!(a, b);
}
