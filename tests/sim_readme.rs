//! Enforces the README's "Internet-scale simulation" section the same
//! way `tests/performance_readme.rs` enforces the Performance tables:
//! the code block below mirrors the README example verbatim, the scaling
//! table must equal the committed `BENCH_sim.json`, and the documented
//! reproduction commands must name the binaries and gate CI actually
//! runs — so re-pinning the baseline or renaming the API without
//! updating the README fails here first.

use std::fs;

use keep_communities_clean::sim::{Network, SimConfig, SimTime};
use keep_communities_clean::topology::gen::BEACON_ORIGIN_ASN;
use keep_communities_clean::topology::{generate_internet, InternetConfig, RouterId};
use keep_communities_clean::types::Asn;

/// The README example, compiled and run at a size small enough for a
/// debug-profile test (the API is identical; only `sized`'s argument
/// differs from the documented 10,000).
#[test]
fn readme_internet_example_runs_and_converges() {
    let topo = generate_internet(&InternetConfig::sized(600, 42));
    let mut net = Network::from_topology(&topo, SimConfig::default());

    let (collector, _) = net.attach_collector(
        Asn(3333),
        &[RouterId { asn: Asn(20_000), index: 0 }, RouterId { asn: Asn(20_001), index: 0 }],
    );

    let origin = RouterId { asn: BEACON_ORIGIN_ASN, index: 0 };
    net.schedule_announce(SimTime::ZERO, origin, "84.205.64.0/24".parse().unwrap());
    let quiet_at = net.run_until_quiet();

    assert!(quiet_at > SimTime::ZERO, "convergence takes simulated time");
    assert!(net.stats.events_processed > 0);
    let capture = net.capture(collector).expect("collector records");
    assert!(!capture.entries().is_empty(), "beacon announcement reaches the collector");
    assert!(net.attr_store().bytes() > 0, "converged RIBs hold interned attributes");
}

fn with_thousands_separators(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

fn section() -> String {
    let readme = fs::read_to_string("README.md").unwrap();
    readme
        .split("## Internet-scale simulation")
        .nth(1)
        .expect("README has an Internet-scale simulation section")
        .split("\n## ")
        .next()
        .unwrap()
        .to_string()
}

/// Pulls `(n_ases, routers, sessions, events, updates_per_sec)` out of
/// the committed baseline, in file order. The baseline is
/// machine-written single-line JSON; a tiny scan suffices (the
/// structural parser lives in `bench_gate`, which CI runs on this file).
fn committed_sim_rows(json: &str) -> Vec<[u64; 5]> {
    let mut rows = Vec::new();
    for chunk in json.split("{\"n_ases\":").skip(1) {
        let field = |key: &str| -> u64 {
            let tail = chunk.split(key).nth(1).unwrap_or_else(|| panic!("baseline has {key}"));
            let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
            digits.parse().expect("numeric field")
        };
        let n_ases: String = chunk.chars().take_while(char::is_ascii_digit).collect();
        rows.push([
            n_ases.parse().expect("n_ases"),
            field("\"routers\":"),
            field("\"sessions\":"),
            field("\"events\":"),
            field("\"updates_per_sec\":"),
        ]);
    }
    rows
}

#[test]
fn readme_scaling_table_matches_committed_baseline() {
    let section = section();
    let baseline = fs::read_to_string("BENCH_sim.json").unwrap();
    let rows = committed_sim_rows(&baseline);
    assert_eq!(rows.len(), 3, "baseline pins three internet sizes");
    assert_eq!(rows.last().map(|r| r[0]), Some(75_000), "sweep tops out at 75k ASes");
    for [n_ases, routers, sessions, events, rate] in rows {
        let row = format!(
            "| {} | {} | {} | {} | {} ev/s |",
            with_thousands_separators(n_ases),
            with_thousands_separators(routers),
            with_thousands_separators(sessions),
            with_thousands_separators(events),
            with_thousands_separators(rate),
        );
        assert!(
            section.contains(&row),
            "README internet scaling table is stale: missing \"{row}\" \
             from the committed BENCH_sim.json"
        );
    }
}

#[test]
fn readme_reproduction_commands_match_ci() {
    let section = section();
    let ci = fs::read_to_string(".github/workflows/ci.yml").unwrap();

    // The README documents the exact gate CI enforces, over the same
    // sizes as the committed baseline (bench_gate treats a missing
    // baseline key as a hard failure, so the sizes must agree).
    assert!(section.contains("--tolerance 0.25"), "README must state the gate tolerance");
    assert!(section.contains("--sizes 10000,25000,75000"), "README names the baseline sizes");
    assert!(
        ci.contains("bench_sim -- --sizes 10000,25000,75000"),
        "CI bench-smoke must measure the documented sizes"
    );
    assert!(
        ci.contains("for b in pipeline live corpus watch sim"),
        "CI bench-smoke must gate the sim baseline"
    );
    // The documented memory ceiling is the one sim-scale enforces.
    assert!(section.contains("1 GiB"), "README states the sim-scale memory ceiling");
    assert!(
        ci.contains("sim-scale") && ci.contains("ulimit -v 1048576"),
        "CI has a sim-scale job with a 1 GiB address-space cap"
    );
    // And the commands name binaries that exist in the bench crate.
    for bin in ["bench_sim", "bench_gate"] {
        assert!(section.contains(bin), "README reproduction commands mention {bin}");
        assert!(
            fs::metadata(format!("crates/bench/src/bin/{bin}.rs")).is_ok(),
            "{bin} binary exists"
        );
    }
    // The section names the tests that pin the refactor.
    for t in ["sim_invariance", "golden_lab"] {
        assert!(section.contains(t), "README names tests/{t}.rs");
        assert!(fs::metadata(format!("tests/{t}.rs")).is_ok(), "tests/{t}.rs exists");
    }
}
