//! Property-based tests on cross-crate invariants (proptest).

use proptest::collection::vec;
use proptest::prelude::*;

use keep_communities_clean::analysis::table::{overview, OverviewSink};
use keep_communities_clean::analysis::{
    classify_archive, classify_pair, run_pipeline, run_sharded, AnnouncementType,
    ClassifiedArchiveSink, CountsSink, MrtSource, StreamClassifier, TypeCounts,
};
use keep_communities_clean::collector::timestamps::normalize_timestamps;
use keep_communities_clean::collector::{ArchiveSource, SessionKey, UpdateArchive};
use keep_communities_clean::mrt::{
    Bgp4mpMessage, Bgp4mpStateChange, BgpState, MrtReader, MrtRecord, MrtTimestamp, MrtWriter,
};
use keep_communities_clean::types::attrs::{Aggregator, Origin};
use keep_communities_clean::types::extended::ExtendedCommunity;
use keep_communities_clean::types::large::LargeCommunity;
use keep_communities_clean::types::{
    AsPath, Asn, Community, CommunitySet, PathAttributes, Prefix, RouteUpdate,
};
use keep_communities_clean::wire::nlri::Afi;
use keep_communities_clean::wire::{
    decode_message, encode_message, Capability, Message, OpenMessage, SessionConfig, UpdatePacket,
};

fn arb_asn() -> impl Strategy<Value = Asn> {
    // Mix of 2-byte and 4-byte ASNs.
    prop_oneof![1u32..65_536, 65_536u32..4_000_000_000].prop_map(Asn)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![
        (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| {
            Prefix::v4(std::net::Ipv4Addr::from(addr), len).expect("valid v4 length")
        }),
        (any::<u128>(), 0u8..=128).prop_map(|(addr, len)| {
            Prefix::v6(std::net::Ipv6Addr::from(addr), len).expect("valid v6 length")
        }),
    ]
}

fn arb_communities() -> impl Strategy<Value = CommunitySet> {
    vec(any::<u32>(), 0..12)
        .prop_map(|values| CommunitySet::from_classic(values.into_iter().map(Community)))
}

fn arb_extended() -> impl Strategy<Value = ExtendedCommunity> {
    prop_oneof![
        (any::<u16>(), any::<u32>())
            .prop_map(|(asn, value)| ExtendedCommunity::RouteTarget { asn, value }),
        (any::<u16>(), any::<u32>())
            .prop_map(|(asn, value)| ExtendedCommunity::RouteOrigin { asn, value }),
        // Raw communities in the opaque / non-transitive type space, so
        // the wire decoder cannot re-interpret them as the structured
        // variants above (that would change the value's *shape* while
        // preserving its bytes).
        (0u8..4, any::<u8>(), any::<u32>(), any::<u16>()).prop_map(|(t, sub, v, w)| {
            let ty = 0x40 | t;
            let vb = v.to_be_bytes();
            let wb = w.to_be_bytes();
            ExtendedCommunity::Raw([ty, sub, wb[0], wb[1], vb[0], vb[1], vb[2], vb[3]])
        }),
    ]
}

fn arb_large() -> impl Strategy<Value = LargeCommunity> {
    (any::<u32>(), any::<u32>(), any::<u32>())
        .prop_map(|(global, d1, d2)| LargeCommunity::new(global, d1, d2))
}

/// A community set spanning all three families (classic, RFC 4360
/// extended, RFC 8092 large).
fn arb_full_communities() -> impl Strategy<Value = CommunitySet> {
    (vec(any::<u32>(), 0..8), vec(arb_extended(), 0..6), vec(arb_large(), 0..6)).prop_map(
        |(classic, extended, large)| {
            let mut set = CommunitySet::from_classic(classic.into_iter().map(Community));
            for e in extended {
                set.insert_extended(e);
            }
            for l in large {
                set.insert_large(l);
            }
            set
        },
    )
}

/// Path attributes exercising every wire-encodable field: all community
/// families, MED, ATOMIC_AGGREGATE and AGGREGATOR.
fn arb_full_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        (vec(arb_asn(), 1..8), any::<u32>()),
        proptest::option::of(any::<u32>()),
        arb_full_communities(),
        0u8..3,
        any::<bool>(),
        proptest::option::of((arb_asn(), any::<u32>())),
    )
        .prop_map(|((asns, nh), med, communities, origin, atomic, agg)| PathAttributes {
            origin: Origin::from_code(origin).expect("0..3"),
            as_path: AsPath::from_asns(asns),
            next_hop: std::net::IpAddr::V4(std::net::Ipv4Addr::from(nh)),
            med,
            local_pref: None,
            atomic_aggregate: atomic,
            aggregator: agg.map(|(asn, router)| Aggregator {
                asn,
                router_id: std::net::Ipv4Addr::from(router),
            }),
            communities,
        })
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        vec(arb_asn(), 1..8),
        any::<u32>(),
        proptest::option::of(any::<u32>()),
        arb_communities(),
        0u8..3,
    )
        .prop_map(|(asns, nh, med, communities, origin)| PathAttributes {
            origin: Origin::from_code(origin).expect("0..3"),
            as_path: AsPath::from_asns(asns),
            next_hop: std::net::IpAddr::V4(std::net::Ipv4Addr::from(nh)),
            med,
            local_pref: None,
            atomic_aggregate: false,
            aggregator: None,
            communities,
        })
}

/// An arbitrary multi-session archive: up to 4 sessions, each with an
/// arbitrary interleaving of announcements and withdrawals over a small
/// prefix pool — the adversarial input for streaming-vs-batch equality.
fn arb_archive() -> impl Strategy<Value = UpdateArchive> {
    let prefixes = ["84.205.64.0/24", "84.205.65.0/24", "2001:7fb:fe00::/48"];
    let update = (0u8..3, 0u64..86_400, any::<bool>(), arb_attrs());
    vec(vec(update, 0..40), 1..5).prop_map(move |sessions| {
        let mut archive = UpdateArchive::new(0);
        for (s, updates) in sessions.into_iter().enumerate() {
            let key = SessionKey::new(
                if s % 2 == 0 { "rrc00" } else { "rrc01" },
                Asn(20_000 + s as u32),
                format!("192.0.2.{}", s + 1).parse().unwrap(),
            );
            let mut sorted = updates;
            sorted.sort_by_key(|(_, t, _, _)| *t);
            for (p, t, withdraw, mut attrs) in sorted {
                let prefix: Prefix = prefixes[p as usize].parse().unwrap();
                if withdraw {
                    archive.record(&key, RouteUpdate::withdraw(t * 1_000_000, prefix));
                } else {
                    if prefix.is_ipv6() {
                        attrs.next_hop = "2001:db8::1".parse().unwrap();
                    }
                    archive.record(&key, RouteUpdate::announce(t * 1_000_000, prefix, attrs));
                }
            }
        }
        archive
    })
}

proptest! {
    /// Streaming pipeline results are identical to the batch
    /// `classify_archive` / `overview` path on arbitrary archives, even
    /// when the stream takes the MRT-bytes route (different source
    /// implementation, same per-session streams).
    #[test]
    fn streaming_equals_batch_on_arbitrary_archives(archive in arb_archive()) {
        let batch_classified = classify_archive(&archive);
        let batch_overview = overview(&archive);

        // Direct archive streaming: one pass, two sinks.
        let out = run_pipeline(
            ArchiveSource::new(&archive),
            (),
            (ClassifiedArchiveSink::default(), OverviewSink::default()),
        ).expect("archive source");
        let (classified_sink, overview_sink) = out.sink;
        prop_assert_eq!(&classified_sink.finish().per_session, &batch_classified.per_session);
        prop_assert_eq!(overview_sink.finish(), batch_overview);

        // MRT-bytes streaming: write, then classify record-at-a-time.
        let mut bytes = Vec::new();
        archive.write_mrt(&mut bytes).expect("export");
        let reread = UpdateArchive::read_mrt(&bytes[..], "rrc00", 0).expect("import");
        let via_bytes = run_pipeline(
            MrtSource::new(&bytes[..], "rrc00", 0),
            (),
            CountsSink::default(),
        ).expect("mrt source");
        prop_assert_eq!(via_bytes.sink.finish(), classify_archive(&reread).counts);
    }

    /// Sharded execution (N worker threads) produces exactly the serial
    /// results, for several shard counts.
    #[test]
    fn sharded_equals_serial(archive in arb_archive(), shards in 2usize..5) {
        let serial = run_pipeline(
            ArchiveSource::new(&archive),
            (),
            (CountsSink::default(), OverviewSink::default()),
        ).expect("archive source");
        let sharded = run_sharded(
            ArchiveSource::new(&archive),
            shards,
            || (),
            || (CountsSink::default(), OverviewSink::default()),
        ).expect("archive source");
        let serial_counts: TypeCounts = serial.sink.0.finish();
        prop_assert_eq!(sharded.sink.0.finish(), serial_counts);
        prop_assert_eq!(sharded.sink.1.finish(), serial.sink.1.finish());
        prop_assert_eq!(sharded.stats.sessions, serial.stats.sessions);
        prop_assert_eq!(sharded.stats.updates, serial.stats.updates);
        prop_assert_eq!(sharded.stats.kept, serial.stats.kept);
        prop_assert_eq!(sharded.stats.streams, serial.stats.streams);
        prop_assert_eq!(sharded.stats.state_bytes, serial.stats.state_bytes);
    }

    /// Any announcement survives a wire encode/decode round-trip exactly.
    #[test]
    fn wire_roundtrip_announcement(attrs in arb_attrs(), prefix in arb_prefix()) {
        // IPv6 NLRI requires an IPv6 next hop on the wire; align family.
        let mut attrs = attrs;
        if prefix.is_ipv6() {
            attrs.next_hop = "2001:db8::1".parse().unwrap();
        }
        let cfg = SessionConfig::default();
        let msg = Message::Update(UpdatePacket::announce(prefix, attrs));
        let mut buf = bytes::BytesMut::new();
        encode_message(&msg, &cfg, &mut buf);
        let decoded = decode_message(&mut buf.freeze(), &cfg).expect("decode");
        prop_assert_eq!(decoded, msg);
    }

    /// Two-octet sessions reconstruct 4-byte paths via AS4_PATH.
    #[test]
    fn wire_roundtrip_two_octet_session(asns in vec(arb_asn(), 1..8)) {
        let attrs = PathAttributes {
            as_path: AsPath::from_asns(asns),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        let cfg = SessionConfig { four_octet_as: false };
        let msg = Message::Update(UpdatePacket::announce(
            "10.0.0.0/8".parse().unwrap(),
            attrs.clone(),
        ));
        let mut buf = bytes::BytesMut::new();
        encode_message(&msg, &cfg, &mut buf);
        let decoded = decode_message(&mut buf.freeze(), &cfg).expect("decode");
        if let Message::Update(p) = decoded {
            prop_assert_eq!(p.attrs.expect("attrs").as_path, attrs.as_path);
        } else {
            prop_assert!(false, "wrong message type");
        }
    }

    /// An announcement equal to its predecessor is always `nn`;
    /// classification against itself can never be a change type.
    #[test]
    fn classify_reflexive_is_nn(attrs in arb_attrs()) {
        prop_assert_eq!(classify_pair(&attrs, &attrs), AnnouncementType::Nn);
    }

    /// The first classification letter depends only on the AS path and
    /// the second only on the community attribute.
    #[test]
    fn classify_axes_are_independent(a in arb_attrs(), b in arb_attrs()) {
        let t = classify_pair(&a, &b);
        let path_changed = a.as_path != b.as_path;
        let comm_changed = a.communities != b.communities;
        prop_assert_eq!(t.community_changed(), comm_changed);
        prop_assert_eq!(t.is_no_path_change(), !path_changed);
        if path_changed && a.as_path.same_as_set(&b.as_path) {
            prop_assert!(matches!(t, AnnouncementType::Xc | AnnouncementType::Xn));
        }
    }

    /// Community sets are order-insensitive and idempotent under merge.
    #[test]
    fn community_set_semantics(values in vec(any::<u32>(), 0..20)) {
        let forward = CommunitySet::from_classic(values.iter().copied().map(Community));
        let mut reversed_values = values.clone();
        reversed_values.reverse();
        let reversed = CommunitySet::from_classic(reversed_values.into_iter().map(Community));
        prop_assert_eq!(&forward, &reversed);
        let mut merged = forward.clone();
        merged.merge(&forward);
        prop_assert_eq!(&merged, &forward);
        prop_assert_eq!(forward.canonical_key(), reversed.canonical_key());
    }

    /// Timestamp normalization preserves order, spacing ties apart and
    /// never moving a message before its original second.
    #[test]
    fn normalization_is_monotonic(seconds in vec(0u64..100, 1..50)) {
        let prefix: Prefix = "10.0.0.0/8".parse().unwrap();
        let mut sorted = seconds;
        sorted.sort_unstable();
        let mut updates: Vec<RouteUpdate> = sorted
            .iter()
            .map(|&s| RouteUpdate::withdraw(s * 1_000_000, prefix))
            .collect();
        normalize_timestamps(&mut updates);
        for w in updates.windows(2) {
            prop_assert!(w[0].time_us <= w[1].time_us, "order violated");
        }
        for (u, &s) in updates.iter().zip(&sorted) {
            prop_assert!(u.time_us >= s * 1_000_000);
            prop_assert!(u.time_us < s * 1_000_000 + 1_000_000, "left its second");
        }
    }

    /// Same-second runs of arbitrary length stay monotonic and never
    /// leave their own second — the regression class where a long run
    /// (≥100,000 updates × 10 µs) used to cross the 1 s boundary and
    /// overtake the next distinct timestamp.
    #[test]
    fn normalization_clamps_arbitrary_run_lengths(
        runs in vec((0u64..12, 1usize..4_000), 1..5),
    ) {
        let prefix: Prefix = "10.0.0.0/8".parse().unwrap();
        let mut runs = runs;
        runs.sort_unstable();
        runs.dedup_by_key(|r| r.0);
        let mut updates = Vec::new();
        let mut run_second = Vec::new();
        for &(s, len) in &runs {
            for _ in 0..len {
                updates.push(RouteUpdate::withdraw(s * 1_000_000, prefix));
                run_second.push(s);
            }
        }
        normalize_timestamps(&mut updates);
        for w in updates.windows(2) {
            prop_assert!(w[0].time_us <= w[1].time_us, "order violated");
        }
        for (u, &s) in updates.iter().zip(&run_second) {
            prop_assert!(u.time_us >= s * 1_000_000, "moved before its second");
            prop_assert!(
                u.time_us < (s + 1) * 1_000_000,
                "crossed into the next second: t={} from second {}",
                u.time_us,
                s
            );
        }
    }

    /// MRT archive round-trips preserve per-session update streams.
    #[test]
    fn mrt_archive_roundtrip(
        times in vec(0u64..86_400_000_000, 1..30),
        withdraw_mask in vec(any::<bool>(), 1..30),
    ) {
        let mut archive = UpdateArchive::new(1_000_000);
        let key = SessionKey::new("rrc00", Asn(20_205), "192.0.2.9".parse().unwrap());
        let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
        let mut sorted = times;
        sorted.sort_unstable();
        for (i, t) in sorted.iter().enumerate() {
            let withdraw = withdraw_mask.get(i % withdraw_mask.len()).copied().unwrap_or(false);
            if withdraw {
                archive.record(&key, RouteUpdate::withdraw(*t, prefix));
            } else {
                let attrs = PathAttributes {
                    as_path: "20205 3356 12654".parse().unwrap(),
                    next_hop: "192.0.2.1".parse().unwrap(),
                    ..Default::default()
                };
                archive.record(&key, RouteUpdate::announce(*t, prefix, attrs));
            }
        }
        let mut bytes = Vec::new();
        archive.write_mrt(&mut bytes).expect("export");
        let parsed = UpdateArchive::read_mrt(&bytes[..], "rrc00", 1_000_000).expect("import");
        prop_assert_eq!(
            parsed.session(&key).expect("session").updates.clone(),
            archive.session(&key).expect("session").updates.clone()
        );
    }

    /// Prefix parse/display round-trips for arbitrary canonical prefixes.
    #[test]
    fn prefix_text_roundtrip(p in arb_prefix()) {
        let text = p.to_string();
        let parsed: Prefix = text.parse().expect("reparse");
        prop_assert_eq!(parsed, p);
    }

    /// AS path display/parse round-trips (single-sequence paths).
    #[test]
    fn as_path_text_roundtrip(asns in vec(arb_asn(), 0..10)) {
        let path = AsPath::from_asns(asns);
        let text = path.to_string();
        let parsed: AsPath = text.parse().expect("reparse");
        prop_assert_eq!(parsed, path);
    }

    /// UPDATE encode→decode→encode is the identity for attributes using
    /// every wire-encodable field: classic, extended and large community
    /// families, MED, ATOMIC_AGGREGATE and AGGREGATOR. The value
    /// round-trips *and* the re-encoded bytes are identical, so the
    /// canonical wire form is stable.
    #[test]
    fn wire_roundtrip_full_attributes(attrs in arb_full_attrs(), prefix in arb_prefix()) {
        let mut attrs = attrs;
        if prefix.is_ipv6() {
            attrs.next_hop = "2001:db8::1".parse().unwrap();
        }
        let cfg = SessionConfig::default();
        let msg = Message::Update(UpdatePacket::announce(prefix, attrs));
        let mut first = bytes::BytesMut::new();
        encode_message(&msg, &cfg, &mut first);
        let first = first.freeze();
        let decoded = decode_message(&mut first.clone(), &cfg).expect("decode");
        prop_assert_eq!(&decoded, &msg);
        let mut second = bytes::BytesMut::new();
        encode_message(&decoded, &cfg, &mut second);
        prop_assert_eq!(second.freeze(), first);
    }

    /// Withdrawals round-trip for both address families.
    #[test]
    fn wire_roundtrip_withdrawal(prefix in arb_prefix()) {
        let cfg = SessionConfig::default();
        let msg = Message::Update(UpdatePacket::withdraw(prefix));
        let mut buf = bytes::BytesMut::new();
        encode_message(&msg, &cfg, &mut buf);
        let decoded = decode_message(&mut buf.freeze(), &cfg).expect("decode");
        prop_assert_eq!(decoded, msg);
    }

    /// MRT record streams survive write→read exactly: BGP4MP MESSAGE(_AS4)
    /// records with full-attribute updates and STATE_CHANGE records, in
    /// arbitrary interleavings. The AS4 subtype switch (forced by 4-byte
    /// ASNs) must be transparent.
    #[test]
    fn mrt_record_stream_roundtrip(
        cells in vec(
            (
                0u32..100_000, 0u32..1_000_000, arb_asn(), arb_full_attrs(),
                any::<bool>(), any::<bool>(),
            ),
            1..20,
        ),
    ) {
        let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
        let states = [
            BgpState::Idle, BgpState::Connect, BgpState::Active,
            BgpState::OpenSent, BgpState::OpenConfirm, BgpState::Established,
        ];
        let records: Vec<MrtRecord> = cells
            .into_iter()
            .enumerate()
            .map(|(i, (secs, micros, peer_asn, attrs, withdraw, state_change))| {
                let timestamp = MrtTimestamp::micros(secs, micros);
                let peer_ip: std::net::IpAddr = "192.0.2.9".parse().unwrap();
                let local_ip: std::net::IpAddr = "192.0.2.1".parse().unwrap();
                if state_change {
                    MrtRecord::StateChange(Bgp4mpStateChange {
                        timestamp,
                        peer_asn,
                        local_asn: Asn(3333),
                        ifindex: 0,
                        peer_ip,
                        local_ip,
                        old_state: states[i % states.len()],
                        new_state: states[(i + 1) % states.len()],
                    })
                } else {
                    let packet = if withdraw {
                        UpdatePacket::withdraw(prefix)
                    } else {
                        UpdatePacket::announce(prefix, attrs)
                    };
                    MrtRecord::Message(Bgp4mpMessage {
                        timestamp,
                        peer_asn,
                        local_asn: Asn(3333),
                        ifindex: 0,
                        peer_ip,
                        local_ip,
                        message: Message::Update(packet),
                    })
                }
            })
            .collect();

        let mut writer = MrtWriter::new(Vec::new());
        writer.write_all(&records).expect("write records");
        prop_assert_eq!(writer.records_written(), records.len() as u64);
        let bytes = writer.into_inner();

        let mut reader = MrtReader::new(&bytes[..]);
        let mut parsed = Vec::new();
        while let Some(record) = reader.next_record().expect("read record") {
            parsed.push(record);
        }
        prop_assert_eq!(parsed, records);
    }
}

/// One negotiable capability. `Unknown` codes stay clear of the decoded
/// registry (1 = multiprotocol, 2 = route refresh, 65 = 4-octet AS) so
/// decode cannot re-shape them, and their payloads respect the one-byte
/// length field.
fn arb_capability() -> impl Strategy<Value = Capability> {
    prop_oneof![
        (prop_oneof![Just(Afi::Ipv4), Just(Afi::Ipv6)], any::<u8>())
            .prop_map(|(afi, safi)| Capability::Multiprotocol { afi, safi }),
        Just(Capability::RouteRefresh),
        any::<u32>().prop_map(|v| Capability::FourOctetAs(Asn(v))),
        (100u8..=255, vec(any::<u8>(), 0..12))
            .prop_map(|(code, value)| Capability::Unknown { code, value }),
    ]
}

/// Legal hold times only: RFC 4271 §4.2 allows 0 or ≥ 3 seconds, with
/// the boundaries (0, 3, 65535) always in the mix.
fn arb_hold_time() -> impl Strategy<Value = u16> {
    prop_oneof![Just(0u16), Just(3u16), Just(u16::MAX), 3u16..=u16::MAX]
}

proptest! {
    /// OPEN encode → decode → re-encode is byte-stable across ASN widths
    /// (2-octet, and 4-octet collapsing the header field to AS_TRANS),
    /// unknown capability payloads, and hold-time boundaries.
    #[test]
    fn open_message_wire_roundtrip_is_byte_stable(
        asn in arb_asn(),
        hold_time in arb_hold_time(),
        bgp_id in any::<u32>(),
        capabilities in vec(arb_capability(), 0..6),
    ) {
        let open = OpenMessage {
            asn,
            hold_time,
            bgp_id: std::net::Ipv4Addr::from(bgp_id),
            capabilities,
        };
        let mut first = bytes::BytesMut::new();
        open.encode_body(&mut first);
        let decoded = OpenMessage::decode_body(&mut first.freeze())
            .expect("legal OPEN must decode");
        prop_assert_eq!(decoded.hold_time, hold_time);
        prop_assert_eq!(&decoded.capabilities, &open.capabilities);
        let mut second = bytes::BytesMut::new();
        decoded.encode_body(&mut second);
        let mut third_src = bytes::BytesMut::new();
        open.encode_body(&mut third_src);
        // Re-encoding the decoded OPEN must reproduce the bytes exactly.
        prop_assert_eq!(second.freeze().to_vec(), third_src.freeze().to_vec());
    }

    /// The classifier's incremental memory account is exact: after every
    /// step of an arbitrary announce/withdraw interleaving with
    /// mixed-family community sets (classic + extended + large),
    /// `state_bytes` equals the from-scratch recomputation over live
    /// stream slots — the running sum never drifts or underflows, no
    /// matter how attribute sets are shared, replaced or re-announced.
    #[test]
    fn state_bytes_always_equals_audit(
        steps in vec((0u8..4, any::<bool>(), arb_full_attrs(), any::<bool>()), 0..60),
    ) {
        let prefixes = ["84.205.64.0/24", "84.205.65.0/24", "10.1.0.0/16", "2001:7fb:fe00::/48"];
        let mut classifier = StreamClassifier::new();
        let mut shared: Option<std::sync::Arc<PathAttributes>> = None;
        for (i, (p, withdraw, attrs, reuse)) in steps.into_iter().enumerate() {
            let prefix: Prefix = prefixes[p as usize].parse().unwrap();
            let u = if withdraw {
                RouteUpdate::withdraw(i as u64, prefix)
            } else {
                // Alternate fresh allocations with re-sent shared handles
                // so the interner sees both replace and refcount paths.
                let handle = match (&shared, reuse) {
                    (Some(a), true) => std::sync::Arc::clone(a),
                    _ => {
                        let a = std::sync::Arc::new(attrs);
                        shared = Some(std::sync::Arc::clone(&a));
                        a
                    }
                };
                RouteUpdate::announce(i as u64, prefix, handle)
            };
            classifier.classify(&u);
            let (incremental, audited) = (classifier.state_bytes(), classifier.audit_state_bytes());
            prop_assert!(
                incremental == audited,
                "incremental account drifted after step {}: {} != {}",
                i,
                incremental,
                audited
            );
        }
    }

    /// Interning is invisible to classification: a stream whose
    /// announcements share one allocation per attribute set produces the
    /// identical event sequence to the same stream with every update
    /// deep-copied into its own allocation.
    #[test]
    fn interned_and_owned_attrs_classify_identically(
        steps in vec((0u8..3, any::<bool>(), arb_full_attrs(), any::<bool>()), 0..60),
    ) {
        let prefixes = ["84.205.64.0/24", "84.205.65.0/24", "2001:7fb:fe00::/48"];
        let mut last: Option<std::sync::Arc<PathAttributes>> = None;
        let updates: Vec<RouteUpdate> = steps
            .into_iter()
            .enumerate()
            .map(|(i, (p, withdraw, attrs, reuse))| {
                let prefix: Prefix = prefixes[p as usize].parse().unwrap();
                if withdraw {
                    RouteUpdate::withdraw(i as u64, prefix)
                } else {
                    let handle = match (&last, reuse) {
                        (Some(a), true) => std::sync::Arc::clone(a),
                        _ => {
                            let a = std::sync::Arc::new(attrs);
                            last = Some(std::sync::Arc::clone(&a));
                            a
                        }
                    };
                    RouteUpdate::announce(i as u64, prefix, handle)
                }
            })
            .collect();
        let owned: Vec<RouteUpdate> = updates
            .iter()
            .map(|u| match u.attributes() {
                Some(attrs) => RouteUpdate::announce(u.time_us, u.prefix, attrs.clone()),
                None => RouteUpdate::withdraw(u.time_us, u.prefix),
            })
            .collect();

        let mut a = StreamClassifier::new();
        let mut b = StreamClassifier::new();
        for (u_shared, u_owned) in updates.iter().zip(&owned) {
            let ea = a.classify(u_shared);
            let eb = b.classify(u_owned);
            prop_assert_eq!(ea.kind, eb.kind);
            prop_assert_eq!(ea.time_us, eb.time_us);
            prop_assert_eq!(ea.prefix, eb.prefix);
            // Attribute *values* must match; allocations may differ.
            prop_assert_eq!(
                ea.attrs.as_deref(),
                eb.attrs.as_deref()
            );
        }
        prop_assert_eq!(a.stream_count(), b.stream_count());
        // Footprints are *capacity*-based, so the two classifiers may
        // legitimately account different byte totals for value-equal sets
        // (a `clone` can shrink capacity) — but each account must agree
        // with its own audit.
        prop_assert_eq!(a.state_bytes(), a.audit_state_bytes());
        prop_assert_eq!(b.state_bytes(), b.audit_state_bytes());
    }

    /// The codec refuses the RFC 4271 §4.2 illegal hold times (1–2 s) at
    /// decode, whatever else the OPEN carries.
    #[test]
    fn open_message_rejects_unacceptable_hold_times(
        asn in arb_asn(),
        hold_time in 1u16..=2,
        capabilities in vec(arb_capability(), 0..4),
    ) {
        let open = OpenMessage {
            asn,
            hold_time,
            bgp_id: "192.0.2.1".parse().unwrap(),
            capabilities,
        };
        let mut buf = bytes::BytesMut::new();
        open.encode_body(&mut buf);
        prop_assert_eq!(
            OpenMessage::decode_body(&mut buf.freeze()),
            Err(keep_communities_clean::wire::WireError::BadValue {
                what: "hold time",
                value: hold_time as u32,
            })
        );
    }
}
