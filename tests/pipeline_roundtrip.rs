//! End-to-end pipeline: generate → MRT bytes → parse → clean → classify.
//!
//! These tests exercise the exact path a real reproduction would take with
//! downloaded RouteViews/RIS archives, checking cross-crate invariants
//! that no unit test can see.

use keep_communities_clean::analysis::table::overview;
use keep_communities_clean::analysis::{
    classify_archive, clean_archive, AnnouncementType, CleaningConfig,
};
use keep_communities_clean::collector::UpdateArchive;
use keep_communities_clean::tracegen::universe::UniverseConfig;
use keep_communities_clean::tracegen::{generate_mar20, Mar20Config};

fn small_config(seed: u64) -> Mar20Config {
    Mar20Config {
        seed,
        target_announcements: 15_000,
        universe: UniverseConfig {
            seed,
            n_collectors: 4,
            n_peers: 12,
            n_sessions: 25,
            n_prefixes_v4: 300,
            n_prefixes_v6: 30,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn mrt_roundtrip_preserves_every_update() {
    let out = generate_mar20(&small_config(1));
    let mut bytes = Vec::new();
    out.archive.write_mrt(&mut bytes).expect("MRT export");
    let parsed = UpdateArchive::read_mrt(&bytes[..], "rrc00", out.archive.epoch_seconds)
        .expect("MRT import");
    assert_eq!(parsed.update_count(), out.archive.update_count());
    assert_eq!(parsed.announcement_count(), out.archive.announcement_count());
    // Per-prefix content survives: overview statistics agree except
    // session naming (read_mrt assigns one collector name).
    let a = overview(&out.archive);
    let b = overview(&parsed);
    assert_eq!(a.ipv4_prefixes, b.ipv4_prefixes);
    assert_eq!(a.ipv6_prefixes, b.ipv6_prefixes);
    assert_eq!(a.ases, b.ases);
    assert_eq!(a.uniq_as_paths, b.uniq_as_paths);
    assert_eq!(a.with_communities, b.with_communities);
}

#[test]
fn classification_is_invariant_under_mrt_roundtrip() {
    let out = generate_mar20(&small_config(2));
    let direct = classify_archive(&out.archive);

    let mut bytes = Vec::new();
    out.archive.write_mrt(&mut bytes).expect("MRT export");
    let parsed = UpdateArchive::read_mrt(&bytes[..], "rrc00", out.archive.epoch_seconds)
        .expect("MRT import");
    let roundtripped = classify_archive(&parsed);

    // Session keys differ (collector names collapse) but aggregate type
    // counts must be identical: classification happens per (prefix,
    // session) stream and streams are preserved.
    // NOTE: collapsing collectors could merge sessions with equal
    // (peer_asn, peer_ip); the universe generates unique peer IPs, so the
    // streams stay 1:1.
    assert_eq!(direct.counts.classified_total(), roundtripped.counts.classified_total());
    for t in AnnouncementType::ALL {
        assert_eq!(direct.counts.get(t), roundtripped.counts.get(t), "type {t} diverged");
    }
}

#[test]
fn cleaning_is_idempotent() {
    let out = generate_mar20(&small_config(3));
    let mut once = out.archive.clone();
    let r1 = clean_archive(&mut once, &out.registry, &CleaningConfig::default());
    let mut twice = once.clone();
    let r2 = clean_archive(&mut twice, &out.registry, &CleaningConfig::default());
    assert!(r1.removed_unallocated_asn + r1.removed_unallocated_prefix > 0);
    assert_eq!(r2.removed_unallocated_asn, 0, "second pass must remove nothing");
    assert_eq!(r2.removed_unallocated_prefix, 0);
    assert_eq!(r2.route_server_insertions, 0, "RS insertion must be idempotent");
    assert_eq!(once.update_count(), twice.update_count());
}

#[test]
fn cleaned_archive_contains_no_bogons() {
    let out = generate_mar20(&small_config(4));
    let mut archive = out.archive.clone();
    clean_archive(&mut archive, &out.registry, &CleaningConfig::default());
    for (_, rec) in archive.sessions() {
        for u in &rec.updates {
            assert!(
                out.registry.prefix_allocated(&u.prefix, u.time_us),
                "unallocated prefix {} survived cleaning",
                u.prefix
            );
            if let Some(attrs) = u.attributes() {
                for asn in attrs.as_path.asns() {
                    assert!(
                        out.registry.asn_allocated(asn, u.time_us),
                        "unallocated ASN {asn} survived cleaning"
                    );
                }
            }
        }
    }
}

#[test]
fn route_server_paths_start_with_peer_after_cleaning() {
    let out = generate_mar20(&small_config(5));
    let mut archive = out.archive.clone();
    clean_archive(&mut archive, &out.registry, &CleaningConfig::default());
    let mut rs_sessions = 0;
    for (key, rec) in archive.sessions() {
        if !rec.meta.route_server {
            continue;
        }
        rs_sessions += 1;
        for u in &rec.updates {
            if let Some(attrs) = u.attributes() {
                assert_eq!(
                    attrs.as_path.first(),
                    Some(key.peer_asn),
                    "route-server path must start with the peer ASN after cleaning"
                );
            }
        }
    }
    assert!(rs_sessions > 0, "universe should contain route-server sessions");
}

#[test]
fn timestamps_strictly_ordered_after_cleaning() {
    let out = generate_mar20(&small_config(6));
    let mut archive = out.archive.clone();
    clean_archive(&mut archive, &out.registry, &CleaningConfig::default());
    for (key, rec) in archive.sessions() {
        if !rec.meta.second_granularity {
            continue;
        }
        for w in rec.updates.windows(2) {
            assert!(
                w[0].time_us < w[1].time_us,
                "session {key}: normalization must strictly order same-second arrivals"
            );
        }
    }
}

#[test]
fn type_shares_stable_across_seeds() {
    // The calibrated generator should land in the paper's bands for any
    // seed, not just the default — shares are a property of the model.
    for seed in [10u64, 20, 30] {
        let out = generate_mar20(&small_config(seed));
        let mut archive = out.archive.clone();
        clean_archive(&mut archive, &out.registry, &CleaningConfig::default());
        let c = classify_archive(&archive).counts;
        let nc_nn = c.share(AnnouncementType::Nc) + c.share(AnnouncementType::Nn);
        assert!(
            (35.0..65.0).contains(&nc_nn),
            "seed {seed}: no-path-change share {nc_nn:.1}% out of band"
        );
        let pc = c.share(AnnouncementType::Pc);
        assert!((25.0..50.0).contains(&pc), "seed {seed}: pc share {pc:.1}% out of band");
    }
}
