//! End-to-end live collection: simulated/generated internets speak real
//! BGP over loopback TCP into the collector daemon, and the live
//! pipeline results must be **identical** to the offline `ArchiveSource`
//! analysis of the same update set — including after round-tripping the
//! daemon's rotated MRT dumps through `MrtSource`.
//!
//! Determinism: the daemon stamps arrivals in `Logical` mode (the n-th
//! update of each session gets `n × spacing`), which TCP's per-session
//! ordering makes reproducible; `offline_reference` applies the same
//! rule to the input so both paths see byte-identical update sets.

use keep_communities_clean::adapter::capture_to_archive;
use keep_communities_clean::analysis::table::{OverviewSink, OverviewStats, TypeShares};
use keep_communities_clean::analysis::{
    run_live, run_pipeline, CleaningConfig, CleaningStage, CountsSink, MrtSource, TypeCounts,
};
use keep_communities_clean::collector::{ArchiveSource, UpdateArchive};
use keep_communities_clean::peer::{
    offline_reference, Collector, CollectorConfig, RotateConfig, StampMode,
};
use keep_communities_clean::sim::bridge::{replay_archive, BridgeConfig};
use keep_communities_clean::sim::lab::{build_lab, lab_prefix, LabExperiment, LabNetwork};
use keep_communities_clean::sim::{SimDuration, SimTime, VendorProfile};
use keep_communities_clean::tracegen::{generate_mar20, Mar20Config};
use keep_communities_clean::types::Asn;

/// Collector config used by every test: logical stamping, route-server
/// metadata lifted from the input archive (the daemon cannot learn it
/// from the wire, exactly like MRT).
fn collector_cfg(input: &UpdateArchive) -> CollectorConfig {
    let route_servers: Vec<_> = input
        .sessions()
        .filter(|(_, rec)| rec.meta.route_server)
        .map(|(k, _)| (k.peer_asn, k.peer_ip))
        .collect();
    CollectorConfig::new("rrc00", Asn(3333), "198.51.100.1".parse().unwrap())
        .with_stamp(StampMode::logical(1_000))
        .with_route_servers(route_servers)
}

/// Replays `input` into a fresh daemon and returns the live pipeline's
/// (counts, overview) plus the daemon's stats.
fn run_live_loopback(
    input: &UpdateArchive,
    cfg: CollectorConfig,
) -> (TypeCounts, OverviewStats, keep_communities_clean::peer::CollectorStats) {
    let mut collector = Collector::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let addr = collector.local_addr();
    let source = collector.take_source();
    let stop = source.shutdown_flag();

    let report = replay_archive(addr, input, &BridgeConfig::default()).expect("replay");
    assert_eq!(report.updates_sent, input.update_count() as u64, "bridge sent everything");
    assert_eq!(report.sessions, input.session_count() as u64);

    collector.shutdown();
    let stats = collector.join();
    // The feed is closed and fully buffered; the pipeline drains it.
    let out = run_live(source, (), (CountsSink::default(), OverviewSink::default()), &stop)
        .expect("live sources do not fail");
    let (counts, overview) = out.sink;
    (counts.finish(), overview.finish(), stats)
}

/// Offline half of the comparison: `ArchiveSource` over the reference
/// archive with the same sinks.
fn run_offline(reference: &UpdateArchive) -> (TypeCounts, OverviewStats) {
    let out = run_pipeline(
        ArchiveSource::new(reference),
        (),
        (CountsSink::default(), OverviewSink::default()),
    )
    .expect("archive sources do not fail");
    let (counts, overview) = out.sink;
    (counts.finish(), overview.finish())
}

/// A lab-simulation capture: Exp2 with two link flaps (the sim→analysis
/// suite's richest single-collector stream).
fn sim_archive() -> UpdateArchive {
    let LabNetwork { mut net, ids } = build_lab(LabExperiment::Exp2, VendorProfile::CISCO_IOS);
    net.schedule_announce(SimTime::ZERO, ids.z1, lab_prefix());
    net.run_until_quiet();
    let t1 = net.now() + SimDuration::from_secs(60);
    net.schedule_link_down(t1, ids.y1_y2);
    net.run_until_quiet();
    let t2 = net.now() + SimDuration::from_secs(60);
    net.schedule_link_up(t2, ids.y1_y2);
    net.run_until_quiet();
    let capture = net.capture(ids.c1).expect("collector capture").clone();
    capture_to_archive(&net, "rrc00", &capture, 0)
}

#[test]
fn simulated_topology_over_tcp_matches_offline_analysis() {
    let input = sim_archive();
    assert!(input.update_count() > 0, "simulation produced traffic");
    let cfg = collector_cfg(&input);
    let reference = offline_reference(&input, &cfg);

    let (live_counts, live_overview, stats) = run_live_loopback(&input, cfg);
    let (offline_counts, offline_overview) = run_offline(&reference);

    assert_eq!(stats.updates, input.update_count() as u64, "daemon ingested everything");
    assert_eq!(live_counts, offline_counts, "type classification diverged");
    assert_eq!(live_overview, offline_overview, "overview diverged");
    // Byte-for-byte on the rendered paper tables.
    assert_eq!(
        live_overview.render("Table 1"),
        offline_overview.render("Table 1"),
        "rendered Table 1 diverged"
    );
    assert_eq!(
        TypeShares::new(vec![("live".into(), live_counts)]).render(),
        TypeShares::new(vec![("live".into(), offline_counts)]).render(),
        "rendered Table 2 diverged"
    );
}

#[test]
fn generated_internet_over_tcp_matches_offline_with_cleaning() {
    // A small generated collector day — many sessions, route servers,
    // community churn — through the full path with the §4 cleaning stage
    // on both sides.
    let mut gen_cfg = Mar20Config { target_announcements: 2_500, ..Default::default() };
    gen_cfg.universe.n_prefixes_v4 = 200;
    gen_cfg.universe.n_sessions = 24;
    let day = generate_mar20(&gen_cfg);
    let input = day.archive;
    let cfg = collector_cfg(&input);
    let reference = offline_reference(&input, &cfg);

    // Live: daemon → LiveSource → cleaning stage → sinks.
    let mut collector = Collector::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let addr = collector.local_addr();
    let source = collector.take_source();
    let stop = source.shutdown_flag();
    replay_archive(addr, &input, &BridgeConfig::default()).expect("replay");
    collector.shutdown();
    collector.join();
    let live = run_live(
        source,
        CleaningStage::new(&day.registry, CleaningConfig::default()),
        (CountsSink::default(), OverviewSink::default()),
        &stop,
    )
    .expect("live run");

    // Offline: ArchiveSource over the reference with the same stage.
    let offline = run_pipeline(
        ArchiveSource::new(&reference),
        CleaningStage::new(&day.registry, CleaningConfig::default()),
        (CountsSink::default(), OverviewSink::default()),
    )
    .expect("offline run");

    let (live_counts, live_overview) = live.sink;
    let (off_counts, off_overview) = offline.sink;
    assert_eq!(live_counts.finish(), off_counts.finish(), "cleaned classification diverged");
    assert_eq!(live_overview.finish(), off_overview.finish(), "cleaned overview diverged");
    assert_eq!(live.stats.updates, offline.stats.updates);
    assert_eq!(live.stats.kept, offline.stats.kept, "cleaning dropped differently");
}

#[test]
fn rotated_mrt_dumps_reanalyze_to_the_same_tables() {
    let input = sim_archive();
    let dir = std::env::temp_dir().join(format!("kcc_live_mrt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    assert!(input.update_count() >= 3, "need enough traffic to force a rotation");
    let cfg = collector_cfg(&input).with_mrt(RotateConfig::new(&dir, 2));
    let route_servers = cfg.route_servers.clone();
    let reference = offline_reference(&input, &cfg);

    let (live_counts, live_overview, stats) = run_live_loopback(&input, cfg);
    assert_eq!(stats.mrt_records, input.update_count() as u64, "every update dumped");
    assert!(stats.mrt_files.len() > 1, "rotation produced multiple files");

    // Concatenate the rotated dumps and analyze them like a RouteViews
    // download.
    let bytes =
        keep_communities_clean::peer::rotate::concat_dumps(&stats.mrt_files).expect("read dumps");
    let out = run_pipeline(
        MrtSource::new(&bytes[..], "rrc00", 0).with_route_servers(route_servers),
        (),
        (CountsSink::default(), OverviewSink::default()),
    )
    .expect("mrt reanalysis");
    let (mrt_counts, mrt_overview) = out.sink;
    assert_eq!(mrt_counts.finish(), live_counts, "MRT round-trip diverged from live");
    assert_eq!(mrt_overview.finish(), live_overview, "MRT overview diverged from live");

    // And the dumps decode to exactly the reference archive.
    let from_mrt = UpdateArchive::read_mrt(&bytes[..], "rrc00", 0).expect("decode dumps");
    assert_eq!(from_mrt.session_count(), reference.session_count());
    for (key, rec) in reference.sessions() {
        let got = from_mrt.session(key).expect("session in dumps");
        assert_eq!(got.updates, rec.updates, "session {key} diverged in MRT");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reconnect_after_cease_continues_the_same_session() {
    // Two sequential replays of the same single-session archive: the
    // second TCP session reuses the same session key (identity = BGP
    // id), the session is announced to the pipeline only once, and
    // logical stamping continues where it left off.
    let input = sim_archive();
    let single: UpdateArchive = {
        let mut a = UpdateArchive::new(0);
        let (key, rec) = input.sessions().next().expect("one session");
        a.add_session(rec.meta.clone());
        for u in &rec.updates {
            a.record(key, u.clone());
        }
        a
    };
    let cfg = collector_cfg(&single);
    let mut collector = Collector::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let addr = collector.local_addr();
    let source = collector.take_source();
    let stop = source.shutdown_flag();

    replay_archive(addr, &single, &BridgeConfig::default()).expect("first life");
    replay_archive(addr, &single, &BridgeConfig::default()).expect("second life");
    collector.shutdown();
    let stats = collector.join();

    assert_eq!(stats.established, 2, "two TCP sessions");
    assert_eq!(stats.sessions, 1, "one logical session");
    assert_eq!(stats.updates, 2 * single.update_count() as u64);

    let out = run_live(source, (), OverviewSink::default(), &stop).expect("live run");
    assert_eq!(out.stats.sessions, 1, "pipeline saw one session, announced once");
    assert_eq!(out.stats.updates, 2 * single.update_count() as u64);
}
