//! Workspace smoke test: the umbrella crate's documented quickstart must
//! keep working exactly as written in `src/lib.rs`'s crate docs. If this
//! test fails, the README/rustdoc quickstart is lying to users.

use keep_communities_clean::sim::lab::{run_experiment, LabExperiment};
use keep_communities_clean::sim::VendorProfile;

#[test]
fn documented_quickstart_reaches_the_collector() {
    // Exactly the crate-docs quickstart: the paper's Exp2 — a community
    // change alone propagates to the route collector.
    let report = run_experiment(LabExperiment::Exp2, VendorProfile::CISCO_IOS);
    assert_eq!(
        report.at_collector.len(),
        1,
        "Exp2 under Cisco IOS must deliver exactly one update to the collector"
    );
}

#[test]
fn quickstart_update_is_a_pure_community_change() {
    // The delivered update must carry path attributes (it is an announce,
    // not a withdraw), and X1's RIB must hold the new community — the
    // community change, not a path change, is what propagated.
    let report = run_experiment(LabExperiment::Exp2, VendorProfile::CISCO_IOS);
    let captured = &report.at_collector[0];
    assert!(captured.update.attrs().is_some(), "collector saw a withdraw, expected an announce");
    assert!(report.x1_rib_changed, "X1's RIB must hold the changed community");
}

#[test]
fn quickstart_is_deterministic() {
    // Two runs of the documented quickstart must agree — the lab
    // experiments are fully deterministic.
    let a = run_experiment(LabExperiment::Exp2, VendorProfile::CISCO_IOS);
    let b = run_experiment(LabExperiment::Exp2, VendorProfile::CISCO_IOS);
    assert_eq!(a.at_collector.len(), b.at_collector.len());
    assert_eq!(a.duplicates_sent, b.duplicates_sent);
    assert_eq!(a.duplicates_suppressed, b.duplicates_suppressed);
}
