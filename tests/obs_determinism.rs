//! Metrics exported from parallel analysis runs are deterministic.
//!
//! The corpus engine's contract — a run is a pure function of the
//! member set — extends to its metrics export: the Prometheus text a
//! [`CorpusReport`] or [`WatchReport`] writes must be byte-identical no
//! matter the collector insertion order or worker thread count. Only
//! counter/gauge figures carry that guarantee (wall-time profile
//! histograms are genuinely nondeterministic and are exported
//! separately); these tests pin it on the generated multi-vantage day
//! and on a sharded watch run.

use keep_communities_clean::analysis::corpus::run_corpus_report;
use keep_communities_clean::analysis::pipeline::PipelineBuilder;
use keep_communities_clean::analysis::{
    run_pipeline, CleaningConfig, Corpus, CorpusReport, WatchConfig, WatchSink,
};
use keep_communities_clean::collector::{ArchiveSource, SessionKey, UpdateArchive};
use keep_communities_clean::obs::Registry;
use keep_communities_clean::tracegen::universe::UniverseConfig;
use keep_communities_clean::tracegen::{
    vantage_names, Mar20Config, MultiVantageConfig, VantageSource,
};
use keep_communities_clean::types::{
    Asn, Community, CommunitySet, PathAttributes, Prefix, RouteUpdate,
};

fn mar20_cfg() -> MultiVantageConfig {
    let base = Mar20Config {
        target_announcements: 4_000,
        universe: UniverseConfig {
            n_collectors: 3,
            n_peers: 9,
            n_sessions: 18,
            n_prefixes_v4: 120,
            n_prefixes_v6: 12,
            ..Default::default()
        },
        ..Default::default()
    };
    MultiVantageConfig { base, force_second_granularity: Vec::new() }
}

fn mar20_report(names: &[String], threads: usize) -> CorpusReport {
    let cfg = mar20_cfg();
    let mut corpus = Corpus::new();
    let mut registry = None;
    for name in names {
        let v = VantageSource::new(&cfg, name);
        if registry.is_none() {
            registry = Some(v.registry().clone());
        }
        corpus.push(name, v).unwrap();
    }
    run_corpus_report(corpus, threads, &registry.unwrap(), CleaningConfig::default()).unwrap()
}

/// `CorpusReport::export_metrics` renders byte-identically for every
/// collector insertion order and worker thread count.
#[test]
fn corpus_metrics_export_is_order_and_thread_independent() {
    let cfg = mar20_cfg();
    let names = vantage_names(&cfg.base);

    let reference = Registry::new();
    mar20_report(&names, 1).export_metrics(&reference);
    let reference = reference.render();
    assert!(reference.contains("kcc_corpus_updates_total"), "export writes corpus counters");

    let mut reversed = names.clone();
    reversed.reverse();
    for (order, threads) in [(&names, 4), (&reversed, 1), (&reversed, 5)] {
        let registry = Registry::new();
        mar20_report(order, threads).export_metrics(&registry);
        assert_eq!(
            registry.render(),
            reference,
            "corpus metrics diverged (threads={threads}, reversed={})",
            std::ptr::eq(order, &reversed),
        );
    }
}

/// A small deterministic archive with enough repetition to open
/// streams and windows in a watch run.
fn watch_archive() -> UpdateArchive {
    let mut a = UpdateArchive::new(0);
    let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
    for peer in 0..6u32 {
        let key = SessionKey::new(
            "rrc00",
            Asn(100 + peer),
            format!("10.7.0.{}", peer + 1).parse().unwrap(),
        );
        for i in 0..40u64 {
            let attrs = PathAttributes {
                as_path: format!("{} 3356 12654", 100 + peer).parse().unwrap(),
                communities: CommunitySet::from_classic([Community::from_parts(
                    3356,
                    (i % 7) as u16,
                )]),
                ..Default::default()
            };
            a.record(&key, RouteUpdate::announce(i * 60, prefix, attrs));
        }
    }
    a
}

/// `WatchReport::export_metrics` renders byte-identically whether the
/// run was serial or hash-partitioned across any number of shards.
#[test]
fn watch_metrics_export_is_shard_count_independent() {
    let archive = watch_archive();
    let cfg = WatchConfig::default();

    let serial = run_pipeline(ArchiveSource::new(&archive), (), WatchSink::new(cfg))
        .expect("archive sources cannot fail")
        .sink
        .finish();
    let reference = Registry::new();
    serial.export_metrics(&reference);
    let reference = reference.render();
    assert!(reference.contains("kcc_watch_updates_total"), "export writes watch counters");

    for shards in [1usize, 3, 5] {
        let sharded = PipelineBuilder::new(ArchiveSource::new(&archive))
            .sink(WatchSink::new(cfg))
            .shards(shards)
            .run()
            .expect("archive sources cannot fail")
            .sink
            .finish();
        let registry = Registry::new();
        sharded.export_metrics(&registry);
        assert_eq!(registry.render(), reference, "watch metrics diverged at {shards} shards");
    }
}
