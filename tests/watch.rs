//! CommunityWatch equivalence and determinism properties.
//!
//! The watch service's contract is threefold, and each clause gets a
//! property test here:
//!
//! 1. **Online equals batch** — a `WatchSink` with a whole-day window
//!    and an attached profiler produces byte-identical alert lines to
//!    the batch `CommunityProfiler::detect` over the same archive.
//! 2. **Shard-count independence** — fanning the watch sink across N
//!    worker shards changes nothing: same alerts, same counters, for
//!    any shard count.
//! 3. **Collector-order independence** — a corpus watch run is a pure
//!    function of the member set; insertion order and thread count must
//!    not change one byte of the combined alert list.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use keep_communities_clean::analysis::pipeline::PipelineBuilder;
use keep_communities_clean::analysis::{
    run_pipeline, CommunityProfiler, Corpus, WatchConfig, WatchReport, WatchSink,
};
use keep_communities_clean::collector::{ArchiveSource, SessionKey, UpdateArchive};
use keep_communities_clean::types::{
    AsPath, Asn, Community, CommunitySet, MessageKind, Origin, PathAttributes, Prefix, RouteUpdate,
};

// ---------------------------------------------------------------------
// strategies (the tests/props.rs idiom)
// ---------------------------------------------------------------------

fn arb_asn() -> impl Strategy<Value = Asn> {
    prop_oneof![(1u32..65_000).prop_map(Asn), (70_000u32..4_000_000).prop_map(Asn)]
}

fn arb_communities() -> impl Strategy<Value = CommunitySet> {
    vec((1u16..64_000, any::<u16>()), 0..5).prop_map(|cs| {
        CommunitySet::from_classic(cs.into_iter().map(|(a, b)| Community::from_parts(a, b)))
    })
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (vec(arb_asn(), 1..8), arb_communities(), 0u8..3).prop_map(|(asns, communities, origin)| {
        PathAttributes {
            as_path: AsPath::from_asns(asns),
            next_hop: "192.0.2.1".parse().unwrap(),
            origin: Origin::from_code(origin).expect("0..3"),
            communities,
            ..Default::default()
        }
    })
}

/// An arbitrary multi-session archive over a small prefix pool — the
/// adversarial input for the online/batch and sharding equivalences.
/// Random per-update AS paths mean origins and on-path ASes genuinely
/// churn across windows, so the path checks fire on real inputs, not
/// just on the empty case.
fn arb_archive() -> impl Strategy<Value = UpdateArchive> {
    let prefixes = ["84.205.64.0/24", "84.205.65.0/24", "2001:7fb:fe00::/48"];
    let update = (0u8..3, 0u64..86_400, any::<bool>(), arb_attrs());
    vec(vec(update, 0..40), 1..5).prop_map(move |sessions| {
        let mut archive = UpdateArchive::new(0);
        for (s, updates) in sessions.into_iter().enumerate() {
            let key = SessionKey::new(
                if s % 2 == 0 { "rrc00" } else { "rrc01" },
                Asn(20_000 + s as u32),
                format!("192.0.2.{}", s + 1).parse().unwrap(),
            );
            let mut sorted = updates;
            sorted.sort_by_key(|(_, t, _, _)| *t);
            for (p, t, withdraw, mut attrs) in sorted {
                let prefix: Prefix = prefixes[p as usize].parse().unwrap();
                if withdraw {
                    archive.record(&key, RouteUpdate::withdraw(t * 1_000_000, prefix));
                } else {
                    if prefix.is_ipv6() {
                        attrs.next_hop = "2001:db8::1".parse().unwrap();
                    }
                    archive.record(&key, RouteUpdate::announce(t * 1_000_000, prefix, attrs));
                }
            }
        }
        archive
    })
}

fn alert_lines(report: &WatchReport) -> Vec<String> {
    report.alerts.iter().map(|a| a.to_line()).collect()
}

/// A deterministic per-collector day that *provokes* watch alerts: a
/// stable origin for the first windows, then a variant-chosen hijacker
/// origin — so the order-independence property is tested on non-empty
/// alert lists.
fn watch_collector_archive(collector: &str, variant: u64) -> UpdateArchive {
    let window_us = WatchConfig::default().window_us;
    let mut a = UpdateArchive::new(0);
    let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
    for peer in 0..3u32 {
        let key = SessionKey::new(
            collector,
            Asn(100 + peer),
            format!("10.9.{}.{}", variant % 200, peer + 1).parse().unwrap(),
        );
        for w in 0..8u64 {
            let origin = if w == 5 { 64_496 + (variant % 100) as u32 } else { 12_654 };
            let attrs = PathAttributes {
                as_path: format!("{} 3356 {origin}", 100 + peer).parse().unwrap(),
                communities: CommunitySet::from_classic([Community::from_parts(
                    3356,
                    ((w + variant) % 5) as u16,
                )]),
                ..Default::default()
            };
            a.record(&key, RouteUpdate::announce(w * window_us + peer as u64, prefix, attrs));
        }
    }
    a
}

// ---------------------------------------------------------------------
// properties
// ---------------------------------------------------------------------

proptest! {
    /// With a whole-day window and an attached profiler, the online
    /// watch service is byte-equal to the batch detector — the
    /// equivalence `kcc_core::watch` promises in its module docs. The
    /// profiler trains on the raw day; the detected day carries an
    /// injected blackhole + fat-finger perturbation so the comparison
    /// regularly covers non-empty alert lists.
    #[test]
    fn whole_day_online_equals_batch_detect(archive in arb_archive(), perturb in any::<bool>()) {
        let mut profiler = CommunityProfiler::new();
        profiler.train(&archive);
        let profiler = Arc::new(profiler);

        let mut day = archive;
        if perturb {
            if let Some((_, rec)) = day.sessions_mut().next() {
                if let Some(u) = rec
                    .updates
                    .iter_mut()
                    .find(|u| matches!(u.kind, MessageKind::Announcement(_)))
                {
                    if let MessageKind::Announcement(attrs) = &mut u.kind {
                        let attrs = Arc::make_mut(attrs);
                        attrs.communities.insert(
                            keep_communities_clean::types::community::well_known::BLACKHOLE,
                        );
                        attrs.communities.insert(Community::from_parts(2007, 9_999));
                    }
                }
            }
        }

        let cfg = WatchConfig::whole_day();
        let batch = profiler.detect(&day, &cfg.anomaly);
        let online = run_pipeline(
            ArchiveSource::new(&day),
            (),
            WatchSink::new(cfg).with_profile(Arc::clone(&profiler)),
        )
        .expect("archive sources cannot fail")
        .sink
        .finish();

        let batch_lines: Vec<String> = batch.iter().map(|a| a.to_line()).collect();
        prop_assert_eq!(alert_lines(&online), batch_lines);
    }

    /// The watch report is shard-count independent: the same archive
    /// through 1, 2, 3 or 5 hash-partitioned workers yields exactly the
    /// serial alert list and counters.
    #[test]
    fn watch_report_is_shard_count_independent(archive in arb_archive()) {
        let cfg = WatchConfig::default();
        let serial = run_pipeline(ArchiveSource::new(&archive), (), WatchSink::new(cfg))
            .expect("archive sources cannot fail")
            .sink
            .finish();

        for shards in [1usize, 2, 3, 5] {
            let sharded = PipelineBuilder::new(ArchiveSource::new(&archive))
                .sink(WatchSink::new(cfg))
                .shards(shards)
                .run()
                .expect("archive sources cannot fail")
                .sink
                .finish();
            prop_assert_eq!(alert_lines(&sharded), alert_lines(&serial));
            prop_assert_eq!(sharded.updates, serial.updates);
            prop_assert_eq!(sharded.streams, serial.streams);
            prop_assert_eq!(sharded.windows, serial.windows);
            prop_assert_eq!(sharded.agreement_summary(), serial.agreement_summary());
            prop_assert_eq!(sharded.kind_counts(), serial.kind_counts());
        }
    }

    /// A corpus watch run is a pure function of the member set: any
    /// collector insertion order and worker thread count produce the
    /// byte-identical combined alert list.
    #[test]
    fn corpus_watch_is_collector_order_independent(
        rotation in 0usize..6,
        swap in any::<bool>(),
        threads in 1usize..6,
        variants in vec(0u64..40, 4..5),
    ) {
        let names = ["rrc10", "rrc04", "route-views3", "rrc21"];
        let archives: Vec<UpdateArchive> = names
            .iter()
            .zip(&variants)
            .map(|(n, &v)| watch_collector_archive(n, v))
            .collect();
        let cfg = WatchConfig::default();

        let run = |insertion: &[usize], threads: usize| -> WatchReport {
            let mut corpus = Corpus::new();
            for &i in insertion {
                corpus.push(names[i], ArchiveSource::new(&archives[i])).unwrap();
            }
            PipelineBuilder::collectors(corpus)
                .threads(threads)
                .stages_for(|_: &str| ())
                .sinks_for(move |_: &str| WatchSink::new(cfg))
                .run()
                .expect("archive sources cannot fail")
                .combined
                .finish()
        };

        // Reference: sorted-name insertion, one worker.
        let mut reference_order: Vec<usize> = (0..names.len()).collect();
        reference_order.sort_by_key(|&i| names[i]);
        let reference = run(&reference_order, 1);
        // The provoked hijacks must actually be there, or this property
        // only ever checks the empty list.
        prop_assert!(!reference.alerts.is_empty());

        let mut insertion: Vec<usize> = (0..names.len()).collect();
        insertion.rotate_left(rotation % names.len());
        if swap {
            insertion.swap(0, names.len() - 1);
        }
        let shuffled = run(&insertion, threads);
        prop_assert_eq!(alert_lines(&shuffled), alert_lines(&reference));
        prop_assert_eq!(shuffled.windows, reference.windows);
        prop_assert_eq!(shuffled.updates, reference.updates);
        prop_assert_eq!(shuffled.agreement_summary(), reference.agreement_summary());
    }
}
