//! Hot-reloadable daemon configuration, end to end over the control
//! socket: candidate edits are invisible until `commit`, `discard`
//! restores the running config, and a mid-run peer add/remove never
//! disturbs sessions the change does not name — proven by tables
//! byte-identical to the offline reference.

use std::io::{BufRead, BufReader, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use keep_communities_clean::analysis::table::{OverviewSink, TypeShares};
use keep_communities_clean::analysis::{AnalysisSink, CountsSink, PipelineBuilder};
use keep_communities_clean::collector::{ArchiveSource, PeerMeta, SessionKey, UpdateArchive};
use keep_communities_clean::peer::{
    offline_reference, ActiveSpeaker, Collector, CollectorConfig, ControlServer, FsmConfig,
    PeerError, StampMode, TraceLevel, WallClock,
};
use keep_communities_clean::tracegen::{generate_mar20, Mar20Config};
use keep_communities_clean::types::{Asn, MessageKind, RouteUpdate};
use keep_communities_clean::wire::{Notification, NotificationCode, UpdatePacket};

/// A scriptable control-socket client: send one command line, collect
/// response lines until the terminal `ok`/`err` line, return the whole
/// response.
struct Ctl {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Ctl {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("dial control socket");
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
        let writer = stream.try_clone().expect("clone control stream");
        Ctl { reader: BufReader::new(stream), writer }
    }

    fn run(&mut self, cmd: &str) -> String {
        writeln!(self.writer, "{cmd}").expect("write command");
        let mut response = String::new();
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read response line");
            assert!(!line.is_empty(), "control socket closed mid-response to {cmd:?}");
            let terminal = line.starts_with("ok") || line.starts_with("err");
            response.push_str(&line);
            if terminal {
                return response;
            }
        }
    }

    fn ok(&mut self, cmd: &str) -> String {
        let response = self.run(cmd);
        assert!(
            response.lines().last().unwrap().starts_with("ok"),
            "command {cmd:?} failed: {response}"
        );
        response
    }
}

fn speaker(addr: SocketAddr, asn: Asn, bgp_id: Ipv4Addr) -> Result<ActiveSpeaker, PeerError> {
    ActiveSpeaker::connect(
        addr,
        FsmConfig::new(asn, bgp_id),
        Arc::new(WallClock::new()),
        Duration::from_secs(10),
    )
}

/// Asserts the daemon refuses this peer with Bad Peer AS — either during
/// the handshake or (if the refusal NOTIFICATION races in just after the
/// client reaches Established) on the first ticks afterwards.
fn expect_refused(addr: SocketAddr, asn: Asn, bgp_id: Ipv4Addr) {
    let mut s = match speaker(addr, asn, bgp_id) {
        Err(_) => return,
        Ok(s) => s,
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match s.tick() {
            Err(PeerError::PeerClosed(n)) => {
                assert_eq!(n, Some(Notification::bad_peer_as()), "refusal must name Bad Peer AS");
                return;
            }
            Err(e) => panic!("refused peer failed some other way: {e}"),
            Ok(()) => {
                assert!(Instant::now() < deadline, "disallowed peer AS{} never refused", asn.0);
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Counts pipeline-ingested updates into a shared gauge so the
/// orchestrating thread can wait for deliveries to land before the next
/// config change, then forwards everything to the wrapped sink.
struct Tap<S> {
    ingested: Arc<AtomicU64>,
    inner: S,
}

impl<S: AnalysisSink> AnalysisSink for Tap<S> {
    fn on_session(&mut self, meta: &PeerMeta) {
        self.inner.on_session(meta);
    }
    fn on_update(&mut self, session: &SessionKey, update: &RouteUpdate) {
        self.ingested.fetch_add(1, Ordering::Relaxed);
        self.inner.on_update(session, update);
    }
    fn on_event(
        &mut self,
        session: &SessionKey,
        event: &keep_communities_clean::analysis::ClassifiedEvent,
    ) {
        self.inner.on_event(session, event);
    }
    fn wants_events(&self) -> bool {
        self.inner.wants_events()
    }
}

fn packet(update: &RouteUpdate) -> UpdatePacket {
    match &update.kind {
        MessageKind::Announcement(attrs) => {
            UpdatePacket::announce(update.prefix, (**attrs).clone())
        }
        MessageKind::Withdrawal => UpdatePacket::withdraw(update.prefix),
    }
}

#[test]
fn candidate_edits_invisible_until_commit_and_discard_restores_running() {
    let cfg = CollectorConfig::new("ctl", Asn(3333), "198.51.100.1".parse().unwrap())
        .with_stamp(StampMode::logical(1_000));
    let mut collector = Collector::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = collector.local_addr();
    let _source = collector.take_source();
    let store = collector.config_store();
    let server =
        ControlServer::bind("127.0.0.1:0", Arc::clone(&store), collector.shutdown_handle())
            .expect("bind control");
    let mut ctl = Ctl::connect(server.local_addr());

    // Lock the daemon down to AS65001 only.
    ctl.ok("peer policy allow");
    ctl.ok("peer allow 65001");
    assert!(ctl.ok("commit").contains("generation=2"));

    let a = speaker(addr, Asn(65_001), "10.50.0.1".parse().unwrap()).expect("allowed peer");
    expect_refused(addr, Asn(65_002), "10.50.0.2".parse().unwrap());

    // An uncommitted candidate edit must be invisible to the daemon.
    ctl.ok("peer allow 65002");
    assert!(ctl.ok("show candidate").contains("peers=allow:AS65001,AS65002"));
    assert!(ctl.ok("show running").contains("peers=allow:AS65001\n"), "candidate leaked");
    expect_refused(addr, Asn(65_002), "10.50.0.2".parse().unwrap());

    // Discard restores the candidate to the running config.
    assert_eq!(ctl.ok("discard"), "ok discarded\n");
    assert!(ctl.ok("show candidate").contains("peers=allow:AS65001\n"));
    assert_eq!(ctl.ok("discard"), "ok clean\n");
    expect_refused(addr, Asn(65_002), "10.50.0.2".parse().unwrap());

    // Trace levels hot-reload through the same store: off by default,
    // enabled the moment the commit lands.
    assert!(!store.trace().enabled("reactor", TraceLevel::Debug));
    ctl.ok("trace reactor debug");
    assert!(!store.trace().enabled("reactor", TraceLevel::Debug), "trace edit leaked pre-commit");
    ctl.ok("commit");
    assert!(store.trace().enabled("reactor", TraceLevel::Debug));

    assert!(a.is_established(), "allowed session untouched by refused peers and edits");
    a.close().expect("clean close");
    collector.shutdown();
    let stats = collector.join();
    server.join();
    assert_eq!(stats.established, 1, "only AS65001 ever established");
}

#[test]
fn midrun_peer_add_remove_leaves_untouched_sessions_undisturbed() {
    let asn_a = Asn(65_001);
    let asn_b = Asn(65_002);
    let ip_a: Ipv4Addr = "10.50.0.1".parse().unwrap();
    let ip_b: Ipv4Addr = "10.50.0.2".parse().unwrap();

    // One generated workload, dealt alternately onto A and B. The
    // archive is the offline ground truth; the packet lists are what
    // each speaker streams live.
    let day = generate_mar20(&Mar20Config { target_announcements: 1_500, ..Default::default() });
    let mut workload = UpdateArchive::new(0);
    let mut packets_a = Vec::new();
    let mut packets_b = Vec::new();
    for (i, (_, update)) in day.archive.all_updates().iter().take(1_200).enumerate() {
        let (key, list) = if i % 2 == 0 {
            (SessionKey::new("ctl", asn_a, IpAddr::V4(ip_a)), &mut packets_a)
        } else {
            (SessionKey::new("ctl", asn_b, IpAddr::V4(ip_b)), &mut packets_b)
        };
        workload.record(&key, update.clone());
        list.push(packet(update));
    }
    let total = (packets_a.len() + packets_b.len()) as u64;

    let cfg = CollectorConfig::new("ctl", Asn(3333), "198.51.100.1".parse().unwrap())
        .with_stamp(StampMode::logical(1_000));
    let mut collector = Collector::bind("127.0.0.1:0", cfg.clone()).expect("bind");
    let addr = collector.local_addr();
    let source = collector.take_source();
    let stop = source.shutdown_flag();
    let store = collector.config_store();
    let server = ControlServer::bind("127.0.0.1:0", store, collector.shutdown_handle())
        .expect("bind control");
    let mut ctl = Ctl::connect(server.local_addr());
    let ingested = Arc::new(AtomicU64::new(0));
    let tap = Tap {
        ingested: Arc::clone(&ingested),
        inner: (CountsSink::default(), OverviewSink::default()),
    };
    let pipeline = std::thread::spawn(move || {
        PipelineBuilder::new(source).sink(tap).shutdown(&stop).run().expect("live run")
    });
    let wait_ingested = |target: u64| {
        let deadline = Instant::now() + Duration::from_secs(60);
        while ingested.load(Ordering::Relaxed) < target {
            assert!(
                Instant::now() < deadline,
                "pipeline stuck at {}/{target} updates",
                ingested.load(Ordering::Relaxed)
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    };

    // Phase 1: only A is allowed; A streams its whole share while B is
    // turned away at the door.
    ctl.ok("peer policy allow");
    ctl.ok("peer allow AS65001");
    ctl.ok("commit");
    let mut a = speaker(addr, asn_a, ip_a).expect("A allowed");
    expect_refused(addr, asn_b, ip_b);
    for p in &packets_a {
        a.send_update(p).expect("A streams");
    }

    // Phase 2: allow B mid-run. A's established session is not
    // reset — it keeps the same TCP connection throughout.
    ctl.ok("peer allow AS65002");
    ctl.ok("commit");
    let mut b = speaker(addr, asn_b, ip_b).expect("B allowed after commit");
    let half = packets_b.len() / 2;
    for p in &packets_b[..half] {
        b.send_update(p).expect("B streams first half");
    }
    wait_ingested(packets_a.len() as u64 + half as u64);

    // Phase 3: remove A mid-run. The daemon must Cease A's session —
    // and only A's: B keeps streaming over its existing connection.
    ctl.ok("peer remove AS65001");
    ctl.ok("commit");
    let deadline = Instant::now() + Duration::from_secs(30);
    let down = loop {
        match a.tick() {
            Err(PeerError::PeerClosed(n)) => break n,
            Err(e) => panic!("A failed some other way: {e}"),
            Ok(()) => {
                assert!(Instant::now() < deadline, "A never swept after removal");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    let down = down.expect("sweep sends a NOTIFICATION");
    assert_eq!(down.code, NotificationCode::Cease, "removal is an administrative Cease");
    for p in &packets_b[half..] {
        b.send_update(p).expect("B undisturbed by A's removal");
    }
    assert!(b.is_established());
    b.close().expect("B clean close");

    collector.shutdown();
    let live = pipeline.join().expect("pipeline thread");
    let stats = collector.join();
    server.join();
    assert_eq!(stats.established, 2, "exactly A and B established");
    assert_eq!(stats.updates, total, "nothing lost across three config generations");

    // Byte-identical tables against the offline reference of the same
    // workload — the add/remove churn left no trace in the data.
    let (live_counts, live_overview) = (live.sink.inner.0.finish(), live.sink.inner.1.finish());
    let offline = PipelineBuilder::new(ArchiveSource::new(&offline_reference(&workload, &cfg)))
        .sink((CountsSink::default(), OverviewSink::default()))
        .run()
        .expect("offline run");
    let (off_counts, off_overview) = (offline.sink.0.finish(), offline.sink.1.finish());
    assert_eq!(
        live_overview.render("Table 1 — hot reload"),
        off_overview.render("Table 1 — hot reload"),
        "Table 1 diverged"
    );
    assert_eq!(
        TypeShares::new(vec![("ctl".into(), live_counts)]).render(),
        TypeShares::new(vec![("ctl".into(), off_counts)]).render(),
        "Table 2 diverged"
    );
}
