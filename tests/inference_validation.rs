//! Validation of the §7 future-work implementations against ground truth:
//! behavior tomography and interconnection inference must recover what the
//! generator/simulator actually configured.

use keep_communities_clean::analysis::interconnect::infer_interconnections;
use keep_communities_clean::analysis::tomography::{
    infer_behaviors, InferredClass, TomographyConfig,
};
use keep_communities_clean::analysis::{clean_archive, CleaningConfig};
use keep_communities_clean::tracegen::universe::UniverseConfig;
use keep_communities_clean::tracegen::{generate_mar20, Mar20Config};
use keep_communities_clean::types::Asn;

fn generated_day(seed: u64) -> keep_communities_clean::tracegen::GenOutput {
    let cfg = Mar20Config {
        seed,
        target_announcements: 40_000,
        universe: UniverseConfig {
            seed,
            n_collectors: 4,
            n_peers: 16,
            n_sessions: 32,
            n_transits: 20,
            n_prefixes_v4: 400,
            n_prefixes_v6: 40,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut out = generate_mar20(&cfg);
    clean_archive(&mut out.archive, &out.registry, &CleaningConfig::default());
    out
}

#[test]
fn tomography_recovers_taggers() {
    let out = generated_day(11);
    let inferred = infer_behaviors(&out.archive, &TomographyConfig::default());

    let true_taggers: Vec<Asn> =
        out.universe.transits.iter().filter(|t| t.tags_geo).map(|t| t.asn).collect();
    assert!(!true_taggers.is_empty());

    // Precision: every inferred tagger truly tags.
    let mut found = 0;
    for (asn, b) in &inferred {
        if b.class == InferredClass::Tagger {
            assert!(
                true_taggers.contains(asn),
                "false positive tagger {asn} ({:?})",
                b.evidence.own_values.len()
            );
            found += 1;
        }
    }
    // Recall: most true taggers are found (ones never on a sampled path
    // can't be).
    assert!(
        found * 3 >= true_taggers.len(),
        "found only {found} of {} taggers",
        true_taggers.len()
    );
}

#[test]
fn tomography_recovers_cleaning_peers() {
    let out = generated_day(12);
    let inferred = infer_behaviors(&out.archive, &TomographyConfig::default());

    let cleaning_peers: Vec<Asn> = out
        .universe
        .peers
        .iter()
        .filter(|p| p.cleans_egress && !p.route_server)
        .map(|p| p.asn)
        .collect();
    let honest_peers: Vec<Asn> = out
        .universe
        .peers
        .iter()
        .filter(|p| !p.cleans_egress && !p.route_server)
        .map(|p| p.asn)
        .collect();
    assert!(!cleaning_peers.is_empty() && !honest_peers.is_empty());

    // Cleaning peers accumulate much higher filter scores than honest
    // ones. (Honest peers still pick up fractional blame from class-B/C
    // streams whose templates had no taggers.)
    let avg = |asns: &[Asn]| {
        let scores: Vec<f64> = asns
            .iter()
            .filter_map(|a| inferred.get(a))
            .filter(|b| b.evidence.samples >= 5.0)
            .map(|b| b.filter_score)
            .collect();
        if scores.is_empty() {
            return f64::NAN;
        }
        scores.iter().sum::<f64>() / scores.len() as f64
    };
    let clean_avg = avg(&cleaning_peers);
    let honest_avg = avg(&honest_peers);
    assert!(
        clean_avg > honest_avg + 0.3,
        "filter scores must separate: cleaners {clean_avg:.2} vs honest {honest_avg:.2}"
    );

    // And every classified Filter is a true cleaner.
    for (asn, b) in &inferred {
        if b.class == InferredClass::Filter && cleaning_peers.contains(asn) {
            continue;
        }
        if b.class == InferredClass::Filter {
            assert!(
                !honest_peers.contains(asn),
                "honest peer {asn} misclassified as Filter (score {:.2})",
                b.filter_score
            );
        }
    }
}

#[test]
fn tomography_finds_propagators_among_honest_peers() {
    let out = generated_day(13);
    let inferred = infer_behaviors(&out.archive, &TomographyConfig::default());
    let honest: Vec<Asn> = out
        .universe
        .peers
        .iter()
        .filter(|p| !p.cleans_egress && !p.route_server)
        .map(|p| p.asn)
        .collect();
    let propagators = honest
        .iter()
        .filter(|a| inferred.get(a).map(|b| b.class == InferredClass::Propagator).unwrap_or(false))
        .count();
    assert!(
        propagators * 2 >= honest.len(),
        "most honest peers should be classified propagators: {propagators}/{}",
        honest.len()
    );
}

#[test]
fn interconnections_bounded_by_city_pools() {
    let out = generated_day(14);
    let inferred = infer_interconnections(&out.archive);
    assert!(!inferred.is_empty(), "geo tags must reveal adjacencies");
    for ((_, tagger), est) in &inferred {
        let spec = out.universe.transits.iter().find(|t| t.asn == *tagger);
        let Some(spec) = spec else { continue };
        assert!(spec.tags_geo, "only taggers can reveal interconnections");
        // Revealed cities are a subset of the tagger's actual city pool.
        for city in &est.cities {
            assert!(spec.cities.contains(city), "revealed city {city} not in AS{tagger}'s pool");
        }
        assert!(est.min_interconnections() >= 1);
    }
}

#[test]
fn multi_city_adjacencies_detected() {
    let out = generated_day(15);
    let inferred = infer_interconnections(&out.archive);
    let multi = inferred.values().filter(|e| e.cities.len() > 1).count();
    assert!(multi > 0, "community exploration must reveal multi-city interconnections");
}
