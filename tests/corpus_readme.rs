//! Enforces the README's "Multi-collector corpus" example, the same way
//! `tests/pipeline_readme.rs` and `tests/live_readme.rs` keep their
//! snippets honest: the code below mirrors the README block verbatim
//! (printing replaced by assertions), so a corpus-API rename that would
//! rot the documentation fails here first — and the snippet's combined
//! result is checked against the single-pipeline pass it claims to
//! generalize.

use keep_communities_clean::analysis::corpus::{corpus_sink, run_corpus_report};
use keep_communities_clean::analysis::{run_pipeline, CleaningConfig, CleaningStage};
use keep_communities_clean::tracegen::{
    multi_vantage_corpus, Mar20Config, Mar20Source, MultiVantageConfig,
};

#[test]
fn readme_corpus_example_runs_and_matches_single_pipeline() {
    // The same generated day observed from K collectors: each vantage
    // gets its own session subset, and any collector can be forced to
    // second-granularity timestamps (RIS's mixed-granularity fleet).
    let cfg = MultiVantageConfig {
        base: Mar20Config { target_announcements: 20_000, ..Default::default() },
        force_second_granularity: vec!["rrc00".into()],
    };
    let (corpus, registry) = multi_vantage_corpus(&cfg).unwrap();

    // One full pipeline per collector (§4 cleaning applied per
    // collector), 4 worker threads, merged in name order.
    let report = run_corpus_report(corpus, 4, &registry, CleaningConfig::default()).unwrap();
    assert!(!report.render().is_empty());
    let (total, unanimous, disputed) = report.agreement_summary();
    assert!(total > 0, "the generated day must carry communities");
    assert!(unanimous <= total && disputed <= total);
    assert_eq!(report.collector_count(), cfg.base.universe.n_collectors);
    let forced = report.collectors.iter().find(|c| c.name == "rrc00").unwrap();
    assert!(
        forced.cleaning.sessions_normalized > 0,
        "the forced second-granularity vantage must hit the normalization stage"
    );

    // The combined all-vantage result equals one pipeline over the
    // unsplit day when no vantage re-truncates timestamps — the corpus
    // is a true partition of the generated flood.
    let untruncated =
        MultiVantageConfig { base: cfg.base.clone(), force_second_granularity: Vec::new() };
    let (corpus, registry) = multi_vantage_corpus(&untruncated).unwrap();
    let combined = run_corpus_report(corpus, 4, &registry, CleaningConfig::default()).unwrap();
    let single = run_pipeline(
        Mar20Source::new(&untruncated.base),
        CleaningStage::new(&registry, CleaningConfig::default()),
        corpus_sink(),
    )
    .unwrap();
    let (overview, counts, communities) = single.sink;
    assert_eq!(combined.combined_overview, overview.finish(), "corpus != single pipeline");
    assert_eq!(combined.combined_counts, counts.finish());
    let all: std::collections::BTreeSet<_> =
        combined.collectors.iter().flat_map(|c| c.communities.iter().copied()).collect();
    assert_eq!(all, communities.finish());
}
