//! Enforces the README's "CommunityWatch" example, the same way
//! `tests/live_readme.rs` enforces the live snippet: the code below
//! mirrors the README block verbatim (printing replaced by assertions),
//! so a watch-API rename that would rot the documentation fails here
//! first — and the fault the snippet injects must surface as exactly
//! the typed alert the README promises, nothing more.

use keep_communities_clean::analysis::{run_pipeline, WatchConfig, WatchSink};
use keep_communities_clean::collector::{ArchiveSource, SessionKey, UpdateArchive};
use keep_communities_clean::types::{Asn, PathAttributes, Prefix, RouteUpdate};

#[test]
fn readme_watch_example_detects_exactly_the_injected_hijack() {
    // A collector day where AS12654 originates a beacon prefix all day…
    let cfg = WatchConfig::default(); // 15-minute windows, 2 learning windows
    let mut day = UpdateArchive::new(0);
    let key = SessionKey::new("rrc00", Asn(100), "10.0.0.1".parse().unwrap());
    let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
    for w in 0..8u64 {
        // …except window 5, where AS64496 suddenly claims it (the fault).
        let origin = if w == 5 { 64_496 } else { 12_654 };
        let attrs = PathAttributes {
            as_path: format!("100 3356 {origin}").parse().unwrap(),
            ..Default::default()
        };
        day.record(&key, RouteUpdate::announce(w * cfg.window_us, prefix, attrs));
    }

    // The always-on service is just another sink on the one-pass
    // pipeline.
    let report =
        run_pipeline(ArchiveSource::new(&day), (), WatchSink::new(cfg)).unwrap().sink.finish();
    assert_eq!(report.kind_counts(), vec![("prefix-hijack", 1)]);

    // What the README prints: the stable serialized line carries the
    // window time, the severity, the offending origin and the learned
    // expectation.
    let line = report.alerts[0].to_line();
    assert!(line.starts_with(&format!("time_us={} ", 5 * cfg.window_us)), "{line}");
    assert!(line.contains("severity=critical"), "{line}");
    assert!(line.contains("kind=prefix-hijack"), "{line}");
    assert!(line.contains("prefix=84.205.64.0/24"), "{line}");
    assert!(line.contains("AS64496"), "{line}");
    assert!(line.contains("expected AS12654"), "{line}");

    // Determinism: the same day replayed yields byte-identical lines.
    let again =
        run_pipeline(ArchiveSource::new(&day), (), WatchSink::new(cfg)).unwrap().sink.finish();
    let lines: Vec<String> = report.alerts.iter().map(|a| a.to_line()).collect();
    let again_lines: Vec<String> = again.alerts.iter().map(|a| a.to_line()).collect();
    assert_eq!(lines, again_lines);
}
