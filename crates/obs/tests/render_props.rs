//! Property tests on the registry's deterministic exposition.
//!
//! [`Registry::render`] is documented as a pure function of the
//! recorded data: two registries fed the same observations must render
//! byte-identically no matter in which order series were registered or
//! which threads carried the recordings. These properties drive random
//! operation sequences through both axes.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use kcc_obs::Registry;

/// One recording: which metric family, which label value, how much.
/// The family index fixes both the name and the kind, so the same name
/// never arrives as two different kinds (that is a registration panic,
/// pinned separately in the unit tests). Only commutative recordings
/// are generated — counter/gauge `add` and histogram `observe` — since
/// order independence cannot hold for last-write-wins `set`.
type Op = (usize, usize, u64);

const LABEL_VALUES: [&str; 4] = ["rrc00", "rrc01", "route-views3", "rrc21"];

fn apply(registry: &Registry, &(family, label, amount): &Op) {
    let labels: &[(&str, &str)] = &[("collector", LABEL_VALUES[label % LABEL_VALUES.len()])];
    match family % 5 {
        0 => registry.counter("kcc_props_plain_total").add(amount),
        1 => registry.counter_with("kcc_props_labeled_total", labels).add(amount),
        2 => registry.gauge_with("kcc_props_depth", labels).add(amount as i64),
        3 => registry.histogram("kcc_props_nanos").observe(amount * 977),
        _ => registry.histogram_with("kcc_props_labeled_nanos", labels).observe(amount * 31),
    }
}

proptest! {
    /// Registration order is invisible in the output: applying the same
    /// operations rotated and reversed yields the same bytes.
    #[test]
    fn render_is_independent_of_registration_order(
        ops in vec((0usize..5, 0usize..4, 1u64..1000), 1..32),
        rotation in 0usize..32,
        reverse in any::<bool>(),
    ) {
        let reference = Registry::new();
        for op in &ops {
            apply(&reference, op);
        }

        let mut shuffled = ops.clone();
        let len = shuffled.len();
        shuffled.rotate_left(rotation % len);
        if reverse {
            shuffled.reverse();
        }
        let reordered = Registry::new();
        for op in &shuffled {
            apply(&reordered, op);
        }

        prop_assert_eq!(reference.render(), reordered.render());
    }

    /// Thread interleaving is invisible in the output: the same
    /// operations split across worker threads (racing registration and
    /// recording) render exactly the serial bytes.
    #[test]
    fn render_is_independent_of_thread_interleaving(
        ops in vec((0usize..5, 0usize..4, 1u64..1000), 4..48),
        threads in 2usize..5,
    ) {
        let serial = Registry::new();
        for op in &ops {
            apply(&serial, op);
        }

        let concurrent = Arc::new(Registry::new());
        let chunk = ops.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for part in ops.chunks(chunk) {
                let registry = Arc::clone(&concurrent);
                scope.spawn(move || {
                    for op in part {
                        apply(&registry, op);
                    }
                });
            }
        });

        prop_assert_eq!(serial.render(), concurrent.render());
    }
}
