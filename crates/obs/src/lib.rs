//! Observability layer: metrics registry, Prometheus exposition, and the
//! runtime trace filter.
//!
//! A collector daemon that holds thousands of sessions for months needs
//! to answer operational questions — updates/s per collector, where
//! pipeline time goes, which sessions flap, how many alerts fired by
//! kind — without restarting or attaching a debugger. This crate is the
//! cross-cutting layer every other crate reports into:
//!
//! - [`Registry`] hands out cheap [`Counter`]/[`Gauge`]/[`Histogram`]
//!   handles. Registration takes a lock once; the handles themselves are
//!   `Arc`-shared relaxed atomics, so the hot path is lock-free and
//!   allocation-free.
//! - [`Registry::render`] emits the whole registry in Prometheus text
//!   format, deterministically name- and label-sorted, so two registries
//!   fed the same data render byte-identically regardless of
//!   registration order or thread interleaving.
//! - [`Histogram`] uses fixed log2 buckets (no configuration, no
//!   allocation); [`HistogramSnapshot`] is the plain mergeable form used
//!   by per-shard pipeline profiles.
//! - [`trace`] hosts the per-target, hot-reloadable [`TraceFilter`]
//!   (moved here from `kcc_peer` so any crate can emit runtime-filtered
//!   diagnostics).
//!
//! Scrape points: the `kccd` control socket answers a `metrics` command
//! with [`Registry::render`] output, and the `kcc-corpus`/`kcc-watch`
//! binaries write the same text to `--metrics-out FILE` on completion.

pub mod trace;

pub use trace::{TraceConfig, TraceFilter, TraceLevel};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 histogram buckets: bucket 0 holds the value 0, bucket
/// `i` (1..=64) holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for an observed value (log2 with 0 in its own bucket).
#[inline]
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`, i.e. the Prometheus `le` value.
fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Monotonically increasing counter (relaxed atomic; lock-free).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (relaxed atomic; lock-free).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (use a negative value to subtract).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water marks).
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket log2 histogram (relaxed atomics; lock-free,
/// allocation-free to observe).
///
/// Values land in one of [`HISTOGRAM_BUCKETS`] power-of-two buckets, so
/// there is nothing to configure and observing costs two relaxed
/// `fetch_add`s. Suited to latency-style distributions where a factor-2
/// resolution is enough.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Folds a plain snapshot (e.g. one shard's profile) into this
    /// histogram.
    pub fn record(&self, snap: &HistogramSnapshot) {
        for (bucket, count) in self.buckets.iter().zip(snap.buckets) {
            if count != 0 {
                bucket.fetch_add(count, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A plain copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::default();
        for (dst, src) in snap.buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        snap.sum = self.sum.load(Ordering::Relaxed);
        snap
    }
}

/// Plain (non-atomic) histogram with the same buckets as [`Histogram`].
///
/// This is the single-threaded form used on hot paths that are already
/// sharded — each pipeline shard records into its own snapshot and the
/// merge step adds them together. Addition commutes, so the merged
/// result is independent of shard count and merge order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; HISTOGRAM_BUCKETS],
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS], sum: 0 }
    }
}

impl HistogramSnapshot {
    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        // Wrapping to match the atomic form, where fetch_add wraps.
        self.sum = self.sum.wrapping_add(value);
    }

    /// Adds another snapshot's observations to this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets) {
            *dst += src;
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0..=1.0`), or 0 when empty. Factor-2 resolution: the true
    /// quantile lies within the returned bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }
}

/// The kind of a metric family (one `# TYPE` line per family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Family {
    kind: Kind,
    /// Series keyed by the sorted label set, so exposition order is
    /// independent of registration order.
    series: BTreeMap<Vec<(String, String)>, Handle>,
}

/// Handle-based metrics registry with deterministic Prometheus text
/// exposition.
///
/// Registration (cold path) takes a mutex and returns an `Arc` handle;
/// updating a metric through its handle (hot path) is a relaxed atomic
/// op. Registering the same name + label set again returns the existing
/// handle, so independent components can share a series without
/// coordination. Registering the same name with a different metric kind
/// panics — a family has exactly one type.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Registers (or finds) a counter with the given labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, labels, Kind::Counter, || Handle::Counter(Arc::default())) {
            Handle::Counter(c) => c,
            _ => unreachable!("registry returned mismatched handle kind"),
        }
    }

    /// Registers (or finds) an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Registers (or finds) a gauge with the given labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, labels, Kind::Gauge, || Handle::Gauge(Arc::default())) {
            Handle::Gauge(g) => g,
            _ => unreachable!("registry returned mismatched handle kind"),
        }
    }

    /// Registers (or finds) an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Registers (or finds) a histogram with the given labels.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.register(name, labels, Kind::Histogram, || Handle::Histogram(Arc::default())) {
            Handle::Histogram(h) => h,
            _ => unreachable!("registry returned mismatched handle kind"),
        }
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (key, _) in labels {
            assert!(valid_name(key), "invalid label name {key:?} on {name}");
        }
        let mut key: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        key.sort();

        let mut inner = self.inner.lock().unwrap();
        let family = inner
            .entry(name.to_string())
            .or_insert_with(|| Family { kind, series: BTreeMap::new() });
        assert!(
            family.kind == kind,
            "metric {name} already registered as {}, requested {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family.series.entry(key).or_insert_with(make).clone()
    }

    /// The value of a registered counter (0 when absent) — a test and
    /// assertion convenience; production readers use the handles.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let mut key: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        key.sort();
        let inner = self.inner.lock().unwrap();
        match inner.get(name).and_then(|f| f.series.get(&key)) {
            Some(Handle::Counter(c)) => c.get(),
            _ => 0,
        }
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format.
    ///
    /// Output is deterministic: families are name-sorted, series within
    /// a family are label-sorted, and histogram buckets are emitted
    /// cumulatively up to the highest non-empty bucket plus `+Inf`. Two
    /// registries holding the same data render byte-identically no
    /// matter the order metrics were registered or updated in.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, family) in inner.iter() {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for (labels, handle) in &family.series {
                match handle {
                    Handle::Counter(c) => {
                        render_series(&mut out, name, labels, &[], &c.get().to_string());
                    }
                    Handle::Gauge(g) => {
                        render_series(&mut out, name, labels, &[], &g.get().to_string());
                    }
                    Handle::Histogram(h) => render_histogram(&mut out, name, labels, &h.snapshot()),
                }
            }
        }
        out
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Writes one sample line: `name{labels,extra} value`.
fn render_series(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: &[(&str, &str)],
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in
            labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            for c in v.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    snap: &HistogramSnapshot,
) {
    let bucket_name = format!("{name}_bucket");
    let highest = (0..HISTOGRAM_BUCKETS).rev().find(|&i| snap.buckets[i] != 0);
    let mut cumulative = 0u64;
    if let Some(highest) = highest {
        for i in 0..=highest.min(HISTOGRAM_BUCKETS - 2) {
            cumulative += snap.buckets[i];
            let le = bucket_upper_bound(i).to_string();
            render_series(out, &bucket_name, labels, &[("le", &le)], &cumulative.to_string());
        }
    }
    let count = snap.count();
    render_series(out, &bucket_name, labels, &[("le", "+Inf")], &count.to_string());
    render_series(out, &format!("{name}_sum"), labels, &[], &snap.sum.to_string());
    render_series(out, &format!("{name}_count"), labels, &[], &count.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("updates_total");
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = reg.gauge("queue_depth");
        g.set(5);
        g.add(-2);
        g.set_max(1);
        assert_eq!(g.get(), 3);
        g.set_max(7);
        assert_eq!(g.get(), 7);
        assert_eq!(reg.counter_value("updates_total", &[]), 10);
    }

    #[test]
    fn re_registration_shares_the_handle() {
        let reg = Registry::new();
        let a = reg.counter_with("alerts_total", &[("kind", "prefix-hijack")]);
        let b = reg.counter_with("alerts_total", &[("kind", "prefix-hijack")]);
        a.inc();
        b.inc();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = Registry::new();
        let a = reg.counter_with("m", &[("a", "1"), ("b", "2")]);
        let b = reg.counter_with("m", &[("b", "2"), ("a", "1")]);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        reg.counter("m");
        reg.gauge("m");
    }

    #[test]
    fn render_is_sorted_and_prometheus_shaped() {
        let reg = Registry::new();
        reg.gauge("z_gauge").set(-4);
        reg.counter_with("a_total", &[("collector", "rrc01")]).add(2);
        reg.counter_with("a_total", &[("collector", "rrc00")]).add(1);
        let h = reg.histogram("lat_nanos");
        h.observe(0);
        h.observe(1);
        h.observe(5);
        assert_eq!(
            reg.render(),
            "# TYPE a_total counter\n\
             a_total{collector=\"rrc00\"} 1\n\
             a_total{collector=\"rrc01\"} 2\n\
             # TYPE lat_nanos histogram\n\
             lat_nanos_bucket{le=\"0\"} 1\n\
             lat_nanos_bucket{le=\"1\"} 2\n\
             lat_nanos_bucket{le=\"3\"} 2\n\
             lat_nanos_bucket{le=\"7\"} 3\n\
             lat_nanos_bucket{le=\"+Inf\"} 3\n\
             lat_nanos_sum 6\n\
             lat_nanos_count 3\n\
             # TYPE z_gauge gauge\n\
             z_gauge -4\n"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter_with("m", &[("path", "a\"b\\c\nd")]).inc();
        assert_eq!(reg.render(), "# TYPE m counter\nm{path=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    #[test]
    fn histogram_snapshot_merge_commutes() {
        let mut a = HistogramSnapshot::default();
        let mut b = HistogramSnapshot::default();
        for v in [1u64, 3, 900, 1 << 40] {
            a.observe(v);
        }
        for v in [0u64, 2, 2, 1 << 20] {
            b.observe(v);
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 8);
        assert_eq!(ab.sum(), a.sum().wrapping_add(b.sum()));
    }

    #[test]
    fn atomic_histogram_matches_snapshot_path() {
        let h = Histogram::default();
        let mut local = HistogramSnapshot::default();
        for v in [0u64, 1, 7, 1 << 33, u64::MAX] {
            h.observe(v);
            local.observe(v);
        }
        assert_eq!(h.snapshot(), local);
        let h2 = Histogram::default();
        h2.record(&local);
        assert_eq!(h2.snapshot(), local);
        assert_eq!(h2.count(), 5);
    }

    #[test]
    fn quantile_returns_bucket_upper_bound() {
        let mut s = HistogramSnapshot::default();
        assert_eq!(s.quantile(0.5), 0);
        for _ in 0..99 {
            s.observe(10); // bucket 4, le 15
        }
        s.observe(1000); // bucket 10, le 1023
        assert_eq!(s.quantile(0.5), 15);
        assert_eq!(s.quantile(0.99), 15);
        assert_eq!(s.quantile(1.0), 1023);
    }
}
