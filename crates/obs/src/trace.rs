//! Runtime-adjustable diagnostics for long-lived processes.
//!
//! A collector that runs for months cannot be restarted to chase one
//! misbehaving peer. [`TraceFilter`] is the knob: a default verbosity
//! plus per-target overrides (`reactor`, `session`, `config`, `ingest`,
//! …), all adjustable at runtime through the config store or the control
//! socket. The hot path pays one relaxed atomic load when tracing is
//! effectively off — the maximum enabled level is cached in an
//! `AtomicU8` — and when a target *is* raised, per-target thresholds are
//! answered from an immutable sorted snapshot cached per thread, so 5k
//! sessions tracing one hot target never serialize behind a lock.
//!
//! Output goes to a pluggable sink (stderr by default); tests install a
//! capturing sink to assert what a level change makes visible.
//!
//! This module lives in `kcc_obs` (it started in `kcc_peer`) so every
//! crate — core, collector, watch — can emit runtime-filterable trace
//! lines through the same hot-reloadable config; `kcc_peer` re-exports
//! the types for back-compat.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Verbosity of one trace line (and threshold of one filter target).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Nothing.
    Off = 0,
    /// Session teardown, queue overflow, decode failures.
    #[default]
    Error = 1,
    /// Lifecycle: sessions up/down, config commits, rotation.
    Info = 2,
    /// Per-event detail: timers fired, config diffs applied.
    Debug = 3,
    /// Per-message firehose.
    Trace = 4,
}

impl TraceLevel {
    /// Parses the control-socket spelling (`off|error|info|debug|trace`).
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "error" => Some(TraceLevel::Error),
            "info" => Some(TraceLevel::Info),
            "debug" => Some(TraceLevel::Debug),
            "trace" => Some(TraceLevel::Trace),
            _ => None,
        }
    }

    /// The control-socket spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Error => "error",
            TraceLevel::Info => "info",
            TraceLevel::Debug => "debug",
            TraceLevel::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> TraceLevel {
        match v {
            0 => TraceLevel::Off,
            1 => TraceLevel::Error,
            2 => TraceLevel::Info,
            3 => TraceLevel::Debug,
            _ => TraceLevel::Trace,
        }
    }
}

impl std::fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The declarative half: default level + per-target overrides. Lives in
/// the daemon's config so trace verbosity rides the same
/// candidate/commit cycle as every other setting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceConfig {
    /// Level for targets without an override.
    pub default: TraceLevel,
    /// Per-target overrides (target → level).
    pub targets: BTreeMap<String, TraceLevel>,
}

impl TraceConfig {
    /// The effective level for `target`.
    pub fn level_for(&self, target: &str) -> TraceLevel {
        self.targets.get(target).copied().unwrap_or(self.default)
    }

    fn max_level(&self) -> TraceLevel {
        self.targets.values().copied().max().unwrap_or(TraceLevel::Off).max(self.default)
    }
}

/// Immutable, name-sorted threshold table built once per `apply` and
/// shared read-only with every thread. Lookups binary-search; no lock.
#[derive(Debug, Default)]
struct Snapshot {
    default: u8,
    targets: Vec<(String, u8)>,
}

impl Snapshot {
    fn from_config(config: &TraceConfig) -> Self {
        Snapshot {
            default: config.default as u8,
            // BTreeMap iteration is already name-sorted.
            targets: config.targets.iter().map(|(t, l)| (t.clone(), *l as u8)).collect(),
        }
    }

    fn level_for(&self, target: &str) -> u8 {
        match self.targets.binary_search_by(|(t, _)| t.as_str().cmp(target)) {
            Ok(i) => self.targets[i].1,
            Err(_) => self.default,
        }
    }
}

thread_local! {
    /// Per-thread cache of the last snapshot consulted: (filter id,
    /// generation, snapshot). One slot suffices — processes have one
    /// long-lived filter; a second filter just refreshes on first use.
    static SNAPSHOT_CACHE: RefCell<Option<(u64, u64, Arc<Snapshot>)>> = const { RefCell::new(None) };
}

/// Process-unique filter ids so the thread-local cache can tell filters
/// apart.
static NEXT_FILTER_ID: AtomicU64 = AtomicU64::new(1);

type Sink = Box<dyn Fn(&str, TraceLevel, &str) + Send + Sync>;

/// The runtime half: applies a [`TraceConfig`] and answers
/// [`enabled`]/[`log`] from the hot path.
///
/// [`enabled`]: TraceFilter::enabled
/// [`log`]: TraceFilter::log
pub struct TraceFilter {
    /// Max enabled level across all targets — the lock-free fast path.
    max_level: AtomicU8,
    /// Bumped on every [`apply`](TraceFilter::apply); threads refresh
    /// their cached snapshot when it moves.
    generation: AtomicU64,
    id: u64,
    snapshot: Mutex<Arc<Snapshot>>,
    /// Counts slow-path snapshot refreshes — lets tests pin that warm
    /// `enabled` checks never touch the mutex.
    refreshes: AtomicU64,
    config: Mutex<TraceConfig>,
    sink: Mutex<Option<Sink>>,
}

impl std::fmt::Debug for TraceFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceFilter")
            .field("max_level", &TraceLevel::from_u8(self.max_level.load(Ordering::Relaxed)))
            .finish()
    }
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter {
            max_level: AtomicU8::new(TraceLevel::default() as u8),
            generation: AtomicU64::new(0),
            id: NEXT_FILTER_ID.fetch_add(1, Ordering::Relaxed),
            snapshot: Mutex::new(Arc::new(Snapshot {
                default: TraceLevel::default() as u8,
                targets: Vec::new(),
            })),
            refreshes: AtomicU64::new(0),
            config: Mutex::new(TraceConfig::default()),
            sink: Mutex::new(None),
        }
    }
}

impl TraceFilter {
    /// A filter applying `config`, writing to stderr.
    pub fn new(config: TraceConfig) -> Self {
        let filter = TraceFilter::default();
        filter.apply(config);
        filter
    }

    /// Replaces the active configuration (called on config commit).
    pub fn apply(&self, config: TraceConfig) {
        let max = config.max_level();
        let snapshot = Arc::new(Snapshot::from_config(&config));
        *self.config.lock().unwrap() = config;
        *self.snapshot.lock().unwrap() = snapshot;
        // Publish after the snapshot swap so a thread observing the new
        // generation refreshes into the new table.
        self.generation.fetch_add(1, Ordering::Release);
        self.max_level.store(max as u8, Ordering::Relaxed);
    }

    /// A copy of the active configuration.
    pub fn config(&self) -> TraceConfig {
        self.config.lock().unwrap().clone()
    }

    /// Whether a line at `level` for `target` would be emitted.
    ///
    /// One relaxed load when the level is above every configured
    /// threshold. When some target is raised, the per-target threshold
    /// comes from a thread-local cached snapshot — no lock is taken
    /// unless the configuration changed since this thread last looked.
    pub fn enabled(&self, target: &str, level: TraceLevel) -> bool {
        if level as u8 > self.max_level.load(Ordering::Relaxed) {
            return false;
        }
        let generation = self.generation.load(Ordering::Acquire);
        SNAPSHOT_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((id, cached_generation, snapshot)) = &*cache {
                if *id == self.id && *cached_generation == generation {
                    return level as u8 <= snapshot.level_for(target);
                }
            }
            self.refreshes.fetch_add(1, Ordering::Relaxed);
            let snapshot = Arc::clone(&self.snapshot.lock().unwrap());
            let enabled = level as u8 <= snapshot.level_for(target);
            *cache = Some((self.id, generation, snapshot));
            enabled
        })
    }

    /// Emits one line if enabled. The closure defers formatting cost to
    /// the (rare) enabled case.
    pub fn log(&self, target: &str, level: TraceLevel, line: impl FnOnce() -> String) {
        if !self.enabled(target, level) {
            return;
        }
        let line = line();
        let sink = self.sink.lock().unwrap();
        match &*sink {
            Some(sink) => sink(target, level, &line),
            None => eprintln!("[{level}] {target}: {line}"),
        }
    }

    /// Redirects output (tests capture lines instead of spamming
    /// stderr).
    pub fn set_sink(&self, sink: impl Fn(&str, TraceLevel, &str) + Send + Sync + 'static) {
        *self.sink.lock().unwrap() = Some(Box::new(sink));
    }

    #[cfg(test)]
    fn refreshes(&self) -> u64 {
        self.refreshes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn default_filter_passes_errors_only() {
        let f = TraceFilter::default();
        assert!(f.enabled("reactor", TraceLevel::Error));
        assert!(!f.enabled("reactor", TraceLevel::Info));
        assert!(!f.enabled("session", TraceLevel::Trace));
    }

    #[test]
    fn per_target_override_beats_default() {
        let mut cfg = TraceConfig::default();
        cfg.targets.insert("session".into(), TraceLevel::Debug);
        let f = TraceFilter::new(cfg);
        assert!(f.enabled("session", TraceLevel::Debug));
        assert!(!f.enabled("reactor", TraceLevel::Debug), "default still error-only");
    }

    #[test]
    fn runtime_apply_changes_visibility_without_restart() {
        let f = TraceFilter::default();
        let lines: Arc<Mutex<Vec<String>>> = Arc::default();
        let captured = Arc::clone(&lines);
        f.set_sink(move |target, level, line| {
            captured.lock().unwrap().push(format!("{level} {target} {line}"));
        });

        f.log("ingest", TraceLevel::Debug, || "invisible".into());
        f.apply(TraceConfig {
            default: TraceLevel::Error,
            targets: [("ingest".to_string(), TraceLevel::Debug)].into(),
        });
        f.log("ingest", TraceLevel::Debug, || "visible".into());
        f.apply(TraceConfig::default());
        f.log("ingest", TraceLevel::Debug, || "invisible again".into());

        assert_eq!(*lines.lock().unwrap(), vec!["debug ingest visible".to_string()]);
    }

    #[test]
    fn disabled_level_never_runs_the_formatter() {
        let f =
            TraceFilter::new(TraceConfig { default: TraceLevel::Off, targets: BTreeMap::new() });
        f.log("reactor", TraceLevel::Error, || panic!("formatted while disabled"));
    }

    #[test]
    fn level_parse_round_trips() {
        for level in [
            TraceLevel::Off,
            TraceLevel::Error,
            TraceLevel::Info,
            TraceLevel::Debug,
            TraceLevel::Trace,
        ] {
            assert_eq!(TraceLevel::parse(level.as_str()), Some(level));
        }
        assert_eq!(TraceLevel::parse("verbose"), None);
    }

    #[test]
    fn warm_enabled_checks_never_take_the_lock() {
        let f = TraceFilter::new(TraceConfig {
            default: TraceLevel::Error,
            targets: [("session".to_string(), TraceLevel::Trace)].into(),
        });
        // First check on this thread populates the cache (≤1 refresh;
        // another test on this thread may have warmed a different
        // filter, forcing exactly one here).
        f.enabled("session", TraceLevel::Trace);
        let after_warmup = f.refreshes();
        for _ in 0..10_000 {
            assert!(f.enabled("session", TraceLevel::Trace));
            assert!(!f.enabled("reactor", TraceLevel::Debug));
        }
        assert_eq!(f.refreshes(), after_warmup, "warm checks must not touch the mutex");

        // A config change invalidates exactly once per thread. (The
        // Trace-level check rides the max_level fast path — no refresh.)
        f.apply(TraceConfig {
            default: TraceLevel::Error,
            targets: [("session".to_string(), TraceLevel::Debug)].into(),
        });
        assert!(!f.enabled("session", TraceLevel::Trace));
        assert_eq!(f.refreshes(), after_warmup, "max_level fast path must not refresh");
        for _ in 0..1000 {
            assert!(f.enabled("session", TraceLevel::Debug));
        }
        assert_eq!(f.refreshes(), after_warmup + 1);
    }

    #[test]
    fn raised_target_is_consistent_across_threads() {
        let f = Arc::new(TraceFilter::new(TraceConfig {
            default: TraceLevel::Error,
            targets: [("ingest".to_string(), TraceLevel::Debug)].into(),
        }));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let f = Arc::clone(&f);
                scope.spawn(move || {
                    for _ in 0..5000 {
                        assert!(f.enabled("ingest", TraceLevel::Debug));
                        assert!(!f.enabled("ingest", TraceLevel::Trace));
                        assert!(!f.enabled("other", TraceLevel::Debug));
                    }
                });
            }
        });
        // Each thread refreshed at most once (plus the construction
        // thread's warmup).
        assert!(f.refreshes() <= 5, "refreshes = {}", f.refreshes());
    }
}
