//! Runtime-adjustable diagnostics for the long-lived daemon.
//!
//! A collector that runs for months cannot be restarted to chase one
//! misbehaving peer. [`TraceFilter`] is the knob: a default verbosity
//! plus per-target overrides (`reactor`, `session`, `config`, `ingest`,
//! …), all adjustable at runtime through the config store or the control
//! socket. The hot path pays one relaxed atomic load when tracing is
//! effectively off — the maximum enabled level is cached in an
//! `AtomicU8`, so 5k sessions streaming updates don't take a lock to
//! discover nobody is listening.
//!
//! Output goes to a pluggable sink (stderr by default); tests install a
//! capturing sink to assert what a level change makes visible.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Verbosity of one trace line (and threshold of one filter target).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Nothing.
    Off = 0,
    /// Session teardown, queue overflow, decode failures.
    #[default]
    Error = 1,
    /// Lifecycle: sessions up/down, config commits, rotation.
    Info = 2,
    /// Per-event detail: timers fired, config diffs applied.
    Debug = 3,
    /// Per-message firehose.
    Trace = 4,
}

impl TraceLevel {
    /// Parses the control-socket spelling (`off|error|info|debug|trace`).
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "error" => Some(TraceLevel::Error),
            "info" => Some(TraceLevel::Info),
            "debug" => Some(TraceLevel::Debug),
            "trace" => Some(TraceLevel::Trace),
            _ => None,
        }
    }

    /// The control-socket spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Error => "error",
            TraceLevel::Info => "info",
            TraceLevel::Debug => "debug",
            TraceLevel::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> TraceLevel {
        match v {
            0 => TraceLevel::Off,
            1 => TraceLevel::Error,
            2 => TraceLevel::Info,
            3 => TraceLevel::Debug,
            _ => TraceLevel::Trace,
        }
    }
}

impl std::fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The declarative half: default level + per-target overrides. Lives in
/// `DaemonConfig` so trace verbosity rides the same candidate/commit
/// cycle as every other daemon setting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceConfig {
    /// Level for targets without an override.
    pub default: TraceLevel,
    /// Per-target overrides (target → level).
    pub targets: BTreeMap<String, TraceLevel>,
}

impl TraceConfig {
    /// The effective level for `target`.
    pub fn level_for(&self, target: &str) -> TraceLevel {
        self.targets.get(target).copied().unwrap_or(self.default)
    }

    fn max_level(&self) -> TraceLevel {
        self.targets.values().copied().max().unwrap_or(TraceLevel::Off).max(self.default)
    }
}

type Sink = Box<dyn Fn(&str, TraceLevel, &str) + Send + Sync>;

/// The runtime half: applies a [`TraceConfig`] and answers
/// [`enabled`]/[`log`] from the hot path.
///
/// [`enabled`]: TraceFilter::enabled
/// [`log`]: TraceFilter::log
pub struct TraceFilter {
    /// Max enabled level across all targets — the lock-free fast path.
    max_level: AtomicU8,
    config: Mutex<TraceConfig>,
    sink: Mutex<Option<Sink>>,
}

impl std::fmt::Debug for TraceFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceFilter")
            .field("max_level", &TraceLevel::from_u8(self.max_level.load(Ordering::Relaxed)))
            .finish()
    }
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter {
            max_level: AtomicU8::new(TraceLevel::default() as u8),
            config: Mutex::new(TraceConfig::default()),
            sink: Mutex::new(None),
        }
    }
}

impl TraceFilter {
    /// A filter applying `config`, writing to stderr.
    pub fn new(config: TraceConfig) -> Self {
        let filter = TraceFilter::default();
        filter.apply(config);
        filter
    }

    /// Replaces the active configuration (called on config commit).
    pub fn apply(&self, config: TraceConfig) {
        let max = config.max_level();
        *self.config.lock().unwrap() = config;
        self.max_level.store(max as u8, Ordering::Relaxed);
    }

    /// A copy of the active configuration.
    pub fn config(&self) -> TraceConfig {
        self.config.lock().unwrap().clone()
    }

    /// Whether a line at `level` for `target` would be emitted. One
    /// relaxed load when the level is above every configured threshold.
    pub fn enabled(&self, target: &str, level: TraceLevel) -> bool {
        if level as u8 > self.max_level.load(Ordering::Relaxed) {
            return false;
        }
        level <= self.config.lock().unwrap().level_for(target)
    }

    /// Emits one line if enabled. The closure defers formatting cost to
    /// the (rare) enabled case.
    pub fn log(&self, target: &str, level: TraceLevel, line: impl FnOnce() -> String) {
        if !self.enabled(target, level) {
            return;
        }
        let line = line();
        let sink = self.sink.lock().unwrap();
        match &*sink {
            Some(sink) => sink(target, level, &line),
            None => eprintln!("[{level}] {target}: {line}"),
        }
    }

    /// Redirects output (tests capture lines instead of spamming
    /// stderr).
    pub fn set_sink(&self, sink: impl Fn(&str, TraceLevel, &str) + Send + Sync + 'static) {
        *self.sink.lock().unwrap() = Some(Box::new(sink));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn default_filter_passes_errors_only() {
        let f = TraceFilter::default();
        assert!(f.enabled("reactor", TraceLevel::Error));
        assert!(!f.enabled("reactor", TraceLevel::Info));
        assert!(!f.enabled("session", TraceLevel::Trace));
    }

    #[test]
    fn per_target_override_beats_default() {
        let mut cfg = TraceConfig::default();
        cfg.targets.insert("session".into(), TraceLevel::Debug);
        let f = TraceFilter::new(cfg);
        assert!(f.enabled("session", TraceLevel::Debug));
        assert!(!f.enabled("reactor", TraceLevel::Debug), "default still error-only");
    }

    #[test]
    fn runtime_apply_changes_visibility_without_restart() {
        let f = TraceFilter::default();
        let lines: Arc<Mutex<Vec<String>>> = Arc::default();
        let captured = Arc::clone(&lines);
        f.set_sink(move |target, level, line| {
            captured.lock().unwrap().push(format!("{level} {target} {line}"));
        });

        f.log("ingest", TraceLevel::Debug, || "invisible".into());
        f.apply(TraceConfig {
            default: TraceLevel::Error,
            targets: [("ingest".to_string(), TraceLevel::Debug)].into(),
        });
        f.log("ingest", TraceLevel::Debug, || "visible".into());
        f.apply(TraceConfig::default());
        f.log("ingest", TraceLevel::Debug, || "invisible again".into());

        assert_eq!(*lines.lock().unwrap(), vec!["debug ingest visible".to_string()]);
    }

    #[test]
    fn disabled_level_never_runs_the_formatter() {
        let f =
            TraceFilter::new(TraceConfig { default: TraceLevel::Off, targets: BTreeMap::new() });
        f.log("reactor", TraceLevel::Error, || panic!("formatted while disabled"));
    }

    #[test]
    fn level_parse_round_trips() {
        for level in [
            TraceLevel::Off,
            TraceLevel::Error,
            TraceLevel::Info,
            TraceLevel::Debug,
            TraceLevel::Trace,
        ] {
            assert_eq!(TraceLevel::parse(level.as_str()), Some(level));
        }
        assert_eq!(TraceLevel::parse("verbose"), None);
    }
}
