//! Raw readiness-notification syscalls behind a portable [`Poller`] trait.
//!
//! The reactor needs one thing from the OS: "tell me which of these
//! thousands of file descriptors are readable/writable, or wake me at a
//! deadline". On Linux that is `epoll` (O(ready) per wait); everywhere
//! POSIX it is `poll` (O(registered) per wait). Both are declared here as
//! raw `extern "C"` bindings — std already links libc, so this costs no
//! new dependency — and wrapped in the safe [`Poller`] trait the reactor
//! is written against. [`PollerKind::Auto`] picks epoll on Linux and the
//! `poll(2)` fallback elsewhere; tests force [`PollerKind::Poll`] to keep
//! the fallback honest on any host.
//!
//! Also here, because they are the same kind of thin syscall shim the
//! daemon needs at scale: [`raise_nofile_limit`] (a 5k-session soak holds
//! over 10k descriptors in one process) and [`raise_listen_backlog`] (a 5k
//! connection burst overflows the default backlog of 128).
//!
//! This is the only module in the crate allowed to use `unsafe`; every
//! block is a straight FFI call with the invariants stated at the call
//! site, and nothing above this layer touches a raw pointer.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_uint, c_void};
use std::sync::Arc;

// ---------------------------------------------------------------------
// FFI declarations (Linux values; the poll path is POSIX-portable).
// ---------------------------------------------------------------------

/// `struct epoll_event`. x86 keeps it packed (kernel ABI); other
/// architectures use natural alignment — mirror glibc's definition.
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
#[derive(Clone, Copy)]
struct EpollEventRaw {
    events: u32,
    data: u64,
}

/// `struct pollfd` (POSIX).
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFdRaw {
    fd: c_int,
    events: i16,
    revents: i16,
}

/// `struct rlimit` (Linux: 64-bit fields).
#[repr(C)]
struct RLimitRaw {
    rlim_cur: u64,
    rlim_max: u64,
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const RLIMIT_NOFILE: c_int = 7;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEventRaw) -> c_int;
    fn epoll_wait(
        epfd: c_int,
        events: *mut EpollEventRaw,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    #[cfg(unix)]
    fn poll(fds: *mut PollFdRaw, nfds: usize, timeout: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn listen(sockfd: c_int, backlog: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimitRaw) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimitRaw) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned raw descriptor, closed on drop (epoll instances and
/// eventfds, which std has no owned type for on stable without
/// `OwnedFd` juggling through FFI-returned ints).
#[derive(Debug)]
struct OwnedRawFd(RawFd);

impl Drop for OwnedRawFd {
    fn drop(&mut self) {
        // SAFETY: we exclusively own this descriptor; double-close is
        // impossible because Drop runs once.
        unsafe {
            let _ = close(self.0);
        }
    }
}

// ---------------------------------------------------------------------
// The portable readiness interface.
// ---------------------------------------------------------------------

/// Which readiness backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollerKind {
    /// epoll on Linux, `poll(2)` elsewhere.
    #[default]
    Auto,
    /// Force the Linux epoll backend.
    Epoll,
    /// Force the portable `poll(2)` backend (O(registered) per wait —
    /// fine for hundreds of sessions, the scale the fallback targets).
    Poll,
}

/// A readiness event for one registered descriptor.
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Data can be read (or an inbound connection accepted).
    pub readable: bool,
    /// The descriptor can be written.
    pub writable: bool,
    /// The peer closed or the descriptor errored; a final read will
    /// surface the detail.
    pub hangup: bool,
}

/// Token reserved for the poller's own wake channel.
pub const WAKE_TOKEN: u64 = u64::MAX;

/// Wakes a [`Poller`] blocked in [`Poller::wait`] from another thread.
#[derive(Debug, Clone)]
pub struct Waker(WakerInner);

#[derive(Debug, Clone)]
enum WakerInner {
    /// eventfd (epoll backend).
    EventFd(Arc<OwnedRawFd>),
    /// The write end of a socket pair (poll backend).
    Pipe(Arc<std::os::unix::net::UnixStream>),
}

impl Waker {
    /// Interrupts the poller's current (or next) wait. Idempotent and
    /// cheap; safe to call from any thread.
    pub fn wake(&self) {
        match &self.0 {
            WakerInner::EventFd(fd) => {
                let one: u64 = 1;
                // SAFETY: writing 8 bytes from a valid, live stack
                // location to an eventfd we own. A full counter (EAGAIN)
                // already means "wake pending", so the result is ignored.
                unsafe {
                    let _ = write(fd.0, (&one as *const u64).cast(), 8);
                }
            }
            WakerInner::Pipe(s) => {
                use std::io::Write as _;
                let _ = (&**s).write(&[1u8]);
            }
        }
    }
}

/// The readiness-notification interface the reactor drives sessions
/// with. One instance per reactor shard; not shared across threads
/// (the [`Waker`] is the cross-thread half).
pub trait Poller: Send {
    /// Starts watching `fd` under `token`.
    fn register(&mut self, fd: RawFd, token: u64, readable: bool, writable: bool)
        -> io::Result<()>;
    /// Changes the interest set of an already-registered `fd`.
    fn modify(&mut self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()>;
    /// Stops watching `fd`.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;
    /// Blocks until readiness or `timeout_ms` (`-1` = forever), filling
    /// `out`. Wake-channel readiness is surfaced as [`WAKE_TOKEN`] after
    /// draining the channel.
    fn wait(&mut self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()>;
    /// A handle that interrupts [`Poller::wait`] from other threads.
    fn waker(&self) -> Waker;
    /// Backend name, for logs and stats.
    fn kind(&self) -> &'static str;
}

/// Builds the requested backend. `Auto` = epoll on Linux, `poll(2)`
/// elsewhere.
pub fn new_poller(kind: PollerKind) -> io::Result<Box<dyn Poller>> {
    match kind {
        PollerKind::Epoll => Ok(Box::new(EpollPoller::new()?)),
        PollerKind::Poll => Ok(Box::new(PollPoller::new()?)),
        PollerKind::Auto => {
            if cfg!(target_os = "linux") {
                Ok(Box::new(EpollPoller::new()?))
            } else {
                Ok(Box::new(PollPoller::new()?))
            }
        }
    }
}

// ---------------------------------------------------------------------
// epoll backend.
// ---------------------------------------------------------------------

/// The Linux epoll backend: O(ready) wait cost, level-triggered.
#[derive(Debug)]
pub struct EpollPoller {
    epfd: OwnedRawFd,
    wake: Arc<OwnedRawFd>,
}

impl EpollPoller {
    /// A fresh epoll instance with its wake eventfd registered.
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscalls; ownership of the returned descriptors
        // is taken immediately by OwnedRawFd.
        let epfd = OwnedRawFd(cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?);
        let wake = OwnedRawFd(cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?);
        let mut ev = EpollEventRaw { events: EPOLLIN, data: WAKE_TOKEN };
        // SAFETY: epfd and wake.0 are live descriptors we own; `ev` is a
        // valid epoll_event for the duration of the call.
        cvt(unsafe { epoll_ctl(epfd.0, EPOLL_CTL_ADD, wake.0, &mut ev) })?;
        Ok(EpollPoller { epfd, wake: Arc::new(wake) })
    }

    fn ctl(&mut self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEventRaw { events, data: token };
        // SAFETY: self.epfd is live; `fd` is a descriptor the caller
        // owns (the reactor registers only sockets it holds open).
        cvt(unsafe { epoll_ctl(self.epfd.0, op, fd, &mut ev) })?;
        Ok(())
    }
}

fn epoll_interest(readable: bool, writable: bool) -> u32 {
    let mut e = EPOLLRDHUP;
    if readable {
        e |= EPOLLIN;
    }
    if writable {
        e |= EPOLLOUT;
    }
    e
}

impl Poller for EpollPoller {
    fn register(
        &mut self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, epoll_interest(readable, writable), token)
    }

    fn modify(&mut self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, epoll_interest(readable, writable), token)
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn wait(&mut self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
        out.clear();
        let mut events = [EpollEventRaw { events: 0, data: 0 }; 256];
        // SAFETY: the buffer outlives the call and maxevents matches its
        // length; epfd is live.
        let n = match cvt(unsafe {
            epoll_wait(self.epfd.0, events.as_mut_ptr(), events.len() as c_int, timeout_ms)
        }) {
            Ok(n) => n as usize,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &events[..n] {
            // Copy out of the (possibly packed) struct before use.
            let (bits, token) = (ev.events, ev.data);
            if token == WAKE_TOKEN {
                let mut counter: u64 = 0;
                // SAFETY: reading 8 bytes into a valid stack slot from
                // the nonblocking eventfd we own; EAGAIN just means the
                // counter was already drained.
                unsafe {
                    let _ = read(self.wake.0, (&mut counter as *mut u64).cast(), 8);
                }
            }
            out.push(PollEvent {
                token,
                readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
            });
        }
        Ok(())
    }

    fn waker(&self) -> Waker {
        Waker(WakerInner::EventFd(Arc::clone(&self.wake)))
    }

    fn kind(&self) -> &'static str {
        "epoll"
    }
}

// ---------------------------------------------------------------------
// poll(2) fallback backend.
// ---------------------------------------------------------------------

/// The portable `poll(2)` backend. Keeps the registered set in a vector
/// rebuilt into a `pollfd` array per wait — O(registered), which is the
/// honest cost of the portable API.
pub struct PollPoller {
    registered: Vec<(RawFd, u64, bool, bool)>,
    wake_read: std::os::unix::net::UnixStream,
    wake_write: Arc<std::os::unix::net::UnixStream>,
}

impl std::fmt::Debug for PollPoller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PollPoller").field("registered", &self.registered.len()).finish()
    }
}

impl PollPoller {
    /// A fresh poll set with its wake channel.
    pub fn new() -> io::Result<Self> {
        let (wake_read, wake_write) = std::os::unix::net::UnixStream::pair()?;
        wake_read.set_nonblocking(true)?;
        wake_write.set_nonblocking(true)?;
        Ok(PollPoller { registered: Vec::new(), wake_read, wake_write: Arc::new(wake_write) })
    }
}

impl Poller for PollPoller {
    fn register(
        &mut self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        if self.registered.iter().any(|&(f, ..)| f == fd) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
        }
        self.registered.push((fd, token, readable, writable));
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        match self.registered.iter_mut().find(|(f, ..)| *f == fd) {
            Some(slot) => {
                *slot = (fd, token, readable, writable);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let before = self.registered.len();
        self.registered.retain(|&(f, ..)| f != fd);
        if self.registered.len() == before {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        }
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        out.clear();
        let mut fds: Vec<PollFdRaw> = Vec::with_capacity(self.registered.len() + 1);
        fds.push(PollFdRaw { fd: self.wake_read.as_raw_fd(), events: POLLIN, revents: 0 });
        for &(fd, _, readable, writable) in &self.registered {
            let mut events = 0i16;
            if readable {
                events |= POLLIN;
            }
            if writable {
                events |= POLLOUT;
            }
            fds.push(PollFdRaw { fd, events, revents: 0 });
        }
        // SAFETY: `fds` is a valid, exclusively borrowed array for the
        // duration of the call; nfds matches its length.
        let n = match cvt(unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) }) {
            Ok(n) => n as usize,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Ok(());
        }
        if fds[0].revents & POLLIN != 0 {
            use std::io::Read as _;
            let mut buf = [0u8; 64];
            while matches!((&self.wake_read).read(&mut buf), Ok(n) if n > 0) {}
            out.push(PollEvent {
                token: WAKE_TOKEN,
                readable: true,
                writable: false,
                hangup: false,
            });
        }
        for (slot, pfd) in self.registered.iter().zip(&fds[1..]) {
            if pfd.revents == 0 {
                continue;
            }
            let r = pfd.revents;
            out.push(PollEvent {
                token: slot.1,
                readable: r & (POLLIN | POLLHUP | POLLERR) != 0,
                writable: r & POLLOUT != 0,
                hangup: r & (POLLHUP | POLLERR) != 0,
            });
        }
        Ok(())
    }

    fn waker(&self) -> Waker {
        Waker(WakerInner::Pipe(Arc::clone(&self.wake_write)))
    }

    fn kind(&self) -> &'static str {
        "poll"
    }
}

// ---------------------------------------------------------------------
// Process-limit shims.
// ---------------------------------------------------------------------

/// Raises the soft `RLIMIT_NOFILE` toward `want` (clamped to the hard
/// limit). Returns the resulting soft limit. A 5k-session daemon plus an
/// in-process 5k-session test rig holds >10k descriptors, well past the
/// common soft default of 1024.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = RLimitRaw { rlim_cur: 0, rlim_max: 0 };
    // SAFETY: `lim` is a valid, exclusively borrowed struct.
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur >= want {
        return Ok(lim.rlim_cur);
    }
    let target = want.min(lim.rlim_max);
    let new = RLimitRaw { rlim_cur: target, rlim_max: lim.rlim_max };
    // SAFETY: `new` is a valid struct; raising the soft limit within the
    // hard limit needs no privilege.
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, &new) })?;
    Ok(target)
}

/// Re-issues `listen(2)` on an already-listening socket to raise its
/// accept backlog (Linux applies the new value in place). std's
/// `TcpListener::bind` hardcodes a backlog of 128, which a multi-thousand
/// session connection burst overflows.
pub fn raise_listen_backlog(listener: &std::net::TcpListener, backlog: u32) -> io::Result<()> {
    use std::os::fd::AsRawFd;
    // SAFETY: the fd is live for the duration of the call (we borrow the
    // listener); listen on a listening socket only updates the backlog.
    cvt(unsafe { listen(listener.as_raw_fd(), backlog.min(i32::MAX as u32) as c_int) })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn backend_roundtrip(kind: PollerKind) {
        let mut poller = new_poller(kind).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 7, true, false).unwrap();

        // Nothing readable yet: the wait times out empty.
        let mut events = Vec::new();
        poller.wait(&mut events, 10).unwrap();
        assert!(events.iter().all(|e| e.token != 7));

        // Bytes arrive: token 7 becomes readable.
        (&a).write_all(b"hello").unwrap();
        poller.wait(&mut events, 1_000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable), "{events:?}");

        // Write interest reports writable on an idle socket.
        poller.modify(b.as_raw_fd(), 7, true, true).unwrap();
        poller.wait(&mut events, 1_000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        poller.deregister(b.as_raw_fd()).unwrap();
        (&a).write_all(b"more").unwrap();
        poller.wait(&mut events, 10).unwrap();
        assert!(events.iter().all(|e| e.token != 7), "deregistered fd still reported");
    }

    #[test]
    fn epoll_reports_readiness() {
        backend_roundtrip(PollerKind::Epoll);
    }

    #[test]
    fn poll_fallback_reports_readiness() {
        backend_roundtrip(PollerKind::Poll);
    }

    fn waker_interrupts(kind: PollerKind) {
        let mut poller = new_poller(kind).unwrap();
        let waker = poller.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            waker.wake();
        });
        let start = std::time::Instant::now();
        let mut events = Vec::new();
        // Without the wake this would block for 5 s.
        poller.wait(&mut events, 5_000).unwrap();
        assert!(start.elapsed() < std::time::Duration::from_secs(2));
        assert!(events.iter().any(|e| e.token == WAKE_TOKEN));
        t.join().unwrap();
        // The wake channel is drained: the next wait times out quietly.
        poller.wait(&mut events, 10).unwrap();
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn epoll_waker_interrupts_wait() {
        waker_interrupts(PollerKind::Epoll);
    }

    #[test]
    fn poll_waker_interrupts_wait() {
        waker_interrupts(PollerKind::Poll);
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotonic() {
        let current = raise_nofile_limit(64).unwrap();
        assert!(current >= 64);
        let raised = raise_nofile_limit(current).unwrap();
        assert!(raised >= current);
    }

    #[test]
    fn listen_backlog_raise_succeeds_on_listening_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        raise_listen_backlog(&listener, 4096).unwrap();
        // Still accepts connections afterwards.
        let addr = listener.local_addr().unwrap();
        let _c = TcpStream::connect(addr).unwrap();
        let (_s, _) = listener.accept().unwrap();
    }
}
