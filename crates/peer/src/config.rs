//! Hot-reloadable daemon configuration: running/candidate generations
//! with commit/discard semantics.
//!
//! A collector that holds thousands of sessions cannot be restarted to
//! add a peer or turn up tracing. Following the running/candidate model
//! routing daemons converged on (zebra's `ConfigStore` is the reference
//! shape), [`ConfigStore`] keeps two configurations: the **running**
//! config every subsystem acts on, and a **candidate** that edits
//! accumulate into invisibly. [`commit`] atomically promotes the
//! candidate and bumps a generation counter; [`discard`] resets the
//! candidate to the running config. Subscribers (reactor shards, the
//! ingest loop) poll the generation — one relaxed atomic load per loop
//! iteration — and re-read the running config only when it moved, so a
//! commit propagates within one poll interval without any subscriber
//! holding a lock on the hot path.
//!
//! The store also owns the process's [`TraceFilter`]: trace levels ride
//! the same candidate/commit cycle as every other setting, and a commit
//! applies them to the filter immediately.
//!
//! [`commit`]: ConfigStore::commit
//! [`discard`]: ConfigStore::discard

use std::collections::BTreeSet;
use std::net::{IpAddr, SocketAddr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use kcc_bgp_types::Asn;

use crate::collector::StampMode;
use crate::rotate::RotateConfig;
use crate::trace::{TraceConfig, TraceFilter};

/// Which peers the daemon accepts sessions from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PeerPolicy {
    /// Any peer that completes the handshake (the collector default —
    /// real collectors are open multilateral listeners).
    #[default]
    AcceptAny,
    /// Only peers announcing one of these ASNs; anyone else is refused
    /// at OPEN time with a Bad Peer AS NOTIFICATION, and removing an ASN
    /// from the set Ceases its live sessions on the next commit.
    Allow(BTreeSet<Asn>),
}

impl PeerPolicy {
    /// Whether a peer announcing `asn` may hold a session.
    pub fn allows(&self, asn: Asn) -> bool {
        match self {
            PeerPolicy::AcceptAny => true,
            PeerPolicy::Allow(set) => set.contains(&asn),
        }
    }
}

/// Everything about a running daemon that can change without a restart.
///
/// The static identity — local ASN, BGP identifier, collector name,
/// epoch — stays in `CollectorConfig`: a collector that changes its ASN
/// *is* a different collector, and every session would have to
/// renegotiate anyway.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonConfig {
    /// Timestamping of arriving updates.
    pub stamp: StampMode,
    /// Which peers may hold sessions.
    pub peers: PeerPolicy,
    /// Peers that are IXP route servers (metadata the wire cannot
    /// carry). Applies to sessions established after the commit.
    pub route_servers: Vec<(Asn, IpAddr)>,
    /// Rotating MRT dumps; changing it hot-swaps the rotator (the old
    /// dump files are finished cleanly).
    pub mrt: Option<RotateConfig>,
    /// Extra listening addresses beyond the primary bind; additions are
    /// bound and removals closed on commit.
    pub listen: Vec<SocketAddr>,
    /// Trace verbosity, applied to the store's [`TraceFilter`] on
    /// commit.
    pub trace: TraceConfig,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            stamp: StampMode::Arrival,
            peers: PeerPolicy::AcceptAny,
            route_servers: Vec::new(),
            mrt: None,
            listen: Vec::new(),
            trace: TraceConfig::default(),
        }
    }
}

struct Inner {
    running: Arc<DaemonConfig>,
    candidate: DaemonConfig,
    dirty: bool,
}

/// The running/candidate configuration store. One per daemon, shared
/// `Arc`-wide with every subsystem and the control socket.
pub struct ConfigStore {
    inner: Mutex<Inner>,
    /// Bumped on every commit; subscribers poll this to learn a new
    /// running config exists.
    generation: AtomicU64,
    trace: TraceFilter,
    metrics: Arc<kcc_obs::Registry>,
}

impl std::fmt::Debug for ConfigStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConfigStore")
            .field("generation", &self.generation())
            .field("dirty", &self.dirty())
            .finish()
    }
}

impl ConfigStore {
    /// A store whose running *and* candidate start as `initial`. The
    /// trace filter immediately reflects `initial.trace`.
    pub fn new(initial: DaemonConfig) -> Self {
        let trace = TraceFilter::new(initial.trace.clone());
        ConfigStore {
            inner: Mutex::new(Inner {
                running: Arc::new(initial.clone()),
                candidate: initial,
                dirty: false,
            }),
            generation: AtomicU64::new(1),
            trace,
            metrics: Arc::new(kcc_obs::Registry::new()),
        }
    }

    /// The config every subsystem acts on.
    pub fn running(&self) -> Arc<DaemonConfig> {
        Arc::clone(&self.inner.lock().unwrap().running)
    }

    /// A copy of the candidate (running + uncommitted edits).
    pub fn candidate(&self) -> DaemonConfig {
        self.inner.lock().unwrap().candidate.clone()
    }

    /// Applies an edit to the candidate. Invisible to subscribers until
    /// [`commit`](ConfigStore::commit).
    pub fn edit(&self, f: impl FnOnce(&mut DaemonConfig)) {
        let mut inner = self.inner.lock().unwrap();
        f(&mut inner.candidate);
        inner.dirty = inner.candidate != *inner.running;
    }

    /// Whether the candidate differs from the running config.
    pub fn dirty(&self) -> bool {
        self.inner.lock().unwrap().dirty
    }

    /// Promotes the candidate to running, applies its trace config, and
    /// returns the new generation. A clean candidate commits to a no-op:
    /// the generation does not move, so subscribers are not spuriously
    /// re-triggered.
    pub fn commit(&self) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        if !inner.dirty {
            return self.generation.load(Ordering::Relaxed);
        }
        inner.running = Arc::new(inner.candidate.clone());
        inner.dirty = false;
        self.trace.apply(inner.running.trace.clone());
        // Release-ordered so a subscriber that observes the new
        // generation also observes the new running Arc through the lock.
        self.generation.fetch_add(1, Ordering::Release) + 1
    }

    /// Resets the candidate to the running config. Returns whether there
    /// was anything to throw away.
    pub fn discard(&self) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let had_edits = inner.dirty;
        inner.candidate = (*inner.running).clone();
        inner.dirty = false;
        had_edits
    }

    /// The commit counter subscribers poll (one relaxed load).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The daemon's trace filter (kept in sync with the running
    /// config's `trace` section on every commit).
    pub fn trace(&self) -> &TraceFilter {
        &self.trace
    }

    /// The daemon-wide metrics registry. Reactor shards, the ingest
    /// thread, and the control socket all record into this one registry;
    /// the control `metrics` command renders it.
    pub fn metrics(&self) -> &Arc<kcc_obs::Registry> {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceLevel;

    #[test]
    fn candidate_edits_invisible_until_commit() {
        let store = ConfigStore::new(DaemonConfig::default());
        let g0 = store.generation();
        store.edit(|c| c.stamp = StampMode::logical(500));
        assert!(store.dirty());
        assert_eq!(store.running().stamp, StampMode::Arrival, "running untouched");
        assert_eq!(store.candidate().stamp, StampMode::logical(500));
        assert_eq!(store.generation(), g0, "generation moves only on commit");

        let g1 = store.commit();
        assert!(g1 > g0);
        assert!(!store.dirty());
        assert_eq!(store.running().stamp, StampMode::logical(500));
    }

    #[test]
    fn discard_restores_running() {
        let store = ConfigStore::new(DaemonConfig::default());
        store.edit(|c| c.peers = PeerPolicy::Allow([Asn(65_001)].into()));
        assert!(store.discard(), "there were edits to discard");
        assert!(!store.dirty());
        assert_eq!(store.candidate().peers, PeerPolicy::AcceptAny);
        assert!(!store.discard(), "nothing left to discard");
    }

    #[test]
    fn clean_commit_is_a_no_op() {
        let store = ConfigStore::new(DaemonConfig::default());
        let g0 = store.generation();
        assert_eq!(store.commit(), g0, "clean commit keeps the generation");
        // An edit that lands back on the running value is also clean.
        store.edit(|c| c.stamp = StampMode::Arrival);
        assert!(!store.dirty());
        assert_eq!(store.commit(), g0);
    }

    #[test]
    fn commit_applies_trace_config_to_the_filter() {
        let store = ConfigStore::new(DaemonConfig::default());
        assert!(!store.trace().enabled("reactor", TraceLevel::Debug));
        store.edit(|c| {
            c.trace.targets.insert("reactor".into(), TraceLevel::Debug);
        });
        assert!(!store.trace().enabled("reactor", TraceLevel::Debug), "not before commit");
        store.commit();
        assert!(store.trace().enabled("reactor", TraceLevel::Debug));
        assert!(!store.trace().enabled("ingest", TraceLevel::Debug), "other targets unchanged");
    }

    #[test]
    fn peer_policy_allows() {
        assert!(PeerPolicy::AcceptAny.allows(Asn(1)));
        let allow = PeerPolicy::Allow([Asn(2), Asn(3)].into());
        assert!(allow.allows(Asn(2)));
        assert!(!allow.allows(Asn(1)));
    }
}
