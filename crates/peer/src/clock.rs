//! Injectable millisecond clocks.
//!
//! The FSM never reads time itself — every transition takes `now_ms` as
//! an argument — but the threads that *drive* FSMs (the session runner,
//! the collector's arrival stamping) need a time source. [`Clock`]
//! abstracts it so unit tests advance time by hand ([`ManualClock`])
//! while production uses the monotonic wall clock ([`WallClock`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic millisecond clock. The zero point is arbitrary (clock
/// creation for [`WallClock`]); only differences matter.
pub trait Clock: Send + Sync {
    /// Milliseconds since the clock's zero point.
    fn now_ms(&self) -> u64;
}

/// The real monotonic clock, zeroed at construction.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A wall clock starting at zero now.
    pub fn new() -> Self {
        WallClock { start: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// A hand-advanced clock for deterministic tests: time moves only when
/// [`ManualClock::advance`] is called. Clones share the same time.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances time by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }

    /// Sets the absolute time.
    pub fn set(&self, ms: u64) {
        self.now.store(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_by_hand() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance(250);
        assert_eq!(c.now_ms(), 250);
        let shared = c.clone();
        shared.advance(50);
        assert_eq!(c.now_ms(), 300, "clones share time");
        c.set(1_000);
        assert_eq!(shared.now_ms(), 1_000);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }
}
