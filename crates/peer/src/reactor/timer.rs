//! A hashed timer wheel for per-session FSM deadlines.
//!
//! Thousands of sessions each carry one armed deadline (the minimum of
//! the FSM's [`next_deadline`] and any drain cap). A binary heap would
//! pay O(log n) per re-arm — and every received message re-arms the hold
//! timer. The wheel pays O(1): 1024 slots × 256 ms ticks ≈ a 262 s
//! horizon, comfortably past the longest FSM timer (open-hold, 240 s);
//! the rare beyond-horizon deadline parks in an overflow list and is
//! re-homed as the cursor advances.
//!
//! Cancellation is lazy: re-arming simply inserts a new entry, and
//! [`TimerWheel::advance`] hands back `(token, deadline)` pairs for the
//! *caller* to validate against the session's currently armed deadline —
//! a popped entry that no longer matches is a stale arm and is dropped.
//! Firing is at tick granularity: an entry fires on the first `advance`
//! whose `now_ms` has fully passed its tick, so deadlines land at most
//! [`TICK_MS`] late — noise against BGP timers measured in seconds.
//!
//! [`next_deadline`]: crate::fsm::Fsm::next_deadline

/// Milliseconds per wheel tick.
pub const TICK_MS: u64 = 256;
/// Slots per revolution; horizon = `TICK_MS * SLOTS` ≈ 262 s.
pub const SLOTS: usize = 1024;

/// A due timer: the token it was armed for and the deadline it carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DueTimer {
    /// The session token the deadline was armed under.
    pub token: u64,
    /// The absolute deadline (ms) the entry was inserted with — compare
    /// against the session's currently armed deadline to detect stale
    /// entries.
    pub deadline_ms: u64,
}

/// The wheel. One per reactor shard; not thread-safe by design.
#[derive(Debug)]
pub struct TimerWheel {
    /// Absolute time of tick 0.
    start_ms: u64,
    /// The next tick index to process (monotonic, never wraps).
    cursor: u64,
    slots: Vec<Vec<DueTimer>>,
    /// Entries more than one revolution ahead of the cursor.
    overflow: Vec<DueTimer>,
    len: usize,
}

impl TimerWheel {
    /// An empty wheel anchored at `now_ms`.
    pub fn new(now_ms: u64) -> Self {
        TimerWheel {
            start_ms: now_ms,
            cursor: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Armed entries, stale ones included.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arms `deadline_ms` for `token`. Past deadlines land in the
    /// cursor's own slot and fire on the next [`advance`].
    ///
    /// [`advance`]: TimerWheel::advance
    pub fn insert(&mut self, deadline_ms: u64, token: u64) {
        let entry = DueTimer { token, deadline_ms };
        let tick = deadline_ms.saturating_sub(self.start_ms) / TICK_MS;
        let tick = tick.max(self.cursor);
        if tick >= self.cursor + SLOTS as u64 {
            self.overflow.push(entry);
        } else {
            self.slots[(tick % SLOTS as u64) as usize].push(entry);
        }
        self.len += 1;
    }

    /// Moves the cursor up to `now_ms`, appending every fired entry to
    /// `due`. A slot fires once `now_ms` has fully passed its tick, so
    /// everything handed back is genuinely due.
    pub fn advance(&mut self, now_ms: u64, due: &mut Vec<DueTimer>) {
        let target = now_ms.saturating_sub(self.start_ms) / TICK_MS;
        // Bound the walk to one revolution: beyond that every slot has
        // been visited once and the wheel is known empty of older ticks.
        let mut steps = 0usize;
        while self.cursor < target && steps < SLOTS {
            let slot = &mut self.slots[(self.cursor % SLOTS as u64) as usize];
            self.len -= slot.len();
            due.append(slot);
            self.cursor += 1;
            steps += 1;
        }
        if self.cursor < target {
            self.cursor = target;
        }
        // Re-home overflow entries that the new cursor brings inside the
        // horizon (or makes due). Overflow is empty in practice — only a
        // deadline past ~262 s lands there.
        if !self.overflow.is_empty() {
            let horizon = self.cursor + SLOTS as u64;
            let mut i = 0;
            while i < self.overflow.len() {
                let tick = self.overflow[i].deadline_ms.saturating_sub(self.start_ms) / TICK_MS;
                if tick < horizon {
                    let entry = self.overflow.swap_remove(i);
                    if entry.deadline_ms <= now_ms {
                        self.len -= 1;
                        due.push(entry);
                    } else {
                        let tick = tick.max(self.cursor);
                        self.slots[(tick % SLOTS as u64) as usize].push(entry);
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fired(wheel: &mut TimerWheel, now_ms: u64) -> Vec<DueTimer> {
        let mut due = Vec::new();
        wheel.advance(now_ms, &mut due);
        due
    }

    #[test]
    fn fires_after_deadline_never_before() {
        let mut w = TimerWheel::new(1_000);
        w.insert(5_000, 42);
        assert!(fired(&mut w, 4_999).is_empty());
        // One tick past the deadline's tick boundary: must fire.
        let due = fired(&mut w, 5_000 + TICK_MS);
        assert_eq!(due, vec![DueTimer { token: 42, deadline_ms: 5_000 }]);
        assert!(w.is_empty());
        // Never fires twice.
        assert!(fired(&mut w, 100_000).is_empty());
    }

    #[test]
    fn past_deadline_fires_immediately() {
        let mut w = TimerWheel::new(10_000);
        w.insert(3_000, 7); // already in the past
        let due = fired(&mut w, 10_000 + TICK_MS);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].token, 7);
    }

    #[test]
    fn lazy_cancellation_leaves_stale_entries_distinguishable() {
        let mut w = TimerWheel::new(0);
        // Session 9 armed at 5 s, then re-armed at 60 s (e.g. hold timer
        // refreshed by a keepalive). Both entries live in the wheel; the
        // caller drops the one that no longer matches its armed value.
        w.insert(5_000, 9);
        w.insert(60_000, 9);
        let armed = 60_000u64;
        let due = fired(&mut w, 10_000);
        assert_eq!(due.len(), 1);
        assert_ne!(due[0].deadline_ms, armed, "stale entry is detectable");
        let due = fired(&mut w, 61_000);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].deadline_ms, armed);
    }

    #[test]
    fn beyond_horizon_deadlines_park_in_overflow_and_fire() {
        let mut w = TimerWheel::new(0);
        let far = TICK_MS * SLOTS as u64 * 3; // three revolutions out
        w.insert(far, 1);
        assert_eq!(w.len(), 1);
        assert!(fired(&mut w, far - 1_000).is_empty());
        let due = fired(&mut w, far + TICK_MS);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].token, 1);
        assert!(w.is_empty());
    }

    #[test]
    fn large_jump_fires_everything_once() {
        let mut w = TimerWheel::new(0);
        for t in 0..500u64 {
            w.insert(t * 700, t);
        }
        let mut due = Vec::new();
        w.advance(10 * TICK_MS * SLOTS as u64, &mut due);
        assert_eq!(due.len(), 500);
        let mut tokens: Vec<u64> = due.iter().map(|d| d.token).collect();
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), 500, "every token exactly once");
        assert!(w.is_empty());
    }
}
