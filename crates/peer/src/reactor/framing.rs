//! Resumable, nonblocking BGP framing.
//!
//! [`crate::transport::MessageReader`] blocks until a whole message
//! arrives — correct on a thread per session, useless on a reactor where
//! a read may surface any byte count, including a frame split anywhere.
//! [`FrameBuffer`] is the nonblocking counterpart: bytes go in as they
//! arrive, complete messages come out, partial frames stay buffered
//! across calls. Decode configuration follows the same rule as the
//! blocking reader — the 4-octet AS width is re-derived from the peer's
//! OPEN (ANDed with our own offer), which always precedes the first
//! UPDATE.
//!
//! [`WriteQueue`] is the outbound half: messages encode into a bounded
//! per-session backlog that flushes as far as the socket accepts and
//! resumes mid-frame after `WouldBlock`. Exceeding the cap is a protocol
//! failure for that session (a peer that cannot drain its keepalives is
//! dead weight), surfaced as [`WriteOverflow`] so the reactor tears the
//! session down instead of buffering without bound.

use std::collections::VecDeque;
use std::io::{ErrorKind, Write};

use bytes::{Buf, BytesMut};
use kcc_bgp_wire::{
    decode_message, encode_message, Message, SessionConfig, WireError, HEADER_LEN, MAX_MESSAGE_LEN,
};

use crate::transport::TransportError;

/// Accumulates stream bytes and yields complete decoded messages.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: BytesMut,
    cfg: SessionConfig,
    /// Whether we announced the 4-octet capability (the negotiated width
    /// is the AND of both sides).
    we_offer_four_octet: bool,
}

impl FrameBuffer {
    /// An empty buffer. `cfg` seeds the decode configuration until the
    /// peer's OPEN re-derives the AS width.
    pub fn new(cfg: SessionConfig, we_offer_four_octet: bool) -> Self {
        FrameBuffer { buf: BytesMut::new(), cfg, we_offer_four_octet }
    }

    /// The current decode configuration.
    pub fn config(&self) -> SessionConfig {
        self.cfg
    }

    /// Appends bytes read from the stream, in arrival order.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete message.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete message, or `Ok(None)` if the buffered
    /// bytes end mid-frame (call again after the next [`extend`]).
    ///
    /// [`extend`]: FrameBuffer::extend
    pub fn next_message(&mut self) -> Result<Option<Message>, TransportError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = u16::from_be_bytes([self.buf[16], self.buf[17]]) as usize;
        if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&len) {
            return Err(WireError::BadLength(len as u16).into());
        }
        if self.buf.len() < len {
            return Ok(None);
        }
        let frame = self.buf.split_to(len);
        let mut bytes = &frame[..];
        let message = decode_message(&mut bytes, &self.cfg)?;
        if bytes.has_remaining() {
            return Err(WireError::BadLength(len as u16).into());
        }
        if let Message::Open(open) = &message {
            self.cfg.four_octet_as = self.we_offer_four_octet && open.supports_four_octet();
        }
        Ok(Some(message))
    }
}

/// The write backlog overflowed its cap; the session must be torn down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOverflow {
    /// Bytes that were queued when the push was rejected.
    pub queued: usize,
    /// The configured cap.
    pub cap: usize,
}

impl std::fmt::Display for WriteOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "write queue overflow: {} queued bytes exceed cap {}", self.queued, self.cap)
    }
}

impl std::error::Error for WriteOverflow {}

/// What a [`WriteQueue::flush`] achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushOutcome {
    /// Everything queued reached the socket; write interest can drop.
    Flushed,
    /// The socket said `WouldBlock` mid-backlog; keep write interest and
    /// flush again on the next writable event.
    Pending,
}

/// A bounded per-session outbound backlog with mid-frame resume.
///
/// Frames are queued whole (a `VecDeque` of encoded messages plus an
/// offset into the front one), so a partially written KEEPALIVE resumes
/// at the exact byte where the socket stopped.
#[derive(Debug)]
pub struct WriteQueue {
    frames: VecDeque<BytesMut>,
    /// Bytes of the front frame already written.
    front_written: usize,
    queued: usize,
    cap: usize,
}

impl WriteQueue {
    /// An empty queue that refuses to grow past `cap` bytes.
    pub fn new(cap: usize) -> Self {
        WriteQueue { frames: VecDeque::new(), front_written: 0, queued: 0, cap }
    }

    /// True when nothing is waiting to be written.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Bytes queued but not yet written.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Encodes and queues one message.
    pub fn push_message(
        &mut self,
        message: &Message,
        cfg: &SessionConfig,
    ) -> Result<(), WriteOverflow> {
        let mut frame = BytesMut::new();
        encode_message(message, cfg, &mut frame);
        self.push_frame(frame)
    }

    /// Queues an already-encoded frame.
    pub fn push_frame(&mut self, frame: BytesMut) -> Result<(), WriteOverflow> {
        if self.queued + frame.len() > self.cap {
            return Err(WriteOverflow { queued: self.queued, cap: self.cap });
        }
        self.queued += frame.len();
        self.frames.push_back(frame);
        Ok(())
    }

    /// Writes as much of the backlog as the socket accepts. Returns
    /// [`FlushOutcome::Pending`] on `WouldBlock` with the position saved
    /// for resumption; propagates any other I/O error.
    pub fn flush<W: Write>(&mut self, w: &mut W) -> std::io::Result<FlushOutcome> {
        while let Some(front) = self.frames.front() {
            let rest = &front[self.front_written..];
            match w.write(rest) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.queued -= n;
                    self.front_written += n;
                    if self.front_written == front.len() {
                        self.frames.pop_front();
                        self.front_written = 0;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(FlushOutcome::Pending),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(FlushOutcome::Flushed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{Asn, PathAttributes};
    use kcc_bgp_wire::{OpenMessage, UpdatePacket};

    fn sample_messages() -> Vec<Message> {
        let attrs = PathAttributes {
            as_path: "64512 3356".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        vec![
            Message::Open(OpenMessage::standard(Asn(64_512), "10.0.0.1".parse().unwrap(), 90)),
            Message::Keepalive,
            Message::Update(UpdatePacket::announce("10.0.0.0/8".parse().unwrap(), attrs)),
        ]
    }

    fn wire(messages: &[Message]) -> Vec<u8> {
        let cfg = SessionConfig::default();
        let mut out = BytesMut::new();
        for m in messages {
            encode_message(m, &cfg, &mut out);
        }
        out.to_vec()
    }

    #[test]
    fn single_byte_feeds_reassemble_every_message() {
        let messages = sample_messages();
        let bytes = wire(&messages);
        let mut fb = FrameBuffer::new(SessionConfig::default(), true);
        let mut decoded = Vec::new();
        for b in bytes {
            fb.extend(&[b]);
            while let Some(m) = fb.next_message().unwrap() {
                decoded.push(m);
            }
        }
        assert_eq!(decoded, messages);
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn frame_buffer_rederives_as_width_from_peer_open() {
        // Peer announces no capabilities → 2-octet paths follow.
        let open = Message::Open(OpenMessage {
            asn: Asn(20_205),
            hold_time: 90,
            bgp_id: "192.0.2.9".parse().unwrap(),
            capabilities: vec![],
        });
        let attrs = PathAttributes {
            as_path: "20205 3356".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        let update = Message::Update(UpdatePacket::announce("10.0.0.0/8".parse().unwrap(), attrs));
        let mut bytes = wire(std::slice::from_ref(&open));
        let two_octet = SessionConfig { four_octet_as: false };
        let mut upd = BytesMut::new();
        encode_message(&update, &two_octet, &mut upd);
        bytes.extend_from_slice(&upd);

        let mut fb = FrameBuffer::new(SessionConfig::default(), true);
        fb.extend(&bytes);
        assert!(matches!(fb.next_message().unwrap(), Some(Message::Open(_))));
        assert!(!fb.config().four_octet_as);
        assert_eq!(fb.next_message().unwrap(), Some(update));
    }

    #[test]
    fn bad_length_is_rejected() {
        let mut fb = FrameBuffer::new(SessionConfig::default(), true);
        let mut junk = vec![0xFF; 16];
        junk.extend([0xFF, 0xFF, 4]); // length 65535
        fb.extend(&junk);
        assert!(matches!(fb.next_message(), Err(TransportError::Wire(WireError::BadLength(_)))));
    }

    /// A writer that accepts at most `chunk` bytes per call and returns
    /// `WouldBlock` every other call — the worst case a nonblocking
    /// socket can present.
    struct ChunkWriter {
        out: Vec<u8>,
        chunk: usize,
        block_next: bool,
    }

    impl Write for ChunkWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(ErrorKind::WouldBlock.into());
            }
            self.block_next = true;
            let n = buf.len().min(self.chunk);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_queue_resumes_mid_frame_after_wouldblock() {
        let cfg = SessionConfig::default();
        let messages = sample_messages();
        let mut q = WriteQueue::new(64 * 1024);
        for m in &messages {
            q.push_message(m, &cfg).unwrap();
        }
        let expected = wire(&messages);
        let mut w = ChunkWriter { out: Vec::new(), chunk: 3, block_next: false };
        let mut rounds = 0;
        loop {
            match q.flush(&mut w).unwrap() {
                FlushOutcome::Flushed => break,
                FlushOutcome::Pending => {
                    rounds += 1;
                    assert!(rounds < 10_000, "flush never completes");
                }
            }
        }
        assert_eq!(w.out, expected, "byte-exact across WouldBlock resumes");
        assert!(q.is_empty());
        assert_eq!(q.queued(), 0);
    }

    #[test]
    fn write_queue_cap_rejects_overflow() {
        let cfg = SessionConfig::default();
        let mut q = WriteQueue::new(32);
        // One KEEPALIVE (19 bytes) fits; the second exceeds the cap.
        q.push_message(&Message::Keepalive, &cfg).unwrap();
        let err = q.push_message(&Message::Keepalive, &cfg).unwrap_err();
        assert_eq!(err.cap, 32);
        assert_eq!(err.queued, 19);
    }
}
