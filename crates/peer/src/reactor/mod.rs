//! The event-driven session engine: thousands of BGP sessions on a
//! bounded worker pool.
//!
//! The thread-per-session runner (PR 4) topped out around hundreds of
//! peers — two OS threads per session is the deployment shape of the
//! original RouteViews quaggas, not of a collector holding the whole
//! table. This module replaces it with readiness multiplexing: **N shard
//! threads** (N ≪ sessions, default 2) each own a [`Poller`]
//! (epoll on Linux, `poll(2)` fallback — [`crate::sys`]), a slab of
//! nonblocking session state objects, and a [`TimerWheel`]. Shard 0 also
//! owns the listening sockets and deals accepted connections round-robin
//! to every shard through an injector queue + waker.
//!
//! Each session is the pure FSM ([`crate::fsm`]) plus resumable framing
//! ([`FrameBuffer`]/[`WriteQueue`]): readable events feed bytes through
//! the frame buffer into `Fsm::handle`, FSM `Send` actions queue into a
//! capped write backlog flushed as the socket accepts, and the FSM's
//! `next_deadline()` arms the shard's timer wheel — hold, keepalive and
//! open-hold timers fire with no thread parked per session. A per-wake
//! read budget keeps one flooding peer from starving the rest of the
//! shard, and the wheel is advanced on *every* loop iteration, so due
//! timers fire even while inbound readiness never pauses.
//!
//! Sessions never migrate between shards, so per-session event order —
//! the property the collector's deterministic logical stamping rests on —
//! is exactly what it was with a dedicated thread.
//!
//! Shards subscribe to the [`ConfigStore`] generation: a committed peer-
//! policy change Ceases disallowed sessions (and refuses new ones at
//! OPEN time) without touching any other session; committed listener
//! changes bind/close extra accept sockets on shard 0.

pub mod framing;
pub mod timer;

use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use kcc_bgp_wire::{Message, Notification, SessionConfig, UpdatePacket};
use kcc_collector::ShutdownFlag;

use crate::clock::Clock;
use crate::config::ConfigStore;
use crate::fsm::{Action, DownReason, EstablishedInfo, Fsm, FsmConfig, FsmEvent};
use crate::sys::{new_poller, PollEvent, Poller, PollerKind, Waker, WAKE_TOKEN};
use crate::trace::TraceLevel;
use crate::transport::TransportError;
use framing::{FlushOutcome, FrameBuffer, WriteQueue};
use timer::{DueTimer, TimerWheel};

/// What a session reports to the daemon, in order.
#[derive(Debug)]
pub enum SessionEvent {
    /// The handshake completed.
    Established {
        /// Negotiated parameters.
        info: EstablishedInfo,
        /// The peer's transport address.
        remote: SocketAddr,
    },
    /// An UPDATE arrived (only ever after `Established`).
    Update {
        /// Negotiated parameters of the session it arrived on.
        info: EstablishedInfo,
        /// The peer's transport address (same as its `Established`).
        remote: SocketAddr,
        /// The decoded packet (possibly many prefixes; boxed to keep the
        /// event small on the channel).
        packet: Box<UpdatePacket>,
    },
    /// The session ended.
    Closed {
        /// Negotiated parameters, if the handshake ever completed.
        info: Option<EstablishedInfo>,
        /// Why.
        reason: DownReason,
    },
}

/// Shape of the reactor's worker pool and per-session buffers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReactorConfig {
    /// Shard threads. The whole point: workers ≪ sessions.
    pub workers: usize,
    /// Readiness backend.
    pub poller: PollerKind,
    /// Per-session outbound backlog cap (bytes); overflow tears the
    /// session down.
    pub write_queue_cap: usize,
    /// Per-session bytes read per readiness wake, so one flooding peer
    /// cannot starve its shard (level-triggered readiness re-reports the
    /// remainder on the next wait).
    pub read_budget: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            workers: 2,
            poller: PollerKind::Auto,
            write_queue_cap: 4 * 1024 * 1024,
            read_budget: 256 * 1024,
        }
    }
}

/// Live counters shared between the shards and the daemon's observers —
/// readable while the reactor runs, which is what lets a soak prove ≥N
/// *concurrent* sessions rather than N sessions ever.
#[derive(Debug, Default)]
pub struct LiveGauges {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Sessions currently Established.
    pub established: AtomicU64,
    /// High-water mark of `established`.
    pub peak_established: AtomicU64,
}

impl LiveGauges {
    fn session_up(&self) {
        let now = self.established.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_established.fetch_max(now, Ordering::Relaxed);
    }

    fn session_down(&self) {
        self.established.fetch_sub(1, Ordering::Relaxed);
    }

    /// Polls until the daemon itself reports `n` concurrently
    /// Established sessions, or `timeout` elapses (returns whether the
    /// count was reached). A dialing client's FSM goes Up half a
    /// round-trip before the daemon processes the closing KEEPALIVE, so
    /// concurrency assertions must wait on this gauge, not on the
    /// client's own count.
    pub fn wait_for_established(&self, n: u64, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.established.load(Ordering::Relaxed) >= n {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }
}

/// While stopping, cease a session after this long without decoding a
/// message — measured from the last progress, so a backlogged peer
/// finishes its drain instead of dropping received updates.
const STOP_GRACE_MS: u64 = 2_000;
/// Absolute cap on the stopping drain, so a peer that floods forever
/// cannot hold the daemon open.
const STOP_HARD_CAP_MS: u64 = 30_000;
/// Poll timeout: how often a shard re-checks the shutdown flag and the
/// config generation when no readiness arrives.
const POLL_MS: i32 = 100;
/// Poll timeout while draining (mirrors the old runner's stop cadence).
const STOP_POLL_MS: i32 = 50;

/// Sessions are addressed as `epoch << SLOT_BITS | slot`; the epoch
/// makes a recycled slot's stale timers detectable.
const SLOT_BITS: u32 = 20;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;
/// Listener tokens live above every session token, below [`WAKE_TOKEN`].
const LISTEN_BASE: u64 = u64::MAX - (1 << 16);

const TRACE_TARGET: &str = "reactor";

/// Pre-registered handles into the daemon's metrics registry — built
/// once per shard at spawn, so recording on the hot path is a relaxed
/// atomic and never touches the registry lock.
struct ShardMetrics {
    sessions_established: Arc<kcc_obs::Counter>,
    sessions_ceased: Arc<kcc_obs::Counter>,
    frames_decoded: Arc<kcc_obs::Counter>,
    write_queue_overflows: Arc<kcc_obs::Counter>,
    hold_timer_expiries: Arc<kcc_obs::Counter>,
    poll_wakeups: Arc<kcc_obs::Counter>,
    write_queue_peak: Arc<kcc_obs::Gauge>,
}

impl ShardMetrics {
    fn new(registry: &kcc_obs::Registry, shard: usize) -> Self {
        ShardMetrics {
            sessions_established: registry.counter("kcc_reactor_sessions_established_total"),
            sessions_ceased: registry.counter("kcc_reactor_sessions_ceased_total"),
            frames_decoded: registry.counter("kcc_reactor_frames_decoded_total"),
            write_queue_overflows: registry.counter("kcc_reactor_write_queue_overflows_total"),
            hold_timer_expiries: registry.counter("kcc_reactor_hold_timer_expiries_total"),
            poll_wakeups: registry
                .counter_with("kcc_reactor_poll_wakeups_total", &[("shard", &shard.to_string())]),
            write_queue_peak: registry.gauge("kcc_reactor_write_queue_peak_bytes"),
        }
    }
}

/// A stream handed from the accepting shard to its owning shard.
struct Injector {
    queue: Mutex<Vec<TcpStream>>,
    waker: Waker,
}

/// A running reactor: shard threads plus the shared observability
/// handles. Obtained from [`spawn`]; stopped via the [`ShutdownFlag`]
/// given to it, then [`Reactor::join`]ed.
pub struct Reactor {
    shards: Vec<JoinHandle<()>>,
    gauges: Arc<LiveGauges>,
    listen_addrs: Arc<Mutex<Vec<SocketAddr>>>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor").field("workers", &self.shards.len()).finish()
    }
}

impl Reactor {
    /// The live counters.
    pub fn gauges(&self) -> Arc<LiveGauges> {
        Arc::clone(&self.gauges)
    }

    /// Every address currently accepting connections (primary bind plus
    /// committed extras).
    pub fn listen_addrs(&self) -> Vec<SocketAddr> {
        self.listen_addrs.lock().unwrap().clone()
    }

    /// Waits for every shard to drain and exit. Trigger the shutdown
    /// flag first (or have every peer disconnect — the listener still
    /// needs the flag to close).
    pub fn join(self) {
        for h in self.shards {
            let _ = h.join();
        }
    }
}

/// Starts the reactor over an already-bound listener. Every accepted
/// connection becomes a passive FSM session; [`SessionEvent`]s flow to
/// `events` in per-session order.
pub fn spawn(
    listener: TcpListener,
    fsm_cfg: FsmConfig,
    clock: Arc<dyn Clock>,
    events: Sender<SessionEvent>,
    shutdown: ShutdownFlag,
    store: Arc<ConfigStore>,
    options: ReactorConfig,
) -> std::io::Result<Reactor> {
    let fsm_cfg = fsm_cfg.passive();
    let primary_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    // Best-effort: a multi-thousand-session connect burst overflows the
    // default backlog of 128 long before shard 0 gets scheduled.
    let _ = crate::sys::raise_listen_backlog(&listener, 8192);

    let workers = options.workers.max(1);
    let mut pollers = Vec::with_capacity(workers);
    for _ in 0..workers {
        pollers.push(new_poller(options.poller)?);
    }
    let injectors: Arc<Vec<Injector>> = Arc::new(
        pollers
            .iter()
            .map(|p| Injector { queue: Mutex::new(Vec::new()), waker: p.waker() })
            .collect(),
    );
    let gauges = Arc::new(LiveGauges::default());
    let listen_addrs = Arc::new(Mutex::new(vec![primary_addr]));

    let mut shards = Vec::with_capacity(workers);
    for (id, poller) in pollers.into_iter().enumerate() {
        let mut shard = Shard {
            id,
            poller,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_epoch: 0,
            wheel: TimerWheel::new(clock.now_ms()),
            listeners: Vec::new(),
            next_listener_token: LISTEN_BASE,
            injectors: Arc::clone(&injectors),
            events: events.clone(),
            shutdown: shutdown.clone(),
            clock: Arc::clone(&clock),
            fsm_cfg: fsm_cfg.clone(),
            store: Arc::clone(&store),
            last_gen: store.generation(),
            gauges: Arc::clone(&gauges),
            metrics: ShardMetrics::new(store.metrics(), id),
            listen_addrs: Arc::clone(&listen_addrs),
            rr_next: 0,
            stopping: false,
            options: options.clone(),
            due: Vec::new(),
            ready: Vec::new(),
        };
        if id == 0 {
            shard.add_listener(primary_addr, listener.try_clone()?)?;
            // Committed extra listeners from the initial config.
            shard.apply_listeners();
        }
        shards.push(
            std::thread::Builder::new()
                .name(format!("kcc-reactor-{id}"))
                .spawn(move || shard.run())?,
        );
    }
    drop(listener);
    Ok(Reactor { shards, gauges, listen_addrs })
}

/// One nonblocking session: socket + FSM + resumable framing + armed
/// deadline.
struct Session {
    token: u64,
    stream: TcpStream,
    remote: SocketAddr,
    fsm: Fsm,
    frames: FrameBuffer,
    writes: WriteQueue,
    write_cfg: SessionConfig,
    info: Option<EstablishedInfo>,
    /// The deadline the FSM currently wants (min over its timers).
    armed_deadline: Option<u64>,
    /// The earliest entry physically in the wheel for this session —
    /// re-arming later than this rides the existing entry (lazy
    /// cancellation) instead of inserting per message under flood.
    wheel_deadline: Option<u64>,
    /// Write interest currently registered with the poller.
    want_write: bool,
    /// Set when shutdown began; drives the drain grace window.
    stopping_since: Option<u64>,
    last_progress: u64,
}

struct Shard {
    id: usize,
    poller: Box<dyn Poller>,
    slots: Vec<Option<Session>>,
    free: Vec<usize>,
    live: usize,
    next_epoch: u64,
    wheel: TimerWheel,
    /// Accept sockets (shard 0 only): requested address, token, socket.
    listeners: Vec<(SocketAddr, u64, TcpListener)>,
    next_listener_token: u64,
    injectors: Arc<Vec<Injector>>,
    events: Sender<SessionEvent>,
    shutdown: ShutdownFlag,
    clock: Arc<dyn Clock>,
    fsm_cfg: FsmConfig,
    store: Arc<ConfigStore>,
    last_gen: u64,
    gauges: Arc<LiveGauges>,
    metrics: ShardMetrics,
    listen_addrs: Arc<Mutex<Vec<SocketAddr>>>,
    /// Round-robin cursor for dealing accepted streams (shard 0 only).
    rr_next: usize,
    stopping: bool,
    options: ReactorConfig,
    /// Scratch for due timers / readiness events, reused across loops.
    due: Vec<DueTimer>,
    ready: Vec<PollEvent>,
}

impl Shard {
    fn run(&mut self) {
        loop {
            let timeout = if self.stopping { STOP_POLL_MS } else { POLL_MS };
            self.metrics.poll_wakeups.inc();
            let mut ready = std::mem::take(&mut self.ready);
            if self.poller.wait(&mut ready, timeout).is_err() {
                // A failed wait would spin; treat it as fatal for the
                // shard and drain what we have.
                self.stopping = true;
            }
            let now = self.clock.now_ms();
            for ev in &ready {
                if ev.token == WAKE_TOKEN {
                    self.drain_injector();
                } else if ev.token >= LISTEN_BASE {
                    self.accept_burst(ev.token);
                } else {
                    self.session_io(ev.token, ev.readable, ev.writable, now);
                }
            }
            self.ready = ready;
            self.ready.clear();

            // Timers fire on every iteration — a flood that keeps the
            // poller permanently ready must not starve the keepalive
            // cadence or the hold timer.
            let now = self.clock.now_ms();
            let mut due = std::mem::take(&mut self.due);
            self.wheel.advance(now, &mut due);
            for d in due.drain(..) {
                self.timer_fired(d, now);
            }
            self.due = due;

            let gen = self.store.generation();
            if gen != self.last_gen {
                self.last_gen = gen;
                self.apply_config(now);
            }

            if self.shutdown.is_triggered() && !self.stopping {
                self.begin_stop(now);
            }
            if self.stopping {
                self.sweep_drain(now);
                if self.live == 0 {
                    break;
                }
            }
        }
        // Dropping the events sender (with every other shard's) closes
        // the ingest channel once the last shard drains.
    }

    // ---------------- accept / adopt ----------------

    fn add_listener(
        &mut self,
        requested: SocketAddr,
        listener: TcpListener,
    ) -> std::io::Result<()> {
        let token = self.next_listener_token;
        self.next_listener_token += 1;
        self.poller.register(listener.as_raw_fd(), token, true, false)?;
        self.listeners.push((requested, token, listener));
        self.publish_listen_addrs();
        Ok(())
    }

    fn publish_listen_addrs(&self) {
        let addrs: Vec<SocketAddr> =
            self.listeners.iter().filter_map(|(_, _, l)| l.local_addr().ok()).collect();
        *self.listen_addrs.lock().unwrap() = addrs;
    }

    fn accept_burst(&mut self, token: u64) {
        let Some(idx) = self.listeners.iter().position(|&(_, t, _)| t == token) else {
            return;
        };
        loop {
            match self.listeners[idx].2.accept() {
                Ok((stream, _)) => {
                    self.gauges.accepted.fetch_add(1, Ordering::Relaxed);
                    let target = self.rr_next % self.injectors.len();
                    self.rr_next = self.rr_next.wrapping_add(1);
                    if target == self.id {
                        self.adopt(stream);
                    } else {
                        let injector = &self.injectors[target];
                        injector.queue.lock().unwrap().push(stream);
                        injector.waker.wake();
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Transient accept failures (peer reset before
                    // accept, fd pressure) must not kill the daemon;
                    // level-triggered readiness retries on the next
                    // wait.
                    break;
                }
            }
        }
    }

    fn drain_injector(&mut self) {
        let streams: Vec<TcpStream> =
            self.injectors[self.id].queue.lock().unwrap().drain(..).collect();
        for stream in streams {
            self.adopt(stream);
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        if self.stopping {
            return; // accepted during shutdown: close immediately
        }
        let _ = stream.set_nodelay(true);
        let remote = match stream.peer_addr() {
            Ok(a) => a,
            Err(_) => {
                let _ = self
                    .events
                    .send(SessionEvent::Closed { info: None, reason: DownReason::TcpFailed });
                return;
            }
        };
        if stream.set_nonblocking(true).is_err() {
            let _ = self
                .events
                .send(SessionEvent::Closed { info: None, reason: DownReason::TcpFailed });
            return;
        }

        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        assert!(slot as u64 <= SLOT_MASK, "slot space exhausted");
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        let token = (epoch << SLOT_BITS) | slot as u64;

        let now = self.clock.now_ms();
        let mut fsm = Fsm::new(self.fsm_cfg.clone());
        let mut actions = fsm.handle(FsmEvent::Start, now);
        actions.extend(fsm.handle(FsmEvent::TcpConnected, now));

        if self.poller.register(stream.as_raw_fd(), token, true, false).is_err() {
            self.free.push(slot);
            let _ = self
                .events
                .send(SessionEvent::Closed { info: None, reason: DownReason::TcpFailed });
            return;
        }
        self.slots[slot] = Some(Session {
            token,
            stream,
            remote,
            fsm,
            frames: FrameBuffer::new(SessionConfig::default(), true),
            writes: WriteQueue::new(self.options.write_queue_cap),
            write_cfg: SessionConfig::default(),
            info: None,
            armed_deadline: None,
            wheel_deadline: None,
            want_write: false,
            stopping_since: None,
            last_progress: now,
        });
        self.live += 1;
        self.store.trace().log(TRACE_TARGET, TraceLevel::Debug, || {
            format!("shard {} adopted {} as token {:#x}", self.id, remote, token)
        });
        if !self.process_actions(slot, actions, now) {
            self.finish_io(slot, now);
        }
    }

    // ---------------- per-session I/O ----------------

    /// Resolves a token to its live slot (stale tokens — the slot was
    /// recycled — resolve to `None`).
    fn resolve(&self, token: u64) -> Option<usize> {
        let slot = (token & SLOT_MASK) as usize;
        match self.slots.get(slot) {
            Some(Some(s)) if s.token == token => Some(slot),
            _ => None,
        }
    }

    fn session_io(&mut self, token: u64, readable: bool, writable: bool, now: u64) {
        let Some(slot) = self.resolve(token) else { return };
        if writable && self.flush_writes(slot) {
            return;
        }
        if readable && self.read_burst(slot, now) {
            return;
        }
        self.finish_io(slot, now);
    }

    /// Reads up to the budget, feeding decoded messages to the FSM.
    /// Returns true when the session was torn down.
    fn read_burst(&mut self, slot: usize, now: u64) -> bool {
        let mut budget = self.options.read_budget;
        let mut chunk = [0u8; 64 * 1024];
        loop {
            let take = budget.min(chunk.len());
            if take == 0 {
                return false; // budget spent; level-triggered readiness re-reports
            }
            enum ReadEnd {
                WouldBlock,
                Eof,
                Failed,
                DecodeError(kcc_bgp_wire::WireError),
            }
            let (messages, end) = {
                let sess = self.slots[slot].as_mut().expect("resolved slot");
                match sess.stream.read(&mut chunk[..take]) {
                    Ok(0) => (Vec::new(), Some(ReadEnd::Eof)),
                    Ok(n) => {
                        budget -= n;
                        sess.frames.extend(&chunk[..n]);
                        let mut messages = Vec::new();
                        let mut end = None;
                        loop {
                            match sess.frames.next_message() {
                                Ok(Some(m)) => messages.push(m),
                                Ok(None) => break,
                                Err(TransportError::Wire(w)) => {
                                    end = Some(ReadEnd::DecodeError(w));
                                    break;
                                }
                                Err(_) => {
                                    end = Some(ReadEnd::Failed);
                                    break;
                                }
                            }
                        }
                        (messages, end)
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        (Vec::new(), Some(ReadEnd::WouldBlock))
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => (Vec::new(), None),
                    Err(_) => (Vec::new(), Some(ReadEnd::Failed)),
                }
            };
            self.metrics.frames_decoded.add(messages.len() as u64);
            for m in messages {
                let actions = {
                    let sess = self.slots[slot].as_mut().expect("resolved slot");
                    sess.last_progress = now;
                    sess.fsm.handle(FsmEvent::Message(m), now)
                };
                if self.process_actions(slot, actions, now) {
                    return true;
                }
            }
            match end {
                None => {}
                Some(ReadEnd::WouldBlock) => return false,
                Some(ReadEnd::Eof) | Some(ReadEnd::Failed) => {
                    let actions = {
                        let sess = self.slots[slot].as_mut().expect("resolved slot");
                        sess.fsm.handle(FsmEvent::TcpFailed, now)
                    };
                    if !self.process_actions(slot, actions, now) {
                        // The FSM chose to survive transport loss (it
                        // does not, for passive sessions — belt and
                        // braces).
                        self.teardown(slot, DownReason::TcpFailed, false);
                    }
                    return true;
                }
                Some(ReadEnd::DecodeError(w)) => {
                    let actions = {
                        let sess = self.slots[slot].as_mut().expect("resolved slot");
                        sess.fsm.handle(FsmEvent::DecodeError(w), now)
                    };
                    if !self.process_actions(slot, actions, now) {
                        self.teardown(slot, DownReason::TcpFailed, true);
                    }
                    return true;
                }
            }
        }
    }

    /// Executes FSM actions for a session. Returns true when the session
    /// was torn down (the slot is then recycled — do not touch it).
    fn process_actions(&mut self, slot: usize, actions: Vec<Action>, now: u64) -> bool {
        for action in actions {
            match action {
                Action::Send(m) => {
                    let (overflow, queued) = {
                        let sess = self.slots[slot].as_mut().expect("resolved slot");
                        let cfg = sess.write_cfg;
                        let overflow = sess.writes.push_message(&m, &cfg).is_err();
                        (overflow, sess.writes.queued())
                    };
                    self.metrics.write_queue_peak.set_max(queued as i64);
                    if overflow {
                        self.metrics.write_queue_overflows.inc();
                        self.store.trace().log(TRACE_TARGET, TraceLevel::Error, || {
                            format!("shard {}: write backlog overflow, ceasing session", self.id)
                        });
                        self.teardown(
                            slot,
                            DownReason::ProtocolError("write backlog overflow"),
                            true,
                        );
                        return true;
                    }
                }
                Action::Up(info) => {
                    if !self.store.running().peers.allows(info.peer_asn) {
                        // Policy refusal at the last pre-announcement
                        // moment: the daemon never reports Established
                        // for a disallowed peer.
                        let sess = self.slots[slot].as_mut().expect("resolved slot");
                        let cfg = sess.write_cfg;
                        let _ = sess.writes.push_message(
                            &Message::Notification(Notification::bad_peer_as()),
                            &cfg,
                        );
                        self.store.trace().log(TRACE_TARGET, TraceLevel::Info, || {
                            format!("refused disallowed peer AS{}", info.peer_asn.0)
                        });
                        self.teardown(slot, DownReason::ProtocolError("peer not allowed"), true);
                        return true;
                    }
                    let remote = {
                        let sess = self.slots[slot].as_mut().expect("resolved slot");
                        sess.write_cfg = info.config;
                        sess.info = Some(info.clone());
                        sess.remote
                    };
                    self.gauges.session_up();
                    self.metrics.sessions_established.inc();
                    self.store.trace().log(TRACE_TARGET, TraceLevel::Info, || {
                        format!("session up: AS{} via {}", info.peer_asn.0, remote)
                    });
                    let _ = self.events.send(SessionEvent::Established { info, remote });
                }
                Action::Deliver(packet) => {
                    let (info, remote) = {
                        let sess = self.slots[slot].as_ref().expect("resolved slot");
                        (sess.info.clone().expect("Deliver only after Up"), sess.remote)
                    };
                    let _ = self.events.send(SessionEvent::Update {
                        info,
                        remote,
                        packet: Box::new(packet),
                    });
                }
                Action::Down(reason) => {
                    self.teardown(slot, reason, true);
                    return true;
                }
                Action::StartConnect => unreachable!("passive sessions never dial"),
            }
        }
        let _ = now;
        false
    }

    /// Post-interaction bookkeeping for a still-live session: flush
    /// queued writes and re-arm the timer wheel.
    fn finish_io(&mut self, slot: usize, now: u64) {
        if self.flush_writes(slot) {
            return;
        }
        self.rearm_timer(slot, now);
    }

    /// Flushes the write backlog and keeps poller write interest in sync
    /// with whether anything remains. Returns true when the session was
    /// torn down.
    fn flush_writes(&mut self, slot: usize) -> bool {
        let Some(sess) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            return true;
        };
        let outcome = {
            let (writes, stream) = (&mut sess.writes, &mut sess.stream);
            writes.flush(stream)
        };
        match outcome {
            Ok(FlushOutcome::Flushed) => {
                if sess.want_write {
                    sess.want_write = false;
                    let (fd, token) = (sess.stream.as_raw_fd(), sess.token);
                    let _ = self.poller.modify(fd, token, true, false);
                }
                false
            }
            Ok(FlushOutcome::Pending) => {
                if !sess.want_write {
                    sess.want_write = true;
                    let (fd, token) = (sess.stream.as_raw_fd(), sess.token);
                    let _ = self.poller.modify(fd, token, true, true);
                }
                false
            }
            Err(_) => {
                self.teardown(slot, DownReason::TcpFailed, false);
                true
            }
        }
    }

    // ---------------- timers ----------------

    /// Re-arms the wheel with the FSM's current deadline, lazily: an
    /// existing earlier wheel entry is reused, so a flood re-extending
    /// the hold timer on every message does not grow the wheel.
    fn rearm_timer(&mut self, slot: usize, _now: u64) {
        let Some(sess) = self.slots.get_mut(slot).and_then(Option::as_mut) else { return };
        let armed = sess.fsm.next_deadline();
        sess.armed_deadline = armed;
        if let Some(d) = armed {
            if sess.wheel_deadline.is_none_or(|w| d < w) {
                self.wheel.insert(d, sess.token);
                sess.wheel_deadline = Some(d);
            }
        }
    }

    fn timer_fired(&mut self, entry: DueTimer, now: u64) {
        let Some(slot) = self.resolve(entry.token) else { return };
        let fire = {
            let sess = self.slots[slot].as_mut().expect("resolved slot");
            if sess.wheel_deadline == Some(entry.deadline_ms) {
                sess.wheel_deadline = None;
            }
            sess.armed_deadline.is_some_and(|d| now >= d)
        };
        if fire {
            let actions = {
                let sess = self.slots[slot].as_mut().expect("resolved slot");
                sess.fsm.handle(FsmEvent::Timer, now)
            };
            if self.process_actions(slot, actions, now) {
                return;
            }
        }
        self.finish_io(slot, now);
    }

    // ---------------- config / shutdown ----------------

    /// Applies a newly committed running config: Cease sessions whose
    /// peer the policy no longer allows (no other session is touched),
    /// and reconcile extra listeners on shard 0.
    fn apply_config(&mut self, now: u64) {
        let cfg = self.store.running();
        self.store.trace().log(TRACE_TARGET, TraceLevel::Debug, || {
            format!("shard {} applying config generation {}", self.id, self.last_gen)
        });
        for slot in 0..self.slots.len() {
            let disallowed = match &self.slots[slot] {
                Some(s) => s.info.as_ref().is_some_and(|i| !cfg.peers.allows(i.peer_asn)),
                None => false,
            };
            if disallowed {
                self.stop_session(slot, now);
            }
        }
        if self.id == 0 && !self.stopping {
            self.apply_listeners();
        }
    }

    /// Reconciles the extra-listener set with the running config
    /// (shard 0; the primary bind at index 0 is never removed).
    fn apply_listeners(&mut self) {
        let want = self.store.running().listen.clone();
        // Close extras (index ≥ 1) no longer configured.
        let mut i = 1;
        while i < self.listeners.len() {
            if want.contains(&self.listeners[i].0) {
                i += 1;
            } else {
                let (_, _, listener) = self.listeners.remove(i);
                let _ = self.poller.deregister(listener.as_raw_fd());
            }
        }
        // Bind newly configured extras.
        for addr in want {
            if self.listeners.iter().any(|&(req, _, _)| req == addr) {
                continue;
            }
            match TcpListener::bind(addr) {
                Ok(listener) => {
                    if listener.set_nonblocking(true).is_ok() {
                        let _ = crate::sys::raise_listen_backlog(&listener, 8192);
                        let _ = self.add_listener(addr, listener);
                    }
                }
                Err(e) => {
                    self.store.trace().log(TRACE_TARGET, TraceLevel::Error, || {
                        format!("cannot bind extra listener {addr}: {e}")
                    });
                }
            }
        }
        self.publish_listen_addrs();
    }

    /// Administratively stops one session (config removal, drain cap).
    fn stop_session(&mut self, slot: usize, now: u64) {
        let actions = {
            let Some(sess) = self.slots.get_mut(slot).and_then(Option::as_mut) else { return };
            sess.fsm.handle(FsmEvent::Stop, now)
        };
        if actions.is_empty() {
            self.teardown(slot, DownReason::AdminStop, true);
        } else {
            self.process_actions(slot, actions, now);
        }
    }

    fn begin_stop(&mut self, now: u64) {
        self.stopping = true;
        for (_, _, listener) in self.listeners.drain(..) {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        if self.id == 0 {
            self.listen_addrs.lock().unwrap().clear();
        }
        for sess in self.slots.iter_mut().flatten() {
            sess.stopping_since = Some(now);
            sess.last_progress = now;
        }
        self.store.trace().log(TRACE_TARGET, TraceLevel::Info, || {
            format!("shard {} draining {} sessions", self.id, self.live)
        });
    }

    /// While stopping, Cease each session once its quiet window (or the
    /// hard cap) elapses — received updates keep draining until then.
    fn sweep_drain(&mut self, now: u64) {
        for slot in 0..self.slots.len() {
            let expired = match &self.slots[slot] {
                Some(s) => match s.stopping_since {
                    Some(since) => {
                        now.saturating_sub(s.last_progress) >= STOP_GRACE_MS
                            || now.saturating_sub(since) >= STOP_HARD_CAP_MS
                    }
                    None => {
                        // Adopted before the flag flipped but after
                        // begin_stop's sweep: start its window now.
                        if let Some(s) = self.slots[slot].as_mut() {
                            s.stopping_since = Some(now);
                            s.last_progress = now;
                        }
                        false
                    }
                },
                None => false,
            };
            if expired {
                self.stop_session(slot, now);
            }
        }
    }

    fn teardown(&mut self, slot: usize, reason: DownReason, try_flush: bool) {
        let Some(mut sess) = self.slots.get_mut(slot).and_then(Option::take) else { return };
        self.free.push(slot);
        self.live -= 1;
        if try_flush {
            // Best effort: get the queued NOTIFICATION out if the socket
            // will take it.
            let (writes, stream) = (&mut sess.writes, &mut sess.stream);
            let _ = writes.flush(stream);
        }
        let _ = self.poller.deregister(sess.stream.as_raw_fd());
        if sess.info.is_some() {
            self.gauges.session_down();
            self.metrics.sessions_ceased.inc();
        }
        if matches!(reason, DownReason::HoldTimerExpired) {
            self.metrics.hold_timer_expiries.inc();
        }
        self.store.trace().log(TRACE_TARGET, TraceLevel::Debug, || {
            format!("shard {}: session {} down: {:?}", self.id, sess.remote, reason)
        });
        let _ = self.events.send(SessionEvent::Closed { info: sess.info, reason });
        // sess.stream drops here, closing the socket.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::WallClock;
    use crate::config::DaemonConfig;
    use crate::transport::{write_message, MessageReader};
    use kcc_bgp_types::Asn;
    use kcc_bgp_wire::{Notification, OpenMessage};
    use std::sync::mpsc;
    use std::time::Duration;

    fn collector_cfg() -> FsmConfig {
        FsmConfig::new(Asn(3333), "198.51.100.1".parse().unwrap()).with_hold_time(30)
    }

    fn start_reactor(
        options: ReactorConfig,
    ) -> (Reactor, SocketAddr, mpsc::Receiver<SessionEvent>, ShutdownFlag) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = mpsc::channel();
        let shutdown = ShutdownFlag::new();
        let store = Arc::new(ConfigStore::new(DaemonConfig::default()));
        let reactor = spawn(
            listener,
            collector_cfg(),
            Arc::new(WallClock::new()),
            tx,
            shutdown.clone(),
            store,
            options,
        )
        .unwrap();
        (reactor, addr, rx, shutdown)
    }

    /// Full handshake + one UPDATE + Cease against the live reactor,
    /// with the test playing the peer over a real loopback socket —
    /// the coverage the thread-per-session runner's loopback test used
    /// to provide.
    #[test]
    fn inbound_session_end_to_end_over_loopback() {
        let (reactor, addr, rx, shutdown) = start_reactor(ReactorConfig::default());

        let peer = TcpStream::connect(addr).unwrap();
        let cfg = SessionConfig::default();
        let open = OpenMessage::standard(Asn(20_205), "192.0.2.9".parse().unwrap(), 90);
        write_message(&peer, &Message::Open(open), &cfg).unwrap();
        let mut reader = MessageReader::new(peer.try_clone().unwrap(), cfg, true);
        let got = reader.read_message().unwrap().unwrap();
        assert!(matches!(got, Message::Open(_)));
        write_message(&peer, &Message::Keepalive, &cfg).unwrap();
        assert_eq!(reader.read_message().unwrap().unwrap(), Message::Keepalive);
        let ev = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let SessionEvent::Established { info, .. } = ev else {
            panic!("expected Established, got {ev:?}");
        };
        assert_eq!(info.peer_asn, Asn(20_205));
        assert_eq!(info.hold_time, 30, "min(collector 30, peer 90)");
        assert_eq!(reactor.gauges().established.load(Ordering::Relaxed), 1);

        let packet = UpdatePacket::withdraw("10.0.0.0/8".parse().unwrap());
        write_message(&peer, &Message::Update(packet.clone()), &cfg).unwrap();
        let ev = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let SessionEvent::Update { packet: got, .. } = ev else {
            panic!("expected Update, got {ev:?}");
        };
        assert_eq!(*got, packet);

        write_message(&peer, &Message::Notification(Notification::cease_admin_shutdown()), &cfg)
            .unwrap();
        let ev = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let SessionEvent::Closed { reason, info } = ev else {
            panic!("expected Closed, got {ev:?}");
        };
        assert!(matches!(reason, DownReason::PeerNotification(_)));
        assert!(info.is_some());

        shutdown.trigger();
        reactor.join();
    }

    /// A peer that connects and vanishes produces a Closed event, not a
    /// leaked session.
    #[test]
    fn abrupt_disconnect_reports_closed() {
        let (reactor, addr, rx, shutdown) = start_reactor(ReactorConfig::default());
        let peer = TcpStream::connect(addr).unwrap();
        drop(peer);
        let ev = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(ev, SessionEvent::Closed { info: None, .. }));
        shutdown.trigger();
        reactor.join();
    }

    /// Many sessions multiplex over one worker — the defining reactor
    /// property (workers ≪ sessions) at a unit-test scale, on the
    /// portable poll backend so the fallback earns its keep.
    #[test]
    fn sixteen_sessions_one_worker_poll_backend() {
        let options =
            ReactorConfig { workers: 1, poller: PollerKind::Poll, ..ReactorConfig::default() };
        let (reactor, addr, rx, shutdown) = start_reactor(options);
        let cfg = SessionConfig::default();
        let mut peers = Vec::new();
        for i in 0..16u32 {
            let peer = TcpStream::connect(addr).unwrap();
            let open = OpenMessage::standard(
                Asn(65_000 + i),
                std::net::Ipv4Addr::new(192, 0, 2, i as u8 + 1),
                90,
            );
            write_message(&peer, &Message::Open(open), &cfg).unwrap();
            write_message(&peer, &Message::Keepalive, &cfg).unwrap();
            peers.push(peer);
        }
        let mut established = 0;
        while established < 16 {
            match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                SessionEvent::Established { .. } => established += 1,
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(reactor.gauges().peak_established.load(Ordering::Relaxed), 16);
        for peer in &peers {
            write_message(peer, &Message::Notification(Notification::cease_admin_shutdown()), &cfg)
                .unwrap();
        }
        let mut closed = 0;
        while closed < 16 {
            if let SessionEvent::Closed { .. } = rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                closed += 1;
            }
        }
        let gauges = reactor.gauges();
        shutdown.trigger();
        reactor.join();
        assert_eq!(gauges.established.load(Ordering::Relaxed), 0);
    }
}
