//! # kcc-peer — live BGP sessions and the collector daemon
//!
//! The paper's entire measurement surface is route collectors holding
//! long-lived BGP sessions with hundreds of peers. This crate is the live
//! side of that infrastructure — everything between a TCP socket and the
//! streaming analysis pipeline:
//!
//! * [`fsm`]: the RFC 4271 session state machine (Idle → Connect/Active →
//!   OpenSent → OpenConfirm → Established) as a **pure, deterministic**
//!   transition function: events in, actions out, timers as explicit
//!   deadlines against a caller-supplied clock — no sleeps, no sockets,
//!   unit-testable to the edge transitions,
//! * [`clock`]: the injectable millisecond clock the FSM's timers are
//!   measured against ([`WallClock`] in production, [`ManualClock`] in
//!   tests),
//! * [`transport`]: BGP message framing over `std::io` byte streams —
//!   length-prefixed reads, capability-aware decode configuration,
//! * [`runner`]: drives one inbound session over a real `TcpStream` with
//!   a reader thread and the FSM loop,
//! * [`active`]: the outbound speaker (used by the `bgp-sim` loopback
//!   bridge and benchmarks): dial, handshake through the same FSM, then
//!   stream UPDATEs,
//! * [`rotate`]: periodic MRT dump rotation, so live capture round-trips
//!   through the same offline files a RouteViews/RIS download would,
//! * [`collector`]: the multi-peer collector daemon — accept loop,
//!   per-session threads, arrival stamping, MRT rotation, and a
//!   [`kcc_collector::LiveSource`] feeding `kcc_core`'s pipeline.
//!
//! Everything is `std`-only: threads and channels, no async runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod clock;
pub mod collector;
pub mod fsm;
pub mod rotate;
pub mod runner;
pub mod transport;

pub use active::{ActiveSpeaker, PeerError};
pub use clock::{Clock, ManualClock, WallClock};
pub use collector::{
    offline_reference, Collector, CollectorConfig, CollectorStats, SessionIdentity, StampMode,
};
pub use fsm::{Action, DownReason, EstablishedInfo, Fsm, FsmConfig, FsmEvent, State};
pub use rotate::{MrtRotator, RotateConfig};
pub use runner::{serve_inbound, SessionEvent};
pub use transport::{read_message, write_message, write_update, MessageReader};
