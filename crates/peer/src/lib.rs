//! # kcc-peer — live BGP sessions and the collector daemon
//!
//! The paper's entire measurement surface is route collectors holding
//! long-lived BGP sessions with hundreds of peers. This crate is the live
//! side of that infrastructure — everything between a TCP socket and the
//! streaming analysis pipeline:
//!
//! * [`fsm`]: the RFC 4271 session state machine (Idle → Connect/Active →
//!   OpenSent → OpenConfirm → Established) as a **pure, deterministic**
//!   transition function: events in, actions out, timers as explicit
//!   deadlines against a caller-supplied clock — no sleeps, no sockets,
//!   unit-testable to the edge transitions,
//! * [`clock`]: the injectable millisecond clock the FSM's timers are
//!   measured against ([`WallClock`] in production, [`ManualClock`] in
//!   tests),
//! * [`transport`]: BGP message framing over `std::io` byte streams —
//!   length-prefixed reads, capability-aware decode configuration,
//! * [`sys`]: raw readiness syscalls (epoll on Linux, `poll(2)`
//!   portable) behind one `Poller` trait — the only module allowed to
//!   use `unsafe`, and only for straight FFI,
//! * [`reactor`]: the event-driven session engine — thousands of
//!   nonblocking sessions (resumable framing, capped write backlogs, a
//!   timer wheel driven by the FSM's deadlines) multiplexed over a
//!   bounded pool of shard threads,
//! * [`config`]: the running/candidate [`ConfigStore`] with
//!   commit/discard semantics — peers, listeners, stamping, rotation and
//!   trace levels hot-reload into a live daemon,
//! * [`trace`]: re-export of [`kcc_obs::trace`] — the dynamic
//!   per-target trace filter (runtime-adjustable verbosity with a
//!   lock-free off fast path) now lives in the observability crate so
//!   every layer can emit filtered diagnostics,
//! * [`control`]: the line-protocol control socket driving the config
//!   store from outside the process,
//! * [`active`]: the outbound speaker (used by the `bgp-sim` loopback
//!   bridge and benchmarks): dial, handshake through the same FSM, then
//!   stream UPDATEs,
//! * [`flood`]: the nonblocking many-session load rig — drives
//!   thousands of concurrent inbound sessions from a single thread, for
//!   soaks and scaling benchmarks,
//! * [`rotate`]: periodic MRT dump rotation, so live capture round-trips
//!   through the same offline files a RouteViews/RIS download would,
//! * [`collector`]: the multi-peer collector daemon — reactor-backed
//!   accept loop, session registry, arrival stamping, MRT rotation, and
//!   a [`kcc_collector::LiveSource`] feeding `kcc_core`'s pipeline.
//!
//! Everything is `std`-only: no async runtime, no external event
//! library — the reactor sits directly on `epoll`/`poll`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod clock;
pub mod collector;
pub mod config;
pub mod control;
pub mod flood;
pub mod fsm;
pub mod reactor;
pub mod rotate;
pub mod sys;
pub mod transport;

/// Back-compat re-export: the trace filter moved to [`kcc_obs`].
pub use kcc_obs::trace;

pub use active::{ActiveSpeaker, PeerError};
pub use clock::{Clock, ManualClock, WallClock};
pub use collector::{
    offline_reference, Collector, CollectorConfig, CollectorStats, SessionIdentity, StampMode,
};
pub use config::{ConfigStore, DaemonConfig, PeerPolicy};
pub use control::ControlServer;
pub use flood::{FloodOptions, FloodPlan, FloodReport, FloodRig};
pub use fsm::{Action, DownReason, EstablishedInfo, Fsm, FsmConfig, FsmEvent, State};
pub use reactor::{LiveGauges, ReactorConfig, SessionEvent};
pub use rotate::{MrtRotator, RotateConfig};
pub use sys::PollerKind;
pub use trace::{TraceConfig, TraceFilter, TraceLevel};
pub use transport::{read_message, write_message, write_update, MessageReader};
