//! The multi-peer live collector daemon.
//!
//! A [`Collector`] is the in-process form of `kccd`: it listens on a TCP
//! socket, runs one RFC 4271 session per inbound connection on the
//! event-driven [`crate::reactor`] (thousands of sessions over a bounded
//! worker pool — no thread per session), stamps arriving UPDATEs,
//! optionally tees them into rotating MRT dumps ([`crate::rotate`]), and
//! feeds everything to a [`LiveSource`] so `kcc_core`'s pipeline — and
//! with it every existing analysis sink — runs over live traffic
//! unchanged.
//!
//! The daemon is hot-reloadable: [`Collector::config_store`] exposes the
//! running/candidate [`ConfigStore`] (peers, listeners, stamping,
//! rotation, trace levels), and a commit propagates to the reactor
//! shards and the ingest loop within one poll interval — no restart, no
//! disturbance to sessions the change does not name.
//!
//! ## Session identity
//!
//! Offline, a session is `(collector, peer ASN, peer IP)`. Live, the
//! transport source address is a poor identity: on a loopback deployment
//! every peer connects from `127.0.0.1` with an ephemeral port. The
//! daemon therefore defaults to keying sessions by the peer's **BGP
//! identifier** — the stable, configured identity exchanged in the OPEN —
//! and only uses the socket address when asked
//! ([`SessionIdentity::SourceAddr`]).
//!
//! ## Arrival stamping
//!
//! BGP messages carry no timestamps; the collector assigns them
//! ([`StampMode`]). `Arrival` uses the daemon's clock, like a real
//! collector. `Logical` gives the *n*-th update of each session the
//! deterministic time `n × spacing` — per-session TCP ordering makes this
//! reproducible run over run, which is what lets the end-to-end loopback
//! tests demand byte-identical results from the live and offline paths
//! ([`offline_reference`] computes what the daemon will record).

use std::collections::HashMap;
use std::io;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use kcc_bgp_types::Asn;
use kcc_collector::{LiveSource, PeerMeta, SessionKey, ShutdownFlag, SourceItem, UpdateArchive};

use crate::clock::{Clock, WallClock};
use crate::config::{ConfigStore, DaemonConfig};
use crate::fsm::FsmConfig;
use crate::reactor::{self, LiveGauges, ReactorConfig, SessionEvent};
use crate::rotate::MrtRotator;
use crate::sys::PollerKind;
use crate::trace::TraceLevel;

/// How arriving updates are timestamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StampMode {
    /// The daemon's clock at arrival (microseconds = `now_ms × 1000`),
    /// like a real collector.
    Arrival,
    /// The *n*-th update of each session gets `n × spacing_us` — fully
    /// deterministic under per-session TCP ordering; the mode the
    /// loopback round-trip tests use.
    Logical {
        /// Microseconds between consecutive per-session stamps.
        spacing_us: u64,
    },
}

impl StampMode {
    /// Logical stamping with the given per-session spacing.
    pub fn logical(spacing_us: u64) -> Self {
        StampMode::Logical { spacing_us }
    }
}

/// What identifies a live session in its [`SessionKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionIdentity {
    /// The peer's BGP identifier from its OPEN (default; stable across
    /// reconnects and loopback deployments).
    BgpId,
    /// The transport source address.
    SourceAddr,
}

/// Daemon configuration. The hot-reloadable subset (stamp, route
/// servers, MRT rotation) seeds the daemon's [`ConfigStore`]; the rest —
/// identity, epoch, reactor shape — is fixed at bind time.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Collector name used in session keys and MRT re-analysis.
    pub collector: String,
    /// Our AS number.
    pub local_asn: Asn,
    /// Our BGP identifier.
    pub bgp_id: Ipv4Addr,
    /// Proposed hold time (seconds).
    pub hold_time: u16,
    /// Epoch anchoring `time_us` (and MRT record seconds).
    pub epoch_seconds: u32,
    /// Timestamping of arriving updates.
    pub stamp: StampMode,
    /// Session identity rule.
    pub identity: SessionIdentity,
    /// Peers that are IXP route servers (metadata the wire cannot carry;
    /// mirrors `MrtSource::with_route_servers`).
    pub route_servers: Vec<(Asn, IpAddr)>,
    /// Rotating MRT dumps, if wanted.
    pub mrt: Option<crate::rotate::RotateConfig>,
    /// Event-loop shape: worker count, poller backend, buffer caps.
    pub reactor: ReactorConfig,
}

impl CollectorConfig {
    /// A conventional configuration.
    pub fn new(collector: &str, local_asn: Asn, bgp_id: Ipv4Addr) -> Self {
        CollectorConfig {
            collector: collector.to_owned(),
            local_asn,
            bgp_id,
            hold_time: 90,
            epoch_seconds: 0,
            stamp: StampMode::Arrival,
            identity: SessionIdentity::BgpId,
            route_servers: Vec::new(),
            mrt: None,
            reactor: ReactorConfig::default(),
        }
    }

    /// Sets the stamp mode.
    pub fn with_stamp(mut self, stamp: StampMode) -> Self {
        self.stamp = stamp;
        self
    }

    /// Declares route-server peers.
    pub fn with_route_servers<I: IntoIterator<Item = (Asn, IpAddr)>>(mut self, peers: I) -> Self {
        self.route_servers = peers.into_iter().collect();
        self
    }

    /// Enables rotating MRT dumps.
    pub fn with_mrt(mut self, rotate: crate::rotate::RotateConfig) -> Self {
        self.mrt = Some(rotate);
        self
    }

    /// Sets the proposed hold time (seconds).
    pub fn with_hold_time(mut self, seconds: u16) -> Self {
        self.hold_time = seconds;
        self
    }

    /// Sets the reactor worker count (shard threads; workers ≪ sessions).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.reactor.workers = workers;
        self
    }

    /// Selects the readiness backend.
    pub fn with_poller(mut self, poller: PollerKind) -> Self {
        self.reactor.poller = poller;
        self
    }

    /// The hot-reloadable subset, as the initial running config.
    fn daemon_config(&self) -> DaemonConfig {
        DaemonConfig {
            stamp: self.stamp,
            route_servers: self.route_servers.clone(),
            mrt: self.mrt.clone(),
            ..DaemonConfig::default()
        }
    }
}

/// What a collector run processed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Sessions that completed the handshake.
    pub established: u64,
    /// High-water mark of *concurrently* Established sessions.
    pub peak_established: u64,
    /// Distinct session keys seen.
    pub sessions: u64,
    /// Per-prefix updates ingested (UPDATE packets are exploded).
    pub updates: u64,
    /// Sessions that ended.
    pub closed: u64,
    /// MRT records written across all dump files.
    pub mrt_records: u64,
    /// Completed MRT dump files.
    pub mrt_files: Vec<std::path::PathBuf>,
}

/// A running collector daemon. Obtain the [`LiveSource`] with
/// [`Collector::take_source`], run the pipeline over it, and stop with
/// [`Collector::shutdown`] + [`Collector::join`].
pub struct Collector {
    local_addr: SocketAddr,
    shutdown: ShutdownFlag,
    source: Option<LiveSource>,
    reactor: Option<reactor::Reactor>,
    ingest_handle: Option<JoinHandle<CollectorStats>>,
    store: Arc<ConfigStore>,
    gauges: Arc<LiveGauges>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector").field("local_addr", &self.local_addr).finish()
    }
}

impl Collector {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting peers,
    /// with the real wall clock.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: CollectorConfig) -> io::Result<Self> {
        Self::bind_with_clock(addr, cfg, Arc::new(WallClock::new()))
    }

    /// [`Collector::bind`] with an injected clock (tests).
    pub fn bind_with_clock<A: ToSocketAddrs>(
        addr: A,
        cfg: CollectorConfig,
        clock: Arc<dyn Clock>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;

        // Fail at bind time if the configured MRT directory is unusable,
        // not after the daemon is already accepting peers.
        let rotator = match &cfg.mrt {
            Some(rc) => match MrtRotator::new(rc.clone(), cfg.epoch_seconds) {
                Ok(r) => Some(r),
                Err(e) => return Err(io::Error::other(format!("MRT rotator: {e}"))),
            },
            None => None,
        };

        let store = Arc::new(ConfigStore::new(cfg.daemon_config()));
        let shutdown = ShutdownFlag::new();
        let (event_tx, event_rx) = mpsc::channel::<SessionEvent>();
        let (live_tx, live_source) = LiveSource::channel();

        let fsm_cfg = FsmConfig::new(cfg.local_asn, cfg.bgp_id).with_hold_time(cfg.hold_time);
        let reactor = reactor::spawn(
            listener,
            fsm_cfg,
            Arc::clone(&clock),
            event_tx,
            shutdown.clone(),
            Arc::clone(&store),
            cfg.reactor.clone(),
        )?;
        let gauges = reactor.gauges();

        let ingest_handle = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || ingest_loop(cfg, clock, event_rx, live_tx, rotator, store))
        };

        Ok(Collector {
            local_addr,
            shutdown,
            source: Some(live_source),
            reactor: Some(reactor),
            ingest_handle: Some(ingest_handle),
            store,
            gauges,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Every address currently accepting connections — the primary bind
    /// plus any committed extra listeners.
    pub fn listen_addrs(&self) -> Vec<SocketAddr> {
        match &self.reactor {
            Some(r) => r.listen_addrs(),
            None => Vec::new(),
        }
    }

    /// The live update source. Panics if taken twice.
    pub fn take_source(&mut self) -> LiveSource {
        self.source.take().expect("LiveSource already taken")
    }

    /// The running/candidate configuration store — edit, commit, and the
    /// daemon picks the change up within one poll interval.
    pub fn config_store(&self) -> Arc<ConfigStore> {
        Arc::clone(&self.store)
    }

    /// Live counters (current/peak Established, accepted) readable while
    /// the daemon runs.
    pub fn gauges(&self) -> Arc<LiveGauges> {
        Arc::clone(&self.gauges)
    }

    /// The daemon's metrics registry (shared with the reactor shards and
    /// the ingest thread); render with [`kcc_obs::Registry::render`].
    pub fn metrics(&self) -> Arc<kcc_obs::Registry> {
        Arc::clone(self.store.metrics())
    }

    /// Requests shutdown: stop accepting, Cease every session, close the
    /// feed once in-flight updates are drained.
    pub fn shutdown(&self) {
        self.shutdown.trigger();
    }

    /// A clonable handle other threads (a duration timer, a signal
    /// handler) can use to request the same shutdown. Distinct from the
    /// [`LiveSource`]'s own flag: this one drains sessions gracefully
    /// and closes the feed, so a pipeline blocked on the source finishes
    /// with everything ingested.
    pub fn shutdown_handle(&self) -> ShutdownFlag {
        self.shutdown.clone()
    }

    /// Waits for every thread to finish and returns the run's stats.
    /// Call [`Collector::shutdown`] first (or have every peer disconnect
    /// — the accept loop still needs the flag to stop).
    pub fn join(mut self) -> CollectorStats {
        if let Some(r) = self.reactor.take() {
            r.join();
        }
        let mut stats = CollectorStats::default();
        if let Some(h) = self.ingest_handle.take() {
            if let Ok(s) = h.join() {
                stats = s;
            }
        }
        stats.accepted = self.gauges.accepted.load(Ordering::Relaxed);
        stats.peak_established = self.gauges.peak_established.load(Ordering::Relaxed);
        stats
    }
}

struct LiveSession {
    meta: Arc<PeerMeta>,
    next_index: u64,
}

/// How often the ingest loop re-checks the config generation while no
/// events arrive.
const INGEST_POLL: Duration = Duration::from_millis(100);

/// Converts session events into stamped `SourceItem`s (and MRT records)
/// until every reactor shard is gone, re-reading the running config
/// (stamp mode, route servers, MRT rotation) whenever its generation
/// moves.
fn ingest_loop(
    cfg: CollectorConfig,
    clock: Arc<dyn Clock>,
    events: mpsc::Receiver<SessionEvent>,
    live: Sender<SourceItem>,
    mut rotator: Option<MrtRotator>,
    store: Arc<ConfigStore>,
) -> CollectorStats {
    let mut stats = CollectorStats::default();
    let updates_ingested = store.metrics().counter("kcc_ingest_updates_total");
    // Keyed by the Copy pair (ASN, IP) — the collector name is constant
    // for this daemon, and the full SessionKey would cost a String
    // allocation per UPDATE on this single-threaded hot path.
    let mut sessions: HashMap<(Asn, IpAddr), LiveSession> = HashMap::new();
    let mut running = store.running();
    let mut last_gen = store.generation();
    // MRT files closed out by hot-swaps, folded into the final stats.
    let mut swapped_records = 0u64;
    let mut swapped_files: Vec<std::path::PathBuf> = Vec::new();

    loop {
        let event = match events.recv_timeout(INGEST_POLL) {
            Ok(event) => Some(event),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };

        let gen = store.generation();
        if gen != last_gen {
            last_gen = gen;
            let new = store.running();
            if new.mrt != running.mrt {
                // Hot-swap rotation: finish the old dump files cleanly
                // so a concurrent reader only ever sees complete files.
                if let Some(rot) = rotator.take() {
                    swapped_records += rot.total_records();
                    if let Ok(files) = rot.finish() {
                        swapped_files.extend(files);
                    }
                }
                rotator = new.mrt.as_ref().and_then(|rc| {
                    match MrtRotator::new(rc.clone(), cfg.epoch_seconds) {
                        Ok(r) => Some(r),
                        Err(e) => {
                            store.trace().log("ingest", TraceLevel::Error, || {
                                format!("MRT rotator swap failed: {e}")
                            });
                            None
                        }
                    }
                });
            }
            store.trace().log("ingest", TraceLevel::Debug, || {
                format!("ingest applying config generation {gen}")
            });
            running = new;
        }

        let Some(event) = event else { continue };
        match event {
            SessionEvent::Established { info, remote } => {
                stats.established += 1;
                let peer_ip = match cfg.identity {
                    SessionIdentity::BgpId => IpAddr::V4(info.peer_bgp_id),
                    SessionIdentity::SourceAddr => remote.ip(),
                };
                if let std::collections::hash_map::Entry::Vacant(e) =
                    sessions.entry((info.peer_asn, peer_ip))
                {
                    let route_server = running
                        .route_servers
                        .iter()
                        .any(|&(asn, ip)| asn == info.peer_asn && ip == peer_ip);
                    let meta = Arc::new(PeerMeta {
                        key: SessionKey::new(&cfg.collector, info.peer_asn, peer_ip),
                        route_server,
                        second_granularity: false,
                    });
                    stats.sessions += 1;
                    let _ = live.send(SourceItem::Session(Arc::clone(&meta)));
                    e.insert(LiveSession { meta, next_index: 0 });
                }
            }
            SessionEvent::Update { info, remote, packet } => {
                let peer_ip = match cfg.identity {
                    SessionIdentity::BgpId => IpAddr::V4(info.peer_bgp_id),
                    SessionIdentity::SourceAddr => remote.ip(),
                };
                let Some(session) = sessions.get_mut(&(info.peer_asn, peer_ip)) else {
                    continue; // update before establish cannot happen
                };
                // A packet may explode into several per-prefix updates;
                // each gets its own stamp so `Logical` mode matches
                // `offline_reference` exactly (the n-th per-session
                // update is n × spacing, packet boundaries irrelevant).
                for mut update in packet.explode(0) {
                    update.time_us = match running.stamp {
                        StampMode::Arrival => clock.now_ms() * 1_000,
                        StampMode::Logical { spacing_us } => session.next_index * spacing_us,
                    };
                    if let Some(rot) = rotator.as_mut() {
                        let _ = rot.write(&session.meta, &update);
                    }
                    stats.updates += 1;
                    updates_ingested.inc();
                    session.next_index += 1;
                    let _ = live.send(SourceItem::Update(Arc::clone(&session.meta), update));
                }
            }
            SessionEvent::Closed { reason, .. } => {
                stats.closed += 1;
                let _ = reason; // reasons are per-session diagnostics
            }
        }
    }

    stats.mrt_records = swapped_records;
    stats.mrt_files = swapped_files;
    if let Some(rot) = rotator {
        stats.mrt_records += rot.total_records();
        if let Ok(files) = rot.finish() {
            stats.mrt_files.extend(files);
        }
    }
    stats
}

/// What the daemon will record for `input` under `cfg` — the offline
/// reference the end-to-end loopback tests compare against, computed by
/// applying the daemon's metadata and stamping rules to the same update
/// set. Only [`StampMode::Logical`] yields a meaningful reference
/// (`Arrival` depends on the wall clock).
pub fn offline_reference(input: &UpdateArchive, cfg: &CollectorConfig) -> UpdateArchive {
    let mut out = UpdateArchive::new(cfg.epoch_seconds);
    let mut renamed = 0usize;
    for (key, rec) in input.sessions() {
        renamed += 1;
        let key = SessionKey::new(&cfg.collector, key.peer_asn, key.peer_ip);
        let route_server =
            cfg.route_servers.iter().any(|&(asn, ip)| asn == key.peer_asn && ip == key.peer_ip);
        out.add_session(PeerMeta { key: key.clone(), route_server, second_granularity: false });
        for (i, u) in rec.updates.iter().enumerate() {
            let mut u = u.clone();
            u.time_us = match cfg.stamp {
                StampMode::Logical { spacing_us } => i as u64 * spacing_us,
                StampMode::Arrival => u.time_us,
            };
            out.record(&key, u);
        }
    }
    assert_eq!(
        out.session_count(),
        renamed,
        "distinct input sessions collided under one collector name — \
         (peer ASN, peer IP) must be unique across the input"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{PathAttributes, RouteUpdate};
    use kcc_bgp_wire::{Message, Notification, OpenMessage, SessionConfig, UpdatePacket};
    use kcc_collector::UpdateSource;

    /// A multi-prefix UPDATE packet explodes into per-prefix updates
    /// that each advance the logical stamp — the invariant that keeps
    /// live results byte-identical to `offline_reference`, which sees
    /// one update per record and never a packet boundary.
    #[test]
    fn logical_stamping_advances_per_exploded_prefix() {
        let cfg = CollectorConfig::new("rrc00", Asn(3333), "198.51.100.1".parse().unwrap())
            .with_stamp(StampMode::logical(1_000));
        let mut collector = Collector::bind("127.0.0.1:0", cfg).unwrap();
        let addr = collector.local_addr();
        let mut source = collector.take_source();

        // A hand-driven peer: handshake, then one UPDATE carrying two
        // prefixes, then one with a single withdrawal.
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let wire_cfg = SessionConfig::default();
        let open = OpenMessage::standard(Asn(65_001), "192.0.2.77".parse().unwrap(), 90);
        crate::transport::write_message(&stream, &Message::Open(open), &wire_cfg).unwrap();
        let mut reader =
            crate::transport::MessageReader::new(stream.try_clone().unwrap(), wire_cfg, true);
        assert!(matches!(reader.read_message().unwrap().unwrap(), Message::Open(_)));
        crate::transport::write_message(&stream, &Message::Keepalive, &wire_cfg).unwrap();
        assert_eq!(reader.read_message().unwrap().unwrap(), Message::Keepalive);

        let attrs = PathAttributes {
            as_path: "65001 3356".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        let mut two = UpdatePacket::announce("10.0.0.0/8".parse().unwrap(), attrs);
        two.nlri.push("10.64.0.0/10".parse().unwrap());
        crate::transport::write_message(&stream, &Message::Update(two), &wire_cfg).unwrap();
        let one = UpdatePacket::withdraw("10.0.0.0/8".parse().unwrap());
        crate::transport::write_message(&stream, &Message::Update(one), &wire_cfg).unwrap();
        crate::transport::write_message(
            &stream,
            &Message::Notification(Notification::cease_admin_shutdown()),
            &wire_cfg,
        )
        .unwrap();
        drop(reader);
        drop(stream);

        collector.shutdown();
        let stats = collector.join();
        assert_eq!(stats.updates, 3, "2 exploded announcements + 1 withdrawal");

        let mut stamps = Vec::new();
        while let Some(item) = source.next_item().unwrap() {
            if let SourceItem::Update(_, u) = item {
                stamps.push(u.time_us);
            }
        }
        assert_eq!(stamps, vec![0, 1_000, 2_000], "every exploded prefix advances the stamp");
    }

    #[test]
    fn offline_reference_applies_stamping_and_metadata() {
        let mut input = UpdateArchive::new(7);
        let key = SessionKey::new("whatever", Asn(20_205), "192.0.2.9".parse().unwrap());
        let attrs = PathAttributes {
            as_path: "20205 3356".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        input.record(&key, RouteUpdate::announce(123, "10.0.0.0/8".parse().unwrap(), attrs));
        input.record(&key, RouteUpdate::withdraw(456, "10.0.0.0/8".parse().unwrap()));

        let cfg = CollectorConfig::new("rrc99", Asn(3333), "198.51.100.1".parse().unwrap())
            .with_stamp(StampMode::logical(1_000))
            .with_route_servers([(Asn(20_205), "192.0.2.9".parse().unwrap())]);
        let reference = offline_reference(&input, &cfg);

        assert_eq!(reference.epoch_seconds, 0);
        let new_key = SessionKey::new("rrc99", Asn(20_205), "192.0.2.9".parse().unwrap());
        let rec = reference.session(&new_key).expect("renamed session");
        assert!(rec.meta.route_server, "route-server list applied");
        assert!(!rec.meta.second_granularity);
        let times: Vec<u64> = rec.updates.iter().map(|u| u.time_us).collect();
        assert_eq!(times, vec![0, 1_000], "logical stamping replaces input times");
    }
}
