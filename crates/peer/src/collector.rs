//! The multi-peer live collector daemon.
//!
//! A [`Collector`] is the in-process form of `kccd`: it listens on a TCP
//! socket, runs one RFC 4271 session per inbound connection (via
//! [`crate::runner`]), stamps arriving UPDATEs, optionally tees them into
//! rotating MRT dumps ([`crate::rotate`]), and feeds everything to a
//! [`LiveSource`] so `kcc_core`'s pipeline — and with it every existing
//! analysis sink — runs over live traffic unchanged.
//!
//! ## Session identity
//!
//! Offline, a session is `(collector, peer ASN, peer IP)`. Live, the
//! transport source address is a poor identity: on a loopback deployment
//! every peer connects from `127.0.0.1` with an ephemeral port. The
//! daemon therefore defaults to keying sessions by the peer's **BGP
//! identifier** — the stable, configured identity exchanged in the OPEN —
//! and only uses the socket address when asked
//! ([`SessionIdentity::SourceAddr`]).
//!
//! ## Arrival stamping
//!
//! BGP messages carry no timestamps; the collector assigns them
//! ([`StampMode`]). `Arrival` uses the daemon's clock, like a real
//! collector. `Logical` gives the *n*-th update of each session the
//! deterministic time `n × spacing` — per-session TCP ordering makes this
//! reproducible run over run, which is what lets the end-to-end loopback
//! tests demand byte-identical results from the live and offline paths
//! ([`offline_reference`] computes what the daemon will record).

use std::collections::HashMap;
use std::io;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use kcc_bgp_types::Asn;
use kcc_collector::{LiveSource, PeerMeta, SessionKey, ShutdownFlag, SourceItem, UpdateArchive};

use crate::clock::{Clock, WallClock};
use crate::fsm::FsmConfig;
use crate::rotate::{MrtRotator, RotateConfig};
use crate::runner::{serve_inbound, SessionEvent};

/// How arriving updates are timestamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StampMode {
    /// The daemon's clock at arrival (microseconds = `now_ms × 1000`),
    /// like a real collector.
    Arrival,
    /// The *n*-th update of each session gets `n × spacing_us` — fully
    /// deterministic under per-session TCP ordering; the mode the
    /// loopback round-trip tests use.
    Logical {
        /// Microseconds between consecutive per-session stamps.
        spacing_us: u64,
    },
}

impl StampMode {
    /// Logical stamping with the given per-session spacing.
    pub fn logical(spacing_us: u64) -> Self {
        StampMode::Logical { spacing_us }
    }
}

/// What identifies a live session in its [`SessionKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionIdentity {
    /// The peer's BGP identifier from its OPEN (default; stable across
    /// reconnects and loopback deployments).
    BgpId,
    /// The transport source address.
    SourceAddr,
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Collector name used in session keys and MRT re-analysis.
    pub collector: String,
    /// Our AS number.
    pub local_asn: Asn,
    /// Our BGP identifier.
    pub bgp_id: Ipv4Addr,
    /// Proposed hold time (seconds).
    pub hold_time: u16,
    /// Epoch anchoring `time_us` (and MRT record seconds).
    pub epoch_seconds: u32,
    /// Timestamping of arriving updates.
    pub stamp: StampMode,
    /// Session identity rule.
    pub identity: SessionIdentity,
    /// Peers that are IXP route servers (metadata the wire cannot carry;
    /// mirrors `MrtSource::with_route_servers`).
    pub route_servers: Vec<(Asn, IpAddr)>,
    /// Rotating MRT dumps, if wanted.
    pub mrt: Option<RotateConfig>,
}

impl CollectorConfig {
    /// A conventional configuration.
    pub fn new(collector: &str, local_asn: Asn, bgp_id: Ipv4Addr) -> Self {
        CollectorConfig {
            collector: collector.to_owned(),
            local_asn,
            bgp_id,
            hold_time: 90,
            epoch_seconds: 0,
            stamp: StampMode::Arrival,
            identity: SessionIdentity::BgpId,
            route_servers: Vec::new(),
            mrt: None,
        }
    }

    /// Sets the stamp mode.
    pub fn with_stamp(mut self, stamp: StampMode) -> Self {
        self.stamp = stamp;
        self
    }

    /// Declares route-server peers.
    pub fn with_route_servers<I: IntoIterator<Item = (Asn, IpAddr)>>(mut self, peers: I) -> Self {
        self.route_servers = peers.into_iter().collect();
        self
    }

    /// Enables rotating MRT dumps.
    pub fn with_mrt(mut self, rotate: RotateConfig) -> Self {
        self.mrt = Some(rotate);
        self
    }

    /// Sets the proposed hold time (seconds).
    pub fn with_hold_time(mut self, seconds: u16) -> Self {
        self.hold_time = seconds;
        self
    }
}

/// What a collector run processed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Sessions that completed the handshake.
    pub established: u64,
    /// Distinct session keys seen.
    pub sessions: u64,
    /// Per-prefix updates ingested (UPDATE packets are exploded).
    pub updates: u64,
    /// Sessions that ended.
    pub closed: u64,
    /// MRT records written across all dump files.
    pub mrt_records: u64,
    /// Completed MRT dump files.
    pub mrt_files: Vec<std::path::PathBuf>,
}

/// A running collector daemon. Obtain the [`LiveSource`] with
/// [`Collector::take_source`], run the pipeline over it, and stop with
/// [`Collector::shutdown`] + [`Collector::join`].
pub struct Collector {
    local_addr: SocketAddr,
    shutdown: ShutdownFlag,
    source: Option<LiveSource>,
    accept_handle: Option<JoinHandle<u64>>,
    ingest_handle: Option<JoinHandle<CollectorStats>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector").field("local_addr", &self.local_addr).finish()
    }
}

impl Collector {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting peers,
    /// with the real wall clock.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: CollectorConfig) -> io::Result<Self> {
        Self::bind_with_clock(addr, cfg, Arc::new(WallClock::new()))
    }

    /// [`Collector::bind`] with an injected clock (tests).
    pub fn bind_with_clock<A: ToSocketAddrs>(
        addr: A,
        cfg: CollectorConfig,
        clock: Arc<dyn Clock>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = ShutdownFlag::new();
        let (event_tx, event_rx) = mpsc::channel::<SessionEvent>();
        let (live_tx, live_source) = LiveSource::channel();

        let accept_handle = {
            let shutdown = shutdown.clone();
            let clock = Arc::clone(&clock);
            let fsm_cfg = FsmConfig::new(cfg.local_asn, cfg.bgp_id).with_hold_time(cfg.hold_time);
            std::thread::spawn(move || accept_loop(listener, fsm_cfg, clock, event_tx, shutdown))
        };

        let ingest_handle = {
            let rotator = match &cfg.mrt {
                Some(rc) => match MrtRotator::new(rc.clone(), cfg.epoch_seconds) {
                    Ok(r) => Some(r),
                    Err(e) => {
                        return Err(io::Error::other(format!("MRT rotator: {e}")));
                    }
                },
                None => None,
            };
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || ingest_loop(cfg, clock, event_rx, live_tx, rotator))
        };

        Ok(Collector {
            local_addr,
            shutdown,
            source: Some(live_source),
            accept_handle: Some(accept_handle),
            ingest_handle: Some(ingest_handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live update source. Panics if taken twice.
    pub fn take_source(&mut self) -> LiveSource {
        self.source.take().expect("LiveSource already taken")
    }

    /// Requests shutdown: stop accepting, Cease every session, close the
    /// feed once in-flight updates are drained.
    pub fn shutdown(&self) {
        self.shutdown.trigger();
    }

    /// A clonable handle other threads (a duration timer, a signal
    /// handler) can use to request the same shutdown. Distinct from the
    /// [`LiveSource`]'s own flag: this one drains sessions gracefully
    /// and closes the feed, so a pipeline blocked on the source finishes
    /// with everything ingested.
    pub fn shutdown_handle(&self) -> ShutdownFlag {
        self.shutdown.clone()
    }

    /// Waits for every thread to finish and returns the run's stats.
    /// Call [`Collector::shutdown`] first (or have every peer disconnect
    /// — the accept loop still needs the flag to stop).
    pub fn join(mut self) -> CollectorStats {
        let accepted = match self.accept_handle.take() {
            Some(h) => h.join().unwrap_or(0),
            None => 0,
        };
        let mut stats = CollectorStats::default();
        if let Some(h) = self.ingest_handle.take() {
            if let Ok(s) = h.join() {
                stats = s;
            }
        }
        stats.accepted = accepted;
        stats
    }
}

/// Accepts connections until shutdown; joins every session thread before
/// returning. Returns the number of accepted connections.
fn accept_loop(
    listener: TcpListener,
    fsm_cfg: FsmConfig,
    clock: Arc<dyn Clock>,
    events: Sender<SessionEvent>,
    shutdown: ShutdownFlag,
) -> u64 {
    let mut accepted = 0u64;
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.is_triggered() {
        match listener.accept() {
            Ok((stream, _)) => {
                accepted += 1;
                let _ = stream.set_nodelay(true);
                let cfg = fsm_cfg.clone();
                let clock = Arc::clone(&clock);
                let tx = events.clone();
                let flag = shutdown.clone();
                sessions.push(std::thread::spawn(move || {
                    serve_inbound(stream, cfg, clock, tx, flag);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => {
                // Transient accept failures (peer reset before accept,
                // fd pressure) must not kill a long-running daemon; back
                // off and keep listening. The shutdown flag is the only
                // way out.
                std::thread::sleep(Duration::from_millis(100));
            }
        }
        // Reap finished session threads so a long-lived daemon does not
        // accumulate handles.
        sessions.retain(|h| !h.is_finished());
    }
    for h in sessions {
        let _ = h.join();
    }
    accepted
    // `events` drops here: with every session thread joined, the ingest
    // channel closes and the ingest loop finishes.
}

struct LiveSession {
    meta: Arc<PeerMeta>,
    next_index: u64,
}

/// Converts session events into stamped `SourceItem`s (and MRT records)
/// until every event sender is gone.
fn ingest_loop(
    cfg: CollectorConfig,
    clock: Arc<dyn Clock>,
    events: mpsc::Receiver<SessionEvent>,
    live: Sender<SourceItem>,
    mut rotator: Option<MrtRotator>,
) -> CollectorStats {
    let mut stats = CollectorStats::default();
    // Keyed by the Copy pair (ASN, IP) — the collector name is constant
    // for this daemon, and the full SessionKey would cost a String
    // allocation per UPDATE on this single-threaded hot path.
    let mut sessions: HashMap<(Asn, IpAddr), LiveSession> = HashMap::new();

    while let Ok(event) = events.recv() {
        match event {
            SessionEvent::Established { info, remote } => {
                stats.established += 1;
                let peer_ip = match cfg.identity {
                    SessionIdentity::BgpId => IpAddr::V4(info.peer_bgp_id),
                    SessionIdentity::SourceAddr => remote.ip(),
                };
                if let std::collections::hash_map::Entry::Vacant(e) =
                    sessions.entry((info.peer_asn, peer_ip))
                {
                    let route_server = cfg
                        .route_servers
                        .iter()
                        .any(|&(asn, ip)| asn == info.peer_asn && ip == peer_ip);
                    let meta = Arc::new(PeerMeta {
                        key: SessionKey::new(&cfg.collector, info.peer_asn, peer_ip),
                        route_server,
                        second_granularity: false,
                    });
                    stats.sessions += 1;
                    let _ = live.send(SourceItem::Session(Arc::clone(&meta)));
                    e.insert(LiveSession { meta, next_index: 0 });
                }
            }
            SessionEvent::Update { info, remote, packet } => {
                let peer_ip = match cfg.identity {
                    SessionIdentity::BgpId => IpAddr::V4(info.peer_bgp_id),
                    SessionIdentity::SourceAddr => remote.ip(),
                };
                let Some(session) = sessions.get_mut(&(info.peer_asn, peer_ip)) else {
                    continue; // update before establish cannot happen
                };
                // A packet may explode into several per-prefix updates;
                // each gets its own stamp so `Logical` mode matches
                // `offline_reference` exactly (the n-th per-session
                // update is n × spacing, packet boundaries irrelevant).
                for mut update in packet.explode(0) {
                    update.time_us = match cfg.stamp {
                        StampMode::Arrival => clock.now_ms() * 1_000,
                        StampMode::Logical { spacing_us } => session.next_index * spacing_us,
                    };
                    if let Some(rot) = rotator.as_mut() {
                        let _ = rot.write(&session.meta, &update);
                    }
                    stats.updates += 1;
                    session.next_index += 1;
                    let _ = live.send(SourceItem::Update(Arc::clone(&session.meta), update));
                }
            }
            SessionEvent::Closed { reason, .. } => {
                stats.closed += 1;
                let _ = reason; // reasons are per-session diagnostics
            }
        }
    }

    if let Some(rot) = rotator {
        stats.mrt_records = rot.total_records();
        if let Ok(files) = rot.finish() {
            stats.mrt_files = files;
        }
    }
    stats
}

/// What the daemon will record for `input` under `cfg` — the offline
/// reference the end-to-end loopback tests compare against, computed by
/// applying the daemon's metadata and stamping rules to the same update
/// set. Only [`StampMode::Logical`] yields a meaningful reference
/// (`Arrival` depends on the wall clock).
pub fn offline_reference(input: &UpdateArchive, cfg: &CollectorConfig) -> UpdateArchive {
    let mut out = UpdateArchive::new(cfg.epoch_seconds);
    let mut renamed = 0usize;
    for (key, rec) in input.sessions() {
        renamed += 1;
        let key = SessionKey::new(&cfg.collector, key.peer_asn, key.peer_ip);
        let route_server =
            cfg.route_servers.iter().any(|&(asn, ip)| asn == key.peer_asn && ip == key.peer_ip);
        out.add_session(PeerMeta { key: key.clone(), route_server, second_granularity: false });
        for (i, u) in rec.updates.iter().enumerate() {
            let mut u = u.clone();
            u.time_us = match cfg.stamp {
                StampMode::Logical { spacing_us } => i as u64 * spacing_us,
                StampMode::Arrival => u.time_us,
            };
            out.record(&key, u);
        }
    }
    assert_eq!(
        out.session_count(),
        renamed,
        "distinct input sessions collided under one collector name — \
         (peer ASN, peer IP) must be unique across the input"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{PathAttributes, RouteUpdate};
    use kcc_bgp_wire::{Message, Notification, OpenMessage, SessionConfig, UpdatePacket};
    use kcc_collector::UpdateSource;

    /// A multi-prefix UPDATE packet explodes into per-prefix updates
    /// that each advance the logical stamp — the invariant that keeps
    /// live results byte-identical to `offline_reference`, which sees
    /// one update per record and never a packet boundary.
    #[test]
    fn logical_stamping_advances_per_exploded_prefix() {
        let cfg = CollectorConfig::new("rrc00", Asn(3333), "198.51.100.1".parse().unwrap())
            .with_stamp(StampMode::logical(1_000));
        let mut collector = Collector::bind("127.0.0.1:0", cfg).unwrap();
        let addr = collector.local_addr();
        let mut source = collector.take_source();

        // A hand-driven peer: handshake, then one UPDATE carrying two
        // prefixes, then one with a single withdrawal.
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let wire_cfg = SessionConfig::default();
        let open = OpenMessage::standard(Asn(65_001), "192.0.2.77".parse().unwrap(), 90);
        crate::transport::write_message(&stream, &Message::Open(open), &wire_cfg).unwrap();
        let mut reader =
            crate::transport::MessageReader::new(stream.try_clone().unwrap(), wire_cfg, true);
        assert!(matches!(reader.read_message().unwrap().unwrap(), Message::Open(_)));
        crate::transport::write_message(&stream, &Message::Keepalive, &wire_cfg).unwrap();
        assert_eq!(reader.read_message().unwrap().unwrap(), Message::Keepalive);

        let attrs = PathAttributes {
            as_path: "65001 3356".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        let mut two = UpdatePacket::announce("10.0.0.0/8".parse().unwrap(), attrs);
        two.nlri.push("10.64.0.0/10".parse().unwrap());
        crate::transport::write_message(&stream, &Message::Update(two), &wire_cfg).unwrap();
        let one = UpdatePacket::withdraw("10.0.0.0/8".parse().unwrap());
        crate::transport::write_message(&stream, &Message::Update(one), &wire_cfg).unwrap();
        crate::transport::write_message(
            &stream,
            &Message::Notification(Notification::cease_admin_shutdown()),
            &wire_cfg,
        )
        .unwrap();
        drop(reader);
        drop(stream);

        collector.shutdown();
        let stats = collector.join();
        assert_eq!(stats.updates, 3, "2 exploded announcements + 1 withdrawal");

        let mut stamps = Vec::new();
        while let Some(item) = source.next_item().unwrap() {
            if let SourceItem::Update(_, u) = item {
                stamps.push(u.time_us);
            }
        }
        assert_eq!(stamps, vec![0, 1_000, 2_000], "every exploded prefix advances the stamp");
    }

    #[test]
    fn offline_reference_applies_stamping_and_metadata() {
        let mut input = UpdateArchive::new(7);
        let key = SessionKey::new("whatever", Asn(20_205), "192.0.2.9".parse().unwrap());
        let attrs = PathAttributes {
            as_path: "20205 3356".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        input.record(&key, RouteUpdate::announce(123, "10.0.0.0/8".parse().unwrap(), attrs));
        input.record(&key, RouteUpdate::withdraw(456, "10.0.0.0/8".parse().unwrap()));

        let cfg = CollectorConfig::new("rrc99", Asn(3333), "198.51.100.1".parse().unwrap())
            .with_stamp(StampMode::logical(1_000))
            .with_route_servers([(Asn(20_205), "192.0.2.9".parse().unwrap())]);
        let reference = offline_reference(&input, &cfg);

        assert_eq!(reference.epoch_seconds, 0);
        let new_key = SessionKey::new("rrc99", Asn(20_205), "192.0.2.9".parse().unwrap());
        let rec = reference.session(&new_key).expect("renamed session");
        assert!(rec.meta.route_server, "route-server list applied");
        assert!(!rec.meta.second_granularity);
        let times: Vec<u64> = rec.updates.iter().map(|u| u.time_us).collect();
        assert_eq!(times, vec![0, 1_000], "logical stamping replaces input times");
    }
}
