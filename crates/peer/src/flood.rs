//! The many-session load rig: thousands of concurrent inbound BGP
//! sessions driven nonblockingly from a single thread.
//!
//! The thread-per-session bridge (`kcc_bgp_sim::replay_archive`) tops
//! out around the OS thread budget — useless for proving the reactor
//! holds 5k sessions. [`FloodRig`] is the client-side mirror of the
//! reactor: every planned session gets a nonblocking socket, a
//! [`Fsm`], a [`FrameBuffer`] and a capped [`WriteQueue`], all
//! multiplexed over one [`Poller`]. It runs in two explicit phases so
//! soaks can assert *concurrency*, not just throughput:
//!
//! 1. [`connect`](FloodRig::connect) dials and handshakes every
//!    session, then **holds them all Established** — the caller can
//!    check the daemon's gauges before a single UPDATE is sent;
//! 2. [`stream`](FloodRig::stream) feeds each session its planned
//!    UPDATEs (encoded incrementally, so memory stays bounded), ends
//!    each with an administrative Cease, and drains to EOF.
//!
//! Per-session update order is preserved (one socket per session);
//! inter-session interleaving is whatever TCP produces — the same
//! promise the offline sources make, so logically-stamped tables remain
//! byte-comparable to [`crate::offline_reference`].

use std::collections::VecDeque;
use std::io::{ErrorKind, Read};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use kcc_bgp_wire::{encode_update, Message, Notification, SessionConfig, UpdatePacket};
use kcc_collector::UpdateArchive;

use crate::clock::{Clock, WallClock};
use crate::fsm::{Action, Fsm, FsmConfig, FsmEvent};
use crate::reactor::framing::{FlushOutcome, FrameBuffer, WriteQueue};
use crate::sys::{new_poller, PollEvent, Poller, PollerKind};

/// One planned session: who to claim to be, and what to send.
#[derive(Debug, Clone)]
struct PlanSession {
    cfg: FsmConfig,
    packets: Vec<UpdatePacket>,
}

/// A pre-built flood workload: per-session FSM identities plus their
/// UPDATE streams, decoupled from any socket so one plan can be reused
/// across runs.
#[derive(Debug, Clone)]
pub struct FloodPlan {
    sessions: Vec<PlanSession>,
}

/// The BGP identifier a planned peer IP maps to — the same mapping the
/// sim bridge uses, so the daemon's BGP-ID session keying reconstructs
/// the archive's session keys exactly: v4 addresses map directly, v6
/// addresses hash into a deterministic v4 identifier.
fn bgp_id_for(peer_ip: IpAddr) -> Ipv4Addr {
    match peer_ip {
        IpAddr::V4(v4) => v4,
        IpAddr::V6(v6) => {
            let o = v6.octets();
            let h = o.iter().fold(5381u32, |acc, b| acc.wrapping_mul(33).wrapping_add(*b as u32));
            Ipv4Addr::from(h.to_be_bytes())
        }
    }
}

impl FloodPlan {
    /// One flood session per archive session, announcing the session
    /// key's peer AS and (as BGP identifier) its peer IP, streaming the
    /// session's updates in archive order.
    pub fn from_archive(archive: &UpdateArchive, hold_time: u16) -> Self {
        let sessions = archive
            .sessions()
            .map(|(key, rec)| PlanSession {
                cfg: FsmConfig::new(key.peer_asn, bgp_id_for(key.peer_ip))
                    .with_hold_time(hold_time),
                packets: rec.updates.iter().map(UpdatePacket::from_route_update).collect(),
            })
            .collect();
        FloodPlan { sessions }
    }

    /// Planned session count.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Planned UPDATE count across all sessions.
    pub fn update_count(&self) -> u64 {
        self.sessions.iter().map(|s| s.packets.len() as u64).sum()
    }
}

/// Flood tuning.
#[derive(Debug, Clone)]
pub struct FloodOptions {
    /// Readiness backend.
    pub poller: PollerKind,
    /// Per-dial timeout (loopback dials are retried on transient
    /// refusal until this much time has elapsed for that dial).
    pub connect_timeout: Duration,
    /// Cap on the whole handshake phase across all sessions.
    pub establish_timeout: Duration,
    /// Cap on the stream-and-drain phase across all sessions.
    pub drain_timeout: Duration,
    /// Per-session outbound backlog cap (bytes).
    pub write_queue_cap: usize,
}

impl Default for FloodOptions {
    fn default() -> Self {
        FloodOptions {
            poller: PollerKind::Auto,
            connect_timeout: Duration::from_secs(10),
            establish_timeout: Duration::from_secs(120),
            drain_timeout: Duration::from_secs(600),
            write_queue_cap: 256 * 1024,
        }
    }
}

/// What a flood run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FloodReport {
    /// Sessions that completed their full stream and saw the daemon
    /// close the socket.
    pub sessions: u64,
    /// UPDATE messages written across all sessions.
    pub updates_sent: u64,
    /// Peak concurrently-Established sessions on the client side.
    pub peak_established: u64,
}

struct FloodPeer {
    stream: TcpStream,
    fsm: Fsm,
    frames: FrameBuffer,
    writes: WriteQueue,
    write_cfg: SessionConfig,
    packets: Vec<UpdatePacket>,
    next_packet: usize,
    updates_sent: u64,
    established: bool,
    streaming: bool,
    cease_queued: bool,
    want_write: bool,
    done: bool,
    failure: Option<String>,
}

/// A fleet of concurrent nonblocking BGP sessions against one daemon.
pub struct FloodRig {
    poller: Box<dyn Poller>,
    peers: Vec<FloodPeer>,
    clock: Arc<dyn Clock>,
    options: FloodOptions,
    established: usize,
    peak_established: usize,
    last_tick_ms: u64,
}

impl std::fmt::Debug for FloodRig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FloodRig")
            .field("sessions", &self.peers.len())
            .field("established", &self.established)
            .finish()
    }
}

/// Refill the write queue up to half its cap when it drains below a
/// quarter — keeps per-session memory bounded regardless of how many
/// UPDATEs the plan holds.
const REFILL_TARGET_DIV: usize = 2;
const REFILL_LOW_DIV: usize = 4;
/// How often idle sessions run their FSM timers (keepalive cadence is
/// tens of seconds; 1 s of slack costs nothing).
const TICK_MS: u64 = 1_000;

impl FloodRig {
    /// Dials and handshakes every planned session, returning once **all
    /// of them are simultaneously Established** (or failing after
    /// `options.establish_timeout`). No UPDATE is sent yet.
    pub fn connect(
        addr: SocketAddr,
        plan: FloodPlan,
        options: FloodOptions,
    ) -> std::io::Result<FloodRig> {
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let mut rig = FloodRig {
            poller: new_poller(options.poller)?,
            peers: Vec::with_capacity(plan.sessions.len()),
            clock,
            options,
            established: 0,
            peak_established: 0,
            last_tick_ms: 0,
        };
        for session in plan.sessions {
            rig.dial(addr, session)?;
        }
        rig.run_until(rig.options.establish_timeout, |rig| rig.established == rig.peers.len())?;
        if rig.established != rig.peers.len() {
            let failed: Vec<&str> =
                rig.peers.iter().filter_map(|p| p.failure.as_deref()).take(3).collect();
            return Err(std::io::Error::new(
                ErrorKind::TimedOut,
                format!(
                    "only {}/{} sessions established (sample failures: {:?})",
                    rig.established,
                    rig.peers.len(),
                    failed
                ),
            ));
        }
        Ok(rig)
    }

    /// Sessions currently Established.
    pub fn established_count(&self) -> usize {
        self.established
    }

    /// Total sessions in the rig.
    pub fn session_count(&self) -> usize {
        self.peers.len()
    }

    /// Streams every session's UPDATEs, Ceases, and drains to EOF.
    pub fn stream(mut self) -> std::io::Result<FloodReport> {
        for peer in &mut self.peers {
            peer.streaming = true;
        }
        // Kick the first refill; subsequent refills ride writability.
        for i in 0..self.peers.len() {
            self.pump(i);
        }
        self.run_until(self.options.drain_timeout, |rig| rig.peers.iter().all(|p| p.done))?;
        let undrained = self.peers.iter().filter(|p| !p.done).count();
        if undrained > 0 {
            return Err(std::io::Error::new(
                ErrorKind::TimedOut,
                format!("{undrained} sessions never drained to EOF"),
            ));
        }
        let mut report = FloodReport {
            peak_established: self.peak_established as u64,
            ..FloodReport::default()
        };
        for peer in &self.peers {
            if let Some(why) = &peer.failure {
                return Err(std::io::Error::other(format!("flood session failed: {why}")));
            }
            report.sessions += 1;
            report.updates_sent += peer.updates_sent;
        }
        Ok(report)
    }

    fn dial(&mut self, addr: SocketAddr, session: PlanSession) -> std::io::Result<()> {
        // Blocking dial with retry: under a mass dial the daemon's
        // accept loop can transiently refuse; loopback dials are cheap
        // enough that serial connects beat nonblocking connect plumbing.
        let deadline = Instant::now() + self.options.connect_timeout;
        let stream = loop {
            match TcpStream::connect_timeout(&addr, self.options.connect_timeout) {
                Ok(s) => break s,
                Err(e) if Instant::now() < deadline => {
                    let transient = matches!(
                        e.kind(),
                        ErrorKind::ConnectionRefused
                            | ErrorKind::ConnectionReset
                            | ErrorKind::WouldBlock
                    );
                    if !transient {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        };
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let token = self.peers.len() as u64;
        self.poller.register(stream.as_raw_fd(), token, true, false)?;

        let mut peer = FloodPeer {
            stream,
            fsm: Fsm::new(session.cfg),
            frames: FrameBuffer::new(SessionConfig::default(), true),
            writes: WriteQueue::new(self.options.write_queue_cap),
            write_cfg: SessionConfig::default(),
            packets: session.packets,
            next_packet: 0,
            updates_sent: 0,
            established: false,
            streaming: false,
            cease_queued: false,
            want_write: false,
            done: false,
            failure: None,
        };
        let now = self.clock.now_ms();
        let mut actions = peer.fsm.handle(FsmEvent::Start, now);
        actions.extend(peer.fsm.handle(FsmEvent::TcpConnected, now));
        self.peers.push(peer);
        let idx = self.peers.len() - 1;
        self.apply_actions(idx, actions);
        self.flush(idx);
        Ok(())
    }

    /// Drives the event loop until `finished` or `timeout`.
    fn run_until(
        &mut self,
        timeout: Duration,
        finished: impl Fn(&FloodRig) -> bool,
    ) -> std::io::Result<()> {
        let deadline = Instant::now() + timeout;
        let mut events: Vec<PollEvent> = Vec::new();
        while !finished(self) {
            if Instant::now() >= deadline {
                return Ok(()); // caller inspects and reports
            }
            self.poller.wait(&mut events, 100)?;
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                let idx = ev.token as usize;
                if idx >= self.peers.len() || self.peers[idx].done {
                    continue;
                }
                if ev.readable || ev.hangup {
                    self.read_ready(idx);
                }
                if ev.writable && !self.peers[idx].done {
                    self.pump(idx);
                }
            }
            events = batch;
            let now = self.clock.now_ms();
            if now.saturating_sub(self.last_tick_ms) >= TICK_MS {
                self.last_tick_ms = now;
                for idx in 0..self.peers.len() {
                    if self.peers[idx].done {
                        continue;
                    }
                    let actions = self.peers[idx].fsm.handle(FsmEvent::Timer, now);
                    self.apply_actions(idx, actions);
                    if !self.peers[idx].done {
                        self.pump(idx);
                    }
                }
            }
        }
        Ok(())
    }

    fn read_ready(&mut self, idx: usize) {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            let n = match self.peers[idx].stream.read(&mut chunk) {
                Ok(0) => {
                    // Daemon closed: expected once our Cease went out.
                    let peer = &mut self.peers[idx];
                    if !peer.cease_queued && peer.failure.is_none() {
                        peer.failure = Some("daemon closed mid-session".to_owned());
                    }
                    self.finish(idx);
                    return;
                }
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    let peer = &mut self.peers[idx];
                    if !peer.cease_queued && peer.failure.is_none() {
                        peer.failure = Some(format!("read: {e}"));
                    }
                    self.finish(idx);
                    return;
                }
            };
            self.peers[idx].frames.extend(&chunk[..n]);
            let mut inbound = VecDeque::new();
            loop {
                match self.peers[idx].frames.next_message() {
                    Ok(Some(m)) => inbound.push_back(m),
                    Ok(None) => break,
                    Err(e) => {
                        self.peers[idx].failure = Some(format!("decode: {e}"));
                        self.finish(idx);
                        return;
                    }
                }
            }
            let now = self.clock.now_ms();
            while let Some(message) = inbound.pop_front() {
                let actions = self.peers[idx].fsm.handle(FsmEvent::Message(message), now);
                self.apply_actions(idx, actions);
                if self.peers[idx].done {
                    return;
                }
            }
            self.pump(idx);
        }
    }

    /// Alternates refill and flush until the socket pushes back
    /// (`Pending` keeps write interest for the next writable event) or
    /// the session has nothing further to send.
    fn pump(&mut self, idx: usize) {
        loop {
            self.refill(idx);
            {
                let peer = &self.peers[idx];
                if peer.done || peer.writes.is_empty() {
                    return;
                }
            }
            self.flush(idx);
            let peer = &self.peers[idx];
            if peer.done || peer.want_write {
                return; // error, or Pending with write interest armed
            }
            if !peer.streaming || !peer.established || peer.cease_queued {
                return; // nothing more will be enqueued by refill
            }
        }
    }

    fn apply_actions(&mut self, idx: usize, actions: Vec<Action>) {
        for action in actions {
            let peer = &mut self.peers[idx];
            match action {
                Action::Send(message) => {
                    let cfg = peer.write_cfg;
                    if let Err(overflow) = peer.writes.push_message(&message, &cfg) {
                        peer.failure = Some(overflow.to_string());
                        self.finish(idx);
                        return;
                    }
                }
                Action::Up(info) => {
                    peer.write_cfg = info.config;
                    if !peer.established {
                        peer.established = true;
                        self.established += 1;
                        self.peak_established = self.peak_established.max(self.established);
                    }
                }
                Action::Down(reason) => {
                    if !peer.cease_queued && peer.failure.is_none() {
                        peer.failure = Some(format!("session down: {reason:?}"));
                    }
                    // Flush any NOTIFICATION the FSM queued, then close.
                    let _ = peer.writes.flush(&mut peer.stream);
                    self.finish(idx);
                    return;
                }
                Action::StartConnect | Action::Deliver(_) => {}
            }
        }
    }

    /// Tops the write queue back up from the planned packet stream, and
    /// queues the closing Cease when the stream is exhausted.
    fn refill(&mut self, idx: usize) {
        let cap = self.options.write_queue_cap;
        let peer = &mut self.peers[idx];
        if !peer.streaming || !peer.established || peer.cease_queued {
            return;
        }
        if peer.writes.queued() >= cap / REFILL_LOW_DIV && peer.next_packet > 0 {
            return;
        }
        while peer.next_packet < peer.packets.len()
            && peer.writes.queued() < cap / REFILL_TARGET_DIV
        {
            let mut frame = BytesMut::new();
            encode_update(&peer.packets[peer.next_packet], &peer.write_cfg, &mut frame);
            if peer.writes.push_frame(frame).is_err() {
                // The queue is fuller than the refill target; try later.
                return;
            }
            peer.next_packet += 1;
            peer.updates_sent += 1;
        }
        if peer.next_packet == peer.packets.len() {
            let cease = Message::Notification(Notification::cease_admin_shutdown());
            let cfg = peer.write_cfg;
            if peer.writes.push_message(&cease, &cfg).is_ok() {
                peer.cease_queued = true;
            }
        }
    }

    fn flush(&mut self, idx: usize) {
        let peer = &mut self.peers[idx];
        if peer.done {
            return;
        }
        match peer.writes.flush(&mut peer.stream) {
            Ok(FlushOutcome::Flushed) => {
                if peer.want_write {
                    peer.want_write = false;
                    let fd = peer.stream.as_raw_fd();
                    let _ = self.poller.modify(fd, idx as u64, true, false);
                }
            }
            Ok(FlushOutcome::Pending) => {
                if !peer.want_write {
                    peer.want_write = true;
                    let fd = peer.stream.as_raw_fd();
                    let _ = self.poller.modify(fd, idx as u64, true, true);
                }
            }
            Err(e) => {
                if !peer.cease_queued && peer.failure.is_none() {
                    peer.failure = Some(format!("write: {e}"));
                }
                self.finish(idx);
            }
        }
    }

    fn finish(&mut self, idx: usize) {
        let peer = &mut self.peers[idx];
        if peer.done {
            return;
        }
        peer.done = true;
        if peer.established {
            peer.established = false;
            self.established -= 1;
        }
        let _ = self.poller.deregister(peer.stream.as_raw_fd());
        let _ = peer.stream.shutdown(std::net::Shutdown::Both);
    }
}
