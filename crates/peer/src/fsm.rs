//! The RFC 4271 §8 session state machine, as a pure transition function.
//!
//! The FSM owns no sockets, threads or clocks: callers feed it
//! [`FsmEvent`]s together with the current time and execute the
//! [`Action`]s it returns (write a message, dial, deliver an UPDATE,
//! close the transport). Timers are explicit deadlines in milliseconds;
//! [`Fsm::next_deadline`] tells the driving loop how long it may block,
//! and a [`FsmEvent::Timer`] at or after a deadline fires the transition.
//! This makes every edge — hold expiry mid-Established, NOTIFICATION in
//! OpenSent, reconnect after Cease, keepalive cadence — deterministic and
//! unit-testable without a single real sleep.
//!
//! Simplifications relative to the full RFC: no DelayOpen, no connection
//! collision resolution (the collector is the passive side and the bridge
//! the active side, so simultaneous opens cannot arise in this system),
//! and decode errors on UPDATEs tear the session down with the matching
//! NOTIFICATION rather than RFC 7606 treat-as-withdraw (the codec's
//! severity classification is preserved in [`DownReason`] for operators).

use std::net::Ipv4Addr;

use kcc_bgp_types::Asn;
use kcc_bgp_wire::{
    Message, Notification, NotificationCode, OpenMessage, SessionConfig, UpdatePacket, WireError,
    BGP_VERSION,
};

/// RFC 4271 session states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Nothing happening; waiting for a start event.
    Idle,
    /// Actively dialing the peer.
    Connect,
    /// Waiting for an inbound connection (or for the connect retry timer).
    Active,
    /// OPEN sent; waiting for the peer's OPEN.
    OpenSent,
    /// OPENs exchanged; waiting for the first KEEPALIVE.
    OpenConfirm,
    /// The session is up and UPDATEs flow.
    Established,
}

/// Static configuration for one session endpoint.
#[derive(Debug, Clone)]
pub struct FsmConfig {
    /// Our AS number (announced via the 4-octet capability).
    pub local_asn: Asn,
    /// Our BGP identifier.
    pub bgp_id: Ipv4Addr,
    /// Proposed hold time in seconds (0 = no keepalives; RFC default 90).
    pub hold_time: u16,
    /// Passive endpoints (collectors) never dial; they wait in `Active`
    /// for the transport to hand them an inbound connection.
    pub passive: bool,
    /// If set, the peer's OPEN must announce exactly this AS
    /// (otherwise: Bad Peer AS NOTIFICATION).
    pub expected_peer_asn: Option<Asn>,
    /// Delay before re-dialing after a failed connect (ms).
    pub connect_retry_ms: u64,
    /// How long to wait in OpenSent/OpenConfirm before giving up (the
    /// RFC's "large value" hold timer while the session is half-open).
    pub open_hold_ms: u64,
}

impl FsmConfig {
    /// A conventional configuration for one endpoint.
    pub fn new(local_asn: Asn, bgp_id: Ipv4Addr) -> Self {
        FsmConfig {
            local_asn,
            bgp_id,
            hold_time: 90,
            passive: false,
            expected_peer_asn: None,
            connect_retry_ms: 5_000,
            open_hold_ms: 240_000,
        }
    }

    /// Marks this endpoint passive (collector side).
    pub fn passive(mut self) -> Self {
        self.passive = true;
        self
    }

    /// Sets the proposed hold time (seconds).
    pub fn with_hold_time(mut self, seconds: u16) -> Self {
        self.hold_time = seconds;
        self
    }

    /// Requires the peer to announce exactly this AS.
    pub fn with_expected_peer(mut self, asn: Asn) -> Self {
        self.expected_peer_asn = Some(asn);
        self
    }
}

/// What the FSM consumed.
#[derive(Debug)]
pub enum FsmEvent {
    /// Administrative start.
    Start,
    /// Administrative stop (sends Cease if the session got far enough).
    Stop,
    /// The transport connected (outbound dial completed, or an inbound
    /// connection was accepted for a passive endpoint).
    TcpConnected,
    /// The transport failed or closed.
    TcpFailed,
    /// A complete message arrived.
    Message(Message),
    /// The transport could not decode the byte stream.
    DecodeError(WireError),
    /// Clock tick: fire any deadline at or before `now_ms`.
    Timer,
}

/// What the driving loop must do, in order.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Write this message to the transport.
    Send(Message),
    /// Dial the peer (active endpoints only).
    StartConnect,
    /// The session reached Established.
    Up(EstablishedInfo),
    /// An UPDATE arrived on an Established session.
    Deliver(UpdatePacket),
    /// The session went down; close the transport. Any NOTIFICATION to
    /// send first appears as a preceding [`Action::Send`].
    Down(DownReason),
}

/// Negotiated session parameters, emitted with [`Action::Up`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EstablishedInfo {
    /// The peer's real AS (4-octet capability value if announced).
    pub peer_asn: Asn,
    /// The peer's BGP identifier.
    pub peer_bgp_id: Ipv4Addr,
    /// Negotiated hold time (min of both proposals; 0 = timers off).
    pub hold_time: u16,
    /// Negotiated codec configuration (4-octet AS iff both announced it).
    pub config: SessionConfig,
}

/// Why a session left Established (or never got there).
#[derive(Debug, Clone, PartialEq)]
pub enum DownReason {
    /// Our hold timer expired (we sent the NOTIFICATION).
    HoldTimerExpired,
    /// The peer sent a NOTIFICATION.
    PeerNotification(Notification),
    /// Administrative stop (we sent Cease).
    AdminStop,
    /// The transport failed or closed underneath us.
    TcpFailed,
    /// The peer violated the protocol (we sent the NOTIFICATION).
    ProtocolError(&'static str),
    /// The byte stream could not be decoded (we sent the NOTIFICATION).
    DecodeError(WireError),
}

/// The session FSM. One instance per session endpoint; drive it with
/// [`Fsm::handle`].
#[derive(Debug)]
pub struct Fsm {
    cfg: FsmConfig,
    state: State,
    /// Deadline for the hold timer (half-open: `open_hold_ms`;
    /// Established: negotiated hold time). `None` = disarmed.
    hold_deadline: Option<u64>,
    /// Next keepalive send deadline (Established/OpenConfirm, hold > 0).
    keepalive_deadline: Option<u64>,
    /// Next reconnect attempt after a failed dial.
    connect_deadline: Option<u64>,
    /// Negotiated parameters, set when the peer's OPEN is accepted.
    info: Option<EstablishedInfo>,
    keepalives_sent: u64,
}

impl Fsm {
    /// A fresh FSM in `Idle`.
    pub fn new(cfg: FsmConfig) -> Self {
        Fsm {
            cfg,
            state: State::Idle,
            hold_deadline: None,
            keepalive_deadline: None,
            connect_deadline: None,
            info: None,
            keepalives_sent: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> State {
        self.state
    }

    /// Negotiated parameters, once the peer's OPEN was accepted.
    pub fn info(&self) -> Option<&EstablishedInfo> {
        self.info.as_ref()
    }

    /// KEEPALIVEs sent so far (cadence tests and stats).
    pub fn keepalives_sent(&self) -> u64 {
        self.keepalives_sent
    }

    /// The earliest armed deadline — how long the driving loop may block
    /// before it must feed [`FsmEvent::Timer`].
    pub fn next_deadline(&self) -> Option<u64> {
        [self.hold_deadline, self.keepalive_deadline, self.connect_deadline]
            .into_iter()
            .flatten()
            .min()
    }

    /// The keepalive interval for a negotiated hold time: one third,
    /// rounded down, at least one second (RFC 4271 §4.4 suggests a third
    /// of the Hold Time).
    fn keepalive_interval_ms(hold_time: u16) -> u64 {
        ((hold_time as u64 * 1_000) / 3).max(1_000)
    }

    fn our_open(&self) -> OpenMessage {
        OpenMessage::standard(self.cfg.local_asn, self.cfg.bgp_id, self.cfg.hold_time)
    }

    fn disarm_all(&mut self) {
        self.hold_deadline = None;
        self.keepalive_deadline = None;
        self.connect_deadline = None;
    }

    /// Tears down with an optional outgoing NOTIFICATION.
    fn down(&mut self, notify: Option<Notification>, reason: DownReason) -> Vec<Action> {
        let mut actions = Vec::new();
        if let Some(n) = notify {
            actions.push(Action::Send(Message::Notification(n)));
        }
        actions.push(Action::Down(reason));
        self.state = State::Idle;
        self.disarm_all();
        self.info = None;
        actions
    }

    /// Feeds one event at time `now_ms`; returns the actions to execute,
    /// in order.
    pub fn handle(&mut self, event: FsmEvent, now_ms: u64) -> Vec<Action> {
        match event {
            FsmEvent::Start => self.on_start(now_ms),
            FsmEvent::Stop => self.on_stop(),
            FsmEvent::TcpConnected => self.on_tcp_connected(now_ms),
            FsmEvent::TcpFailed => self.on_tcp_failed(now_ms),
            FsmEvent::Message(m) => self.on_message(m, now_ms),
            FsmEvent::DecodeError(e) => self.on_decode_error(e),
            FsmEvent::Timer => self.on_timer(now_ms),
        }
    }

    fn on_start(&mut self, now_ms: u64) -> Vec<Action> {
        match self.state {
            State::Idle => {
                if self.cfg.passive {
                    self.state = State::Active;
                    Vec::new()
                } else {
                    self.state = State::Connect;
                    self.connect_deadline = Some(now_ms + self.cfg.connect_retry_ms);
                    vec![Action::StartConnect]
                }
            }
            _ => Vec::new(), // start is idempotent elsewhere
        }
    }

    fn on_stop(&mut self) -> Vec<Action> {
        match self.state {
            State::Idle => Vec::new(),
            State::Connect | State::Active => self.down(None, DownReason::AdminStop),
            State::OpenSent | State::OpenConfirm | State::Established => {
                self.down(Some(Notification::cease_admin_shutdown()), DownReason::AdminStop)
            }
        }
    }

    fn on_tcp_connected(&mut self, now_ms: u64) -> Vec<Action> {
        match self.state {
            State::Connect | State::Active => {
                // Both sides send OPEN as soon as the transport is up
                // (RFC 4271 events 16/17).
                self.state = State::OpenSent;
                self.connect_deadline = None;
                self.hold_deadline = Some(now_ms + self.cfg.open_hold_ms);
                vec![Action::Send(Message::Open(self.our_open()))]
            }
            _ => Vec::new(),
        }
    }

    fn on_tcp_failed(&mut self, now_ms: u64) -> Vec<Action> {
        match self.state {
            State::Idle => Vec::new(),
            State::Connect | State::Active if !self.cfg.passive => {
                // Back off and re-dial when the retry timer fires.
                self.state = State::Active;
                self.connect_deadline = Some(now_ms + self.cfg.connect_retry_ms);
                Vec::new()
            }
            _ => self.down(None, DownReason::TcpFailed),
        }
    }

    fn on_message(&mut self, message: Message, now_ms: u64) -> Vec<Action> {
        match (self.state, message) {
            (State::OpenSent, Message::Open(open)) => self.on_open(open, now_ms),
            (State::OpenSent | State::OpenConfirm, Message::Notification(n)) => {
                // The peer rejected us; no answer is sent back.
                self.down(None, DownReason::PeerNotification(n))
            }
            (State::OpenConfirm, Message::Keepalive) => {
                let info = self.info.clone().expect("OpenConfirm implies negotiated info");
                self.arm_established_timers(info.hold_time, now_ms);
                self.state = State::Established;
                vec![Action::Up(info)]
            }
            (State::Established, Message::Update(packet)) => {
                self.reset_hold(now_ms);
                vec![Action::Deliver(packet)]
            }
            (State::Established, Message::Keepalive) => {
                self.reset_hold(now_ms);
                Vec::new()
            }
            // We advertise the route-refresh capability, so the message
            // must be accepted. A collector has no Adj-RIB-Out to replay;
            // the request only proves the peer is alive.
            (State::Established, Message::RouteRefresh(_)) => {
                self.reset_hold(now_ms);
                Vec::new()
            }
            (State::Established, Message::Notification(n)) => {
                self.down(None, DownReason::PeerNotification(n))
            }
            (State::Established | State::OpenConfirm, Message::Open(_)) => self.down(
                Some(Notification::fsm_error()),
                DownReason::ProtocolError("OPEN after negotiation"),
            ),
            (_, _) => self.down(
                Some(Notification::fsm_error()),
                DownReason::ProtocolError("message in unexpected state"),
            ),
        }
    }

    fn on_open(&mut self, open: OpenMessage, now_ms: u64) -> Vec<Action> {
        // The codec already rejects 1–2 s at decode; guard anyway so a
        // hand-built OpenMessage cannot sneak one in.
        if open.hold_time == 1 || open.hold_time == 2 {
            return self.down(
                Some(Notification::unacceptable_hold_time(open.hold_time)),
                DownReason::ProtocolError("unacceptable hold time"),
            );
        }
        if let Some(expected) = self.cfg.expected_peer_asn {
            if open.real_asn() != expected {
                return self.down(
                    Some(Notification::bad_peer_as()),
                    DownReason::ProtocolError("bad peer AS"),
                );
            }
        }
        let hold_time = self.cfg.hold_time.min(open.hold_time);
        // 4-octet AS iff both sides announced the capability; our
        // standard OPEN always does.
        let config = SessionConfig { four_octet_as: open.supports_four_octet() };
        self.info = Some(EstablishedInfo {
            peer_asn: open.real_asn(),
            peer_bgp_id: open.bgp_id,
            hold_time,
            config,
        });
        // Keep the large half-open hold deadline until Established; send
        // our KEEPALIVE to confirm.
        self.hold_deadline = Some(now_ms + self.cfg.open_hold_ms);
        self.state = State::OpenConfirm;
        self.keepalives_sent += 1;
        vec![Action::Send(Message::Keepalive)]
    }

    fn arm_established_timers(&mut self, hold_time: u16, now_ms: u64) {
        if hold_time == 0 {
            self.hold_deadline = None;
            self.keepalive_deadline = None;
        } else {
            self.hold_deadline = Some(now_ms + hold_time as u64 * 1_000);
            self.keepalive_deadline = Some(now_ms + Self::keepalive_interval_ms(hold_time));
        }
    }

    fn reset_hold(&mut self, now_ms: u64) {
        if let Some(info) = &self.info {
            if info.hold_time > 0 {
                self.hold_deadline = Some(now_ms + info.hold_time as u64 * 1_000);
            }
        }
    }

    /// Records that the driver sent a message at `now_ms` (to the peer,
    /// UPDATEs count as liveness just like KEEPALIVEs), pushing our
    /// keepalive cadence out — RFC 4271 restarts the KeepaliveTimer on
    /// every KEEPALIVE/UPDATE sent.
    pub fn note_message_sent(&mut self, now_ms: u64) {
        if let (Some(info), Some(_)) = (&self.info, self.keepalive_deadline) {
            self.keepalive_deadline = Some(now_ms + Self::keepalive_interval_ms(info.hold_time));
        }
    }

    /// Records that the peer was heard from at `now_ms` (liveness seen by
    /// an external reader), resetting the hold timer.
    pub fn note_message_received(&mut self, now_ms: u64) {
        self.reset_hold(now_ms);
    }

    fn on_decode_error(&mut self, e: WireError) -> Vec<Action> {
        let notification = match &e {
            WireError::BadVersion(_) => Notification::unsupported_version(BGP_VERSION),
            WireError::BadValue { what: "hold time", value } => {
                Notification::unacceptable_hold_time(*value as u16)
            }
            WireError::BadMarker | WireError::BadLength(_) | WireError::UnknownMessageType(_) => {
                Notification { code: NotificationCode::MessageHeader, subcode: 0, data: vec![] }
            }
            WireError::Truncated { .. } => Notification {
                code: NotificationCode::MessageHeader,
                subcode: 2, // Bad Message Length
                data: vec![],
            },
            _ => Notification { code: NotificationCode::UpdateMessage, subcode: 0, data: vec![] },
        };
        self.down(Some(notification), DownReason::DecodeError(e))
    }

    fn on_timer(&mut self, now_ms: u64) -> Vec<Action> {
        // Connect retry: re-dial.
        if self.connect_deadline.is_some_and(|d| now_ms >= d) {
            self.connect_deadline = Some(now_ms + self.cfg.connect_retry_ms);
            if matches!(self.state, State::Connect | State::Active) && !self.cfg.passive {
                self.state = State::Connect;
                return vec![Action::StartConnect];
            }
        }
        // Hold timer: the peer went silent.
        if self.hold_deadline.is_some_and(|d| now_ms >= d) {
            return self
                .down(Some(Notification::hold_timer_expired()), DownReason::HoldTimerExpired);
        }
        // Keepalive timer: prove we are alive.
        if self.keepalive_deadline.is_some_and(|d| now_ms >= d) {
            let hold = self.info.as_ref().map(|i| i.hold_time).unwrap_or(self.cfg.hold_time);
            self.keepalive_deadline = Some(now_ms + Self::keepalive_interval_ms(hold));
            self.keepalives_sent += 1;
            return vec![Action::Send(Message::Keepalive)];
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FsmConfig {
        FsmConfig::new(Asn(3333), "198.51.100.1".parse().unwrap()).with_hold_time(30)
    }

    fn peer_open(hold: u16) -> Message {
        Message::Open(OpenMessage::standard(Asn(20_205), "192.0.2.9".parse().unwrap(), hold))
    }

    /// Drives a fresh FSM to Established at t=0 and returns it.
    fn established(config: FsmConfig) -> Fsm {
        let mut fsm = Fsm::new(config.passive());
        assert!(fsm.handle(FsmEvent::Start, 0).is_empty());
        assert_eq!(fsm.state(), State::Active);
        let a = fsm.handle(FsmEvent::TcpConnected, 0);
        assert!(matches!(a[0], Action::Send(Message::Open(_))));
        assert_eq!(fsm.state(), State::OpenSent);
        let a = fsm.handle(FsmEvent::Message(peer_open(30)), 0);
        assert_eq!(a, vec![Action::Send(Message::Keepalive)]);
        assert_eq!(fsm.state(), State::OpenConfirm);
        let a = fsm.handle(FsmEvent::Message(Message::Keepalive), 0);
        assert!(matches!(a[0], Action::Up(_)));
        assert_eq!(fsm.state(), State::Established);
        fsm
    }

    #[test]
    fn happy_path_reaches_established_with_negotiated_parameters() {
        let fsm = established(cfg());
        let info = fsm.info().unwrap();
        assert_eq!(info.peer_asn, Asn(20_205));
        assert_eq!(info.hold_time, 30);
        assert!(info.config.four_octet_as);
    }

    #[test]
    fn hold_time_negotiates_to_minimum() {
        let mut fsm = Fsm::new(cfg().passive());
        fsm.handle(FsmEvent::Start, 0);
        fsm.handle(FsmEvent::TcpConnected, 0);
        fsm.handle(FsmEvent::Message(peer_open(9)), 0);
        assert_eq!(fsm.info().unwrap().hold_time, 9, "min(30, 9)");
    }

    #[test]
    fn active_side_dials_and_establishes() {
        let mut fsm = Fsm::new(cfg());
        let a = fsm.handle(FsmEvent::Start, 0);
        assert_eq!(a, vec![Action::StartConnect]);
        assert_eq!(fsm.state(), State::Connect);
        fsm.handle(FsmEvent::TcpConnected, 0);
        fsm.handle(FsmEvent::Message(peer_open(30)), 0);
        let a = fsm.handle(FsmEvent::Message(Message::Keepalive), 0);
        assert!(matches!(a[0], Action::Up(_)));
    }

    #[test]
    fn hold_timer_expiry_mid_established_notifies_and_tears_down() {
        let mut fsm = established(cfg());
        // Negotiated hold 30 s: an UPDATE at t=5s pushes the deadline to
        // t=35s; silence until then trips it.
        let a = fsm.handle(
            FsmEvent::Message(Message::Update(UpdatePacket::withdraw(
                "10.0.0.0/8".parse().unwrap(),
            ))),
            5_000,
        );
        assert!(matches!(a[0], Action::Deliver(_)));
        assert!(
            fsm.handle(FsmEvent::Timer, 34_999).is_empty() || fsm.state() == State::Established
        );
        let a = fsm.handle(FsmEvent::Timer, 35_000);
        assert_eq!(
            a,
            vec![
                Action::Send(Message::Notification(Notification::hold_timer_expired())),
                Action::Down(DownReason::HoldTimerExpired),
            ]
        );
        assert_eq!(fsm.state(), State::Idle);
        assert_eq!(fsm.next_deadline(), None, "all timers disarmed after teardown");
    }

    #[test]
    fn keepalive_resets_hold_timer() {
        let mut fsm = established(cfg());
        fsm.handle(FsmEvent::Message(Message::Keepalive), 20_000);
        // Old deadline (t=30s) must not fire.
        let a = fsm.handle(FsmEvent::Timer, 31_000);
        assert!(a.iter().all(|x| !matches!(x, Action::Down(_))));
        assert_eq!(fsm.state(), State::Established);
    }

    #[test]
    fn notification_in_opensent_returns_to_idle_silently() {
        let mut fsm = Fsm::new(cfg().passive());
        fsm.handle(FsmEvent::Start, 0);
        fsm.handle(FsmEvent::TcpConnected, 0);
        assert_eq!(fsm.state(), State::OpenSent);
        let n = Notification::bad_peer_as();
        let a = fsm.handle(FsmEvent::Message(Message::Notification(n.clone())), 100);
        // No counter-NOTIFICATION: the peer already closed its side.
        assert_eq!(a, vec![Action::Down(DownReason::PeerNotification(n))]);
        assert_eq!(fsm.state(), State::Idle);
    }

    #[test]
    fn collision_free_reconnect_after_cease() {
        let mut fsm = established(cfg());
        // Peer ceases: down without any message from us.
        let cease = Notification::cease_admin_shutdown();
        let a = fsm.handle(FsmEvent::Message(Message::Notification(cease.clone())), 10_000);
        assert_eq!(a, vec![Action::Down(DownReason::PeerNotification(cease))]);
        assert_eq!(fsm.state(), State::Idle);
        assert_eq!(fsm.next_deadline(), None);

        // A fresh start establishes again with no residue from the first
        // life: no stale timers fire, negotiation runs from scratch.
        assert!(fsm.handle(FsmEvent::Start, 20_000).is_empty());
        let a = fsm.handle(FsmEvent::TcpConnected, 20_000);
        assert!(matches!(a[0], Action::Send(Message::Open(_))));
        fsm.handle(FsmEvent::Message(peer_open(30)), 20_000);
        let a = fsm.handle(FsmEvent::Message(Message::Keepalive), 20_000);
        assert!(matches!(a[0], Action::Up(_)));
        assert_eq!(fsm.state(), State::Established);
        // The re-established hold deadline is anchored at the new epoch.
        let a = fsm.handle(FsmEvent::Timer, 35_000);
        assert!(a.iter().all(|x| !matches!(x, Action::Down(_))), "no stale hold expiry");
    }

    #[test]
    fn keepalive_cadence_is_at_most_a_third_of_hold() {
        let mut fsm = established(cfg()); // hold 30 s → interval 10 s
        let sent_at_establish = fsm.keepalives_sent();
        let mut sends = Vec::new();
        // Feed peer keepalives (so our hold never trips) and tick every
        // second of a 30-second window.
        for t in 1..=30u64 {
            let now = t * 1_000;
            fsm.handle(FsmEvent::Message(Message::Keepalive), now);
            for a in fsm.handle(FsmEvent::Timer, now) {
                if a == Action::Send(Message::Keepalive) {
                    sends.push(now);
                }
            }
        }
        assert_eq!(sends, vec![10_000, 20_000, 30_000], "cadence = hold/3");
        assert_eq!(fsm.keepalives_sent() - sent_at_establish, 3);
        // ≤ hold/3 ⇒ at least 3 keepalives per hold interval.
        assert!(sends.windows(2).all(|w| w[1] - w[0] <= 10_000));
    }

    #[test]
    fn route_refresh_is_accepted_and_counts_as_liveness() {
        use kcc_bgp_wire::RouteRefresh;
        let mut fsm = established(cfg());
        let a = fsm.handle(
            FsmEvent::Message(Message::RouteRefresh(RouteRefresh { afi: 1, safi: 1 })),
            20_000,
        );
        assert!(a.is_empty(), "we advertised the capability; no teardown");
        assert_eq!(fsm.state(), State::Established);
        // And it reset the hold timer like any other message.
        let a = fsm.handle(FsmEvent::Timer, 31_000);
        assert!(a.iter().all(|x| !matches!(x, Action::Down(_))));
    }

    #[test]
    fn zero_hold_time_disables_timers() {
        let mut fsm = Fsm::new(cfg().with_hold_time(0).passive());
        fsm.handle(FsmEvent::Start, 0);
        fsm.handle(FsmEvent::TcpConnected, 0);
        fsm.handle(FsmEvent::Message(peer_open(0)), 0);
        fsm.handle(FsmEvent::Message(Message::Keepalive), 0);
        assert_eq!(fsm.state(), State::Established);
        assert_eq!(fsm.next_deadline(), None);
        let a = fsm.handle(FsmEvent::Timer, 1_000_000_000);
        assert!(a.is_empty(), "no timer ever fires with hold 0");
    }

    #[test]
    fn bad_peer_as_rejected_with_precise_notification() {
        let mut fsm = Fsm::new(cfg().with_expected_peer(Asn(65_000)).passive());
        fsm.handle(FsmEvent::Start, 0);
        fsm.handle(FsmEvent::TcpConnected, 0);
        let a = fsm.handle(FsmEvent::Message(peer_open(30)), 0);
        assert_eq!(
            a[0],
            Action::Send(Message::Notification(Notification::bad_peer_as())),
            "AS 20205 ≠ expected 65000"
        );
        assert!(matches!(a[1], Action::Down(DownReason::ProtocolError(_))));
        assert_eq!(fsm.state(), State::Idle);
    }

    #[test]
    fn unacceptable_hold_time_in_open_rejected() {
        let mut fsm = Fsm::new(cfg().passive());
        fsm.handle(FsmEvent::Start, 0);
        fsm.handle(FsmEvent::TcpConnected, 0);
        let open = OpenMessage {
            asn: Asn(20_205),
            hold_time: 2,
            bgp_id: "192.0.2.9".parse().unwrap(),
            capabilities: vec![],
        };
        let a = fsm.handle(FsmEvent::Message(Message::Open(open)), 0);
        assert_eq!(
            a[0],
            Action::Send(Message::Notification(Notification::unacceptable_hold_time(2)))
        );
        assert_eq!(fsm.state(), State::Idle);
    }

    #[test]
    fn decode_error_maps_to_precise_notification() {
        let mut fsm = Fsm::new(cfg().passive());
        fsm.handle(FsmEvent::Start, 0);
        fsm.handle(FsmEvent::TcpConnected, 0);
        let a = fsm
            .handle(FsmEvent::DecodeError(WireError::BadValue { what: "hold time", value: 1 }), 0);
        assert_eq!(
            a[0],
            Action::Send(Message::Notification(Notification::unacceptable_hold_time(1)))
        );
        let mut fsm2 = established(cfg());
        let a = fsm2.handle(FsmEvent::DecodeError(WireError::BadVersion(3)), 0);
        assert_eq!(
            a[0],
            Action::Send(Message::Notification(Notification::unsupported_version(BGP_VERSION)))
        );
    }

    #[test]
    fn open_while_established_is_an_fsm_error() {
        let mut fsm = established(cfg());
        let a = fsm.handle(FsmEvent::Message(peer_open(30)), 1_000);
        assert_eq!(a[0], Action::Send(Message::Notification(Notification::fsm_error())));
        assert_eq!(fsm.state(), State::Idle);
    }

    #[test]
    fn admin_stop_sends_cease_when_half_open_or_up() {
        let mut fsm = established(cfg());
        let a = fsm.handle(FsmEvent::Stop, 1_000);
        assert_eq!(
            a,
            vec![
                Action::Send(Message::Notification(Notification::cease_admin_shutdown())),
                Action::Down(DownReason::AdminStop),
            ]
        );
        assert_eq!(fsm.state(), State::Idle);
    }

    #[test]
    fn connect_retry_redials_after_failure() {
        let mut fsm = Fsm::new(cfg());
        assert_eq!(fsm.handle(FsmEvent::Start, 0), vec![Action::StartConnect]);
        fsm.handle(FsmEvent::TcpFailed, 0);
        assert_eq!(fsm.state(), State::Active);
        assert_eq!(fsm.next_deadline(), Some(5_000));
        assert!(fsm.handle(FsmEvent::Timer, 4_999).is_empty());
        assert_eq!(fsm.handle(FsmEvent::Timer, 5_000), vec![Action::StartConnect]);
        assert_eq!(fsm.state(), State::Connect);
    }

    #[test]
    fn tcp_failure_mid_established_goes_down() {
        let mut fsm = established(cfg());
        let a = fsm.handle(FsmEvent::TcpFailed, 1_000);
        assert_eq!(a, vec![Action::Down(DownReason::TcpFailed)]);
        assert_eq!(fsm.state(), State::Idle);
    }

    #[test]
    fn open_hold_guards_the_half_open_session() {
        let mut fsm = Fsm::new(cfg().passive());
        fsm.handle(FsmEvent::Start, 0);
        fsm.handle(FsmEvent::TcpConnected, 0);
        // The peer never sends its OPEN; the large hold value trips.
        let a = fsm.handle(FsmEvent::Timer, 240_000);
        assert_eq!(a[0], Action::Send(Message::Notification(Notification::hold_timer_expired())));
        assert_eq!(fsm.state(), State::Idle);
    }

    #[test]
    fn two_octet_only_peer_negotiates_two_octet_config() {
        let mut fsm = Fsm::new(cfg().passive());
        fsm.handle(FsmEvent::Start, 0);
        fsm.handle(FsmEvent::TcpConnected, 0);
        let open = OpenMessage {
            asn: Asn(20_205),
            hold_time: 30,
            bgp_id: "192.0.2.9".parse().unwrap(),
            capabilities: vec![],
        };
        fsm.handle(FsmEvent::Message(Message::Open(open)), 0);
        assert!(!fsm.info().unwrap().config.four_octet_as);
    }
}
