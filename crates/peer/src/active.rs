//! The outbound BGP speaker: dial, handshake, stream UPDATEs.
//!
//! [`ActiveSpeaker`] is the client half the loopback bridge and the
//! ingest benchmark use to feed a live collector. The handshake is driven
//! through the same [`Fsm`] as the collector side — OPEN out, OPEN in,
//! KEEPALIVE exchange — synchronously on the calling thread (a handshake
//! is strictly sequential, so threads would buy nothing). Once
//! Established, a background reader drains the peer's keepalives (and
//! watches for a NOTIFICATION) while the caller streams UPDATEs;
//! [`ActiveSpeaker::tick`] keeps our own keepalive cadence against the
//! injected clock.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::Arc;
use std::time::Duration;

use kcc_bgp_wire::{Message, Notification, SessionConfig, UpdatePacket};

use crate::clock::Clock;
use crate::fsm::{Action, DownReason, EstablishedInfo, Fsm, FsmConfig, FsmEvent, State};
use crate::transport::{write_message, MessageReader, TransportError};

/// Failures on the active side.
#[derive(Debug)]
pub enum PeerError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Transport/decode failure.
    Transport(TransportError),
    /// The handshake ended without reaching Established.
    Handshake(DownReason),
    /// The peer tore the session down.
    PeerClosed(Option<Notification>),
    /// Our own FSM tore the session down (e.g. hold-timer expiry after
    /// the collector went silent); the NOTIFICATION was already sent.
    SessionDown(DownReason),
}

impl std::fmt::Display for PeerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerError::Io(e) => write!(f, "socket: {e}"),
            PeerError::Transport(e) => write!(f, "transport: {e}"),
            PeerError::Handshake(r) => write!(f, "handshake failed: {r:?}"),
            PeerError::PeerClosed(n) => write!(f, "peer closed the session: {n:?}"),
            PeerError::SessionDown(r) => write!(f, "session torn down locally: {r:?}"),
        }
    }
}

impl std::error::Error for PeerError {}

impl From<std::io::Error> for PeerError {
    fn from(e: std::io::Error) -> Self {
        PeerError::Io(e)
    }
}

impl From<TransportError> for PeerError {
    fn from(e: TransportError) -> Self {
        PeerError::Transport(e)
    }
}

/// An established outbound session streaming UPDATEs to a collector.
pub struct ActiveSpeaker {
    stream: TcpStream,
    info: EstablishedInfo,
    fsm: Fsm,
    clock: Arc<dyn Clock>,
    /// NOTIFICATIONs seen by the background reader.
    incoming: Receiver<Option<Notification>>,
    peer_down: Arc<AtomicBool>,
    /// Clock time of the last inbound message, maintained by the reader.
    last_heard_ms: Arc<std::sync::atomic::AtomicU64>,
    reader: Option<std::thread::JoinHandle<()>>,
    updates_sent: u64,
}

impl std::fmt::Debug for ActiveSpeaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveSpeaker")
            .field("info", &self.info)
            .field("updates_sent", &self.updates_sent)
            .finish()
    }
}

impl ActiveSpeaker {
    /// Dials `addr` and completes the BGP handshake. Blocks until
    /// Established or failure; `timeout` bounds both the dial and each
    /// handshake read.
    pub fn connect(
        addr: SocketAddr,
        cfg: FsmConfig,
        clock: Arc<dyn Clock>,
        timeout: Duration,
    ) -> Result<Self, PeerError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;

        let mut fsm = Fsm::new(cfg);
        let mut reader = MessageReader::new(stream.try_clone()?, SessionConfig::default(), true);
        let mut write_cfg = SessionConfig::default();
        let now = clock.now_ms();
        let mut pending = fsm.handle(FsmEvent::Start, now);
        pending.extend(fsm.handle(FsmEvent::TcpConnected, now));

        let mut info: Option<EstablishedInfo> = None;
        while info.is_none() {
            for action in pending.drain(..) {
                match action {
                    Action::Send(m) => {
                        write_message(&stream, &m, &write_cfg).map_err(PeerError::Io)?
                    }
                    Action::Up(i) => {
                        write_cfg = i.config;
                        info = Some(i);
                    }
                    Action::Down(reason) => return Err(PeerError::Handshake(reason)),
                    Action::StartConnect => {} // already connected
                    Action::Deliver(_) => {}   // no UPDATEs during handshake
                }
            }
            if info.is_some() {
                break;
            }
            let message =
                reader.read_message()?.ok_or(PeerError::Handshake(DownReason::TcpFailed))?;
            pending = fsm.handle(FsmEvent::Message(message), clock.now_ms());
        }
        let info = info.expect("loop exits only with info");

        // Established: hand the read side to a drain thread. It consumes
        // keepalives and flags a NOTIFICATION or EOF.
        stream.set_read_timeout(None)?;
        let (tx, rx) = mpsc::channel();
        let peer_down = Arc::new(AtomicBool::new(false));
        let down_flag = Arc::clone(&peer_down);
        let last_heard_ms = Arc::new(std::sync::atomic::AtomicU64::new(clock.now_ms()));
        let heard = Arc::clone(&last_heard_ms);
        let reader_clock = Arc::clone(&clock);
        let reader_handle = std::thread::spawn(move || {
            loop {
                match reader.read_message() {
                    Ok(Some(Message::Notification(n))) => {
                        // Send before raising the flag so check_peer
                        // always finds the NOTIFICATION it reports.
                        let _ = tx.send(Some(n));
                        down_flag.store(true, Ordering::SeqCst);
                        return;
                    }
                    Ok(Some(_)) => {
                        // Keepalives (a collector sends nothing else):
                        // record liveness for the hold timer.
                        heard.store(reader_clock.now_ms(), Ordering::SeqCst);
                    }
                    Ok(None) | Err(_) => {
                        let _ = tx.send(None);
                        down_flag.store(true, Ordering::SeqCst);
                        return;
                    }
                }
            }
        });

        Ok(ActiveSpeaker {
            stream,
            info,
            fsm,
            clock,
            incoming: rx,
            peer_down,
            last_heard_ms,
            reader: Some(reader_handle),
            updates_sent: 0,
        })
    }

    /// Negotiated session parameters.
    pub fn info(&self) -> &EstablishedInfo {
        &self.info
    }

    /// UPDATEs sent so far.
    pub fn updates_sent(&self) -> u64 {
        self.updates_sent
    }

    fn check_peer(&self) -> Result<(), PeerError> {
        if self.peer_down.load(Ordering::SeqCst) {
            let n = self.incoming.try_recv().ok().flatten();
            return Err(PeerError::PeerClosed(n));
        }
        Ok(())
    }

    /// Sends one UPDATE with the negotiated encoding.
    pub fn send_update(&mut self, packet: &UpdatePacket) -> Result<(), PeerError> {
        self.check_peer()?;
        crate::transport::write_update(&self.stream, packet, &self.info.config)?;
        // Any message we send proves our liveness to the peer.
        self.fsm.note_message_sent(self.clock.now_ms());
        self.updates_sent += 1;
        Ok(())
    }

    /// Sends a KEEPALIVE if our cadence timer is due. Call periodically
    /// during idle stretches.
    pub fn tick(&mut self) -> Result<(), PeerError> {
        self.check_peer()?;
        // Liveness the drain thread observed resets the hold timer
        // before the deadline check.
        let heard = self.last_heard_ms.load(Ordering::SeqCst);
        self.fsm.note_message_received(heard);
        for action in self.fsm.handle(FsmEvent::Timer, self.clock.now_ms()) {
            match action {
                Action::Send(m) => write_message(&self.stream, &m, &self.info.config)?,
                Action::Down(reason) => {
                    // Any NOTIFICATION was written by the Send above;
                    // close and refuse further traffic.
                    self.peer_down.store(true, Ordering::SeqCst);
                    let _ = self.stream.shutdown(std::net::Shutdown::Both);
                    return Err(PeerError::SessionDown(reason));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Graceful teardown: Cease NOTIFICATION, then close.
    pub fn close(mut self) -> Result<(), PeerError> {
        let cease = Message::Notification(Notification::cease_admin_shutdown());
        let result = write_message(&self.stream, &cease, &self.info.config);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
        result.map_err(PeerError::Io)
    }

    /// True while the FSM believes the session is up (informational).
    pub fn is_established(&self) -> bool {
        self.fsm.state() == State::Established && !self.peer_down.load(Ordering::SeqCst)
    }
}

impl Drop for ActiveSpeaker {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}
