//! Drives one inbound BGP session over a real `TcpStream`.
//!
//! Layout per session: a **reader thread** turns the byte stream into
//! decoded messages on a channel; the **session loop** (the calling
//! thread — the collector spawns one thread per accepted connection)
//! multiplexes those messages with FSM timer deadlines via
//! `recv_timeout`, executes the FSM's actions against the socket, and
//! reports [`SessionEvent`]s to the daemon. No async runtime: two OS
//! threads per session, which at collector scale (hundreds of peers) is
//! exactly the deployment shape the original RouteViews quaggas used.

use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

use kcc_bgp_wire::{Message, SessionConfig, UpdatePacket};
use kcc_collector::ShutdownFlag;

use crate::clock::Clock;
use crate::fsm::{Action, DownReason, EstablishedInfo, Fsm, FsmConfig, FsmEvent};
use crate::transport::{write_message, MessageReader, TransportError};

/// What a session reports to the daemon, in order.
#[derive(Debug)]
pub enum SessionEvent {
    /// The handshake completed.
    Established {
        /// Negotiated parameters.
        info: EstablishedInfo,
        /// The peer's transport address.
        remote: SocketAddr,
    },
    /// An UPDATE arrived (only ever after `Established`).
    Update {
        /// Negotiated parameters of the session it arrived on.
        info: EstablishedInfo,
        /// The peer's transport address (same as its `Established`).
        remote: SocketAddr,
        /// The decoded packet (possibly many prefixes; boxed to keep the
        /// event small on the channel).
        packet: Box<UpdatePacket>,
    },
    /// The session ended.
    Closed {
        /// Negotiated parameters, if the handshake ever completed.
        info: Option<EstablishedInfo>,
        /// Why.
        reason: DownReason,
    },
}

/// How often the session loop wakes to check the shutdown flag when no
/// FSM deadline is nearer.
const SHUTDOWN_POLL: Duration = Duration::from_millis(100);
/// While stopping, how long an empty queue must stay empty before the
/// session ceases (lets the reader thread finish an in-flight message).
const STOP_DRAIN_POLL: Duration = Duration::from_millis(50);
/// While stopping, cease after this long without processing a message —
/// measured from the last *progress*, so a backlogged session on a slow
/// host finishes its drain instead of dropping received updates.
const STOP_GRACE_MS: u64 = 2_000;
/// Absolute cap on the stopping drain, so a peer that floods forever
/// cannot hold the daemon open.
const STOP_HARD_CAP_MS: u64 = 30_000;

enum ReaderItem {
    Msg(Message),
    Err(TransportError),
    Eof,
}

/// Serves one accepted connection until the session closes, reporting
/// progress on `events`. Returns when the session is down; the socket is
/// closed on exit. `shutdown` requests a graceful Cease.
pub fn serve_inbound(
    stream: TcpStream,
    cfg: FsmConfig,
    clock: Arc<dyn Clock>,
    events: Sender<SessionEvent>,
    shutdown: ShutdownFlag,
) {
    let remote = match stream.peer_addr() {
        Ok(a) => a,
        Err(_) => {
            let _ = events.send(SessionEvent::Closed { info: None, reason: DownReason::TcpFailed });
            return;
        }
    };
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            let _ = events.send(SessionEvent::Closed { info: None, reason: DownReason::TcpFailed });
            return;
        }
    };

    let (tx, rx) = mpsc::channel::<ReaderItem>();
    let reader = std::thread::spawn(move || {
        let mut reader = MessageReader::new(reader_stream, SessionConfig::default(), true);
        loop {
            match reader.read_message() {
                Ok(Some(m)) => {
                    if tx.send(ReaderItem::Msg(m)).is_err() {
                        return;
                    }
                }
                Ok(None) => {
                    let _ = tx.send(ReaderItem::Eof);
                    return;
                }
                Err(e) => {
                    let _ = tx.send(ReaderItem::Err(e));
                    return;
                }
            }
        }
    });

    let mut fsm = Fsm::new(cfg.passive());
    let mut info: Option<EstablishedInfo> = None;
    let mut write_cfg = SessionConfig::default();
    let now = clock.now_ms();
    let mut pending = fsm.handle(FsmEvent::Start, now);
    pending.extend(fsm.handle(FsmEvent::TcpConnected, now));

    let down_reason: Option<DownReason>;
    let mut stopping_since: Option<u64> = None;
    let mut last_progress: u64 = clock.now_ms();
    'session: loop {
        for action in pending.drain(..) {
            match action {
                Action::Send(m) => {
                    if write_message(&stream, &m, &write_cfg).is_err() {
                        down_reason = Some(DownReason::TcpFailed);
                        break 'session;
                    }
                }
                Action::Up(i) => {
                    write_cfg = i.config;
                    info = Some(i.clone());
                    let _ = events.send(SessionEvent::Established { info: i, remote });
                }
                Action::Deliver(packet) => {
                    let i = info.clone().expect("Deliver only after Up");
                    let _ = events.send(SessionEvent::Update {
                        info: i,
                        remote,
                        packet: Box::new(packet),
                    });
                }
                Action::Down(reason) => {
                    down_reason = Some(reason);
                    break 'session;
                }
                Action::StartConnect => unreachable!("passive sessions never dial"),
            }
        }

        // Graceful stop: on shutdown, keep draining messages the peer
        // already sent (through to EOF for peers that closed) so no
        // received update is dropped, but cap the grace period so a
        // still-flooding peer cannot hold the daemon open.
        if shutdown.is_triggered() && stopping_since.is_none() {
            let now = clock.now_ms();
            stopping_since = Some(now);
            last_progress = now;
        }
        if let Some(since) = stopping_since {
            let now = clock.now_ms();
            if now.saturating_sub(last_progress) >= STOP_GRACE_MS
                || now.saturating_sub(since) >= STOP_HARD_CAP_MS
            {
                pending = fsm.handle(FsmEvent::Stop, now);
                if pending.is_empty() {
                    down_reason = Some(DownReason::AdminStop);
                    break 'session;
                }
                continue;
            }
        }

        // Fire due timers regardless of channel pressure: a peer that
        // floods messages faster than the poll timeout must not starve
        // our keepalive cadence (or, once it goes silent mid-flood, the
        // hold timer).
        let now = clock.now_ms();
        if fsm.next_deadline().is_some_and(|d| now >= d) {
            pending = fsm.handle(FsmEvent::Timer, now);
            continue;
        }
        let wait = if stopping_since.is_some() {
            STOP_DRAIN_POLL
        } else {
            match fsm.next_deadline() {
                Some(d) => Duration::from_millis(d.saturating_sub(now)).min(SHUTDOWN_POLL),
                None => SHUTDOWN_POLL,
            }
        };
        pending = match rx.recv_timeout(wait) {
            // Stopping and the queue is momentarily dry: keep polling —
            // the loop top Ceases once the STOP_GRACE_MS quiet window
            // (or the hard cap) elapses, so a peer that merely stalls
            // mid-burst is not cut off after one 50 ms poll.
            Err(RecvTimeoutError::Timeout) if stopping_since.is_some() => Vec::new(),
            Ok(ReaderItem::Msg(m)) => {
                last_progress = clock.now_ms();
                fsm.handle(FsmEvent::Message(m), last_progress)
            }
            Ok(ReaderItem::Err(e)) => match e {
                TransportError::Wire(w) => fsm.handle(FsmEvent::DecodeError(w), clock.now_ms()),
                _ => fsm.handle(FsmEvent::TcpFailed, clock.now_ms()),
            },
            Ok(ReaderItem::Eof) => fsm.handle(FsmEvent::TcpFailed, clock.now_ms()),
            Err(RecvTimeoutError::Timeout) => fsm.handle(FsmEvent::Timer, clock.now_ms()),
            Err(RecvTimeoutError::Disconnected) => fsm.handle(FsmEvent::TcpFailed, clock.now_ms()),
        };
    }

    // Closing both directions unblocks the reader thread.
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = reader.join();
    let reason = down_reason.unwrap_or(DownReason::TcpFailed);
    let _ = events.send(SessionEvent::Closed { info, reason });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::WallClock;
    use kcc_bgp_types::Asn;
    use kcc_bgp_wire::{Notification, OpenMessage};
    use std::net::TcpListener;

    fn collector_cfg() -> FsmConfig {
        FsmConfig::new(Asn(3333), "198.51.100.1".parse().unwrap()).with_hold_time(30)
    }

    /// Full handshake + one UPDATE + Cease against a live runner thread,
    /// with the test playing the peer over a real loopback socket.
    #[test]
    fn inbound_session_end_to_end_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = mpsc::channel();
        let shutdown = ShutdownFlag::new();
        let flag = shutdown.clone();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            serve_inbound(stream, collector_cfg(), Arc::new(WallClock::new()), tx, flag);
        });

        let peer = TcpStream::connect(addr).unwrap();
        let cfg = SessionConfig::default();
        // Peer sends its OPEN and reads the collector's.
        let open = OpenMessage::standard(Asn(20_205), "192.0.2.9".parse().unwrap(), 90);
        write_message(&peer, &Message::Open(open), &cfg).unwrap();
        let mut reader = MessageReader::new(peer.try_clone().unwrap(), cfg, true);
        let got = reader.read_message().unwrap().unwrap();
        assert!(matches!(got, Message::Open(_)));
        // Exchange keepalives.
        write_message(&peer, &Message::Keepalive, &cfg).unwrap();
        assert_eq!(reader.read_message().unwrap().unwrap(), Message::Keepalive);
        let ev = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let SessionEvent::Established { info, .. } = ev else {
            panic!("expected Established, got {ev:?}");
        };
        assert_eq!(info.peer_asn, Asn(20_205));
        assert_eq!(info.hold_time, 30, "min(collector 30, peer 90)");

        // One UPDATE flows through.
        let packet = UpdatePacket::withdraw("10.0.0.0/8".parse().unwrap());
        write_message(&peer, &Message::Update(packet.clone()), &cfg).unwrap();
        let ev = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let SessionEvent::Update { packet: got, .. } = ev else {
            panic!("expected Update, got {ev:?}");
        };
        assert_eq!(*got, packet);

        // Cease tears the session down.
        write_message(&peer, &Message::Notification(Notification::cease_admin_shutdown()), &cfg)
            .unwrap();
        let ev = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let SessionEvent::Closed { reason, info } = ev else {
            panic!("expected Closed, got {ev:?}");
        };
        assert!(matches!(reason, DownReason::PeerNotification(_)));
        assert!(info.is_some());
        server.join().unwrap();
    }

    /// A peer that connects and vanishes produces a Closed event, not a
    /// hang.
    #[test]
    fn abrupt_disconnect_reports_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = mpsc::channel();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            serve_inbound(
                stream,
                collector_cfg(),
                Arc::new(WallClock::new()),
                tx,
                ShutdownFlag::new(),
            );
        });
        let peer = TcpStream::connect(addr).unwrap();
        drop(peer);
        let ev = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(ev, SessionEvent::Closed { info: None, .. }));
        server.join().unwrap();
    }
}
