//! Rotated MRT dumps of live capture.
//!
//! Real collectors publish their update feed as a series of fixed-window
//! MRT files (`updates.20200315.0000`, …). [`MrtRotator`] does the same
//! for the live daemon: updates append to the current file, and the file
//! rotates after a configurable number of records — so live capture
//! round-trips through exactly the offline path ([`kcc_collector::MrtSource`],
//! `UpdateArchive::read_mrt`) the rest of the system analyzes.

use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};

use kcc_bgp_types::RouteUpdate;
use kcc_collector::archive::mrt_record_for;
use kcc_collector::PeerMeta;
use kcc_mrt::{MrtError, MrtWriter};

/// Rotation policy and naming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotateConfig {
    /// Directory the dump files are written into.
    pub dir: PathBuf,
    /// File-name prefix; files are `<prefix>.<seq>.mrt` with a
    /// zero-padded sequence number.
    pub prefix: String,
    /// Rotate after this many records (0 = never rotate; one big file).
    pub max_records: u64,
}

impl RotateConfig {
    /// Dumps named `updates.<seq>.mrt` in `dir`, rotating every
    /// `max_records` records.
    pub fn new(dir: impl Into<PathBuf>, max_records: u64) -> Self {
        RotateConfig { dir: dir.into(), prefix: "updates".to_owned(), max_records }
    }
}

/// Writes live updates into rotating MRT files.
///
/// The file being written carries a `.part` suffix
/// (`updates.00000.mrt.part`) and is renamed to its final `.mrt` name
/// only when rotated out or finished — so a concurrent reader scanning
/// the dump directory for `*.mrt` (e.g. `kcc_collector`'s directory
/// source) only ever sees complete files.
#[derive(Debug)]
pub struct MrtRotator {
    cfg: RotateConfig,
    epoch_seconds: u32,
    writer: Option<MrtWriter<BufWriter<File>>>,
    current_path: Option<PathBuf>,
    records_in_file: u64,
    seq: u64,
    finished: Vec<PathBuf>,
    total_records: u64,
}

impl MrtRotator {
    /// A rotator writing into `cfg.dir` (created if missing).
    pub fn new(cfg: RotateConfig, epoch_seconds: u32) -> Result<Self, MrtError> {
        std::fs::create_dir_all(&cfg.dir)?;
        Ok(MrtRotator {
            cfg,
            epoch_seconds,
            writer: None,
            current_path: None,
            records_in_file: 0,
            seq: 0,
            finished: Vec::new(),
            total_records: 0,
        })
    }

    fn open_next(&mut self) -> Result<(), MrtError> {
        let path = self.cfg.dir.join(format!("{}.{:05}.mrt", self.cfg.prefix, self.seq));
        self.seq += 1;
        self.writer = Some(MrtWriter::new(BufWriter::new(File::create(part_path(&path))?)));
        self.current_path = Some(path);
        self.records_in_file = 0;
        Ok(())
    }

    /// Flushes and renames the in-progress `.part` file to its final
    /// `.mrt` name, recording it as finished.
    fn close_current(&mut self) -> Result<(), MrtError> {
        if let Some(mut w) = self.writer.take() {
            w.flush()?;
            drop(w);
            if let Some(p) = self.current_path.take() {
                std::fs::rename(part_path(&p), &p)?;
                self.finished.push(p);
            }
        }
        Ok(())
    }

    /// Appends one update as a BGP4MP record, rotating first if the
    /// current file is full.
    pub fn write(&mut self, meta: &PeerMeta, update: &RouteUpdate) -> Result<(), MrtError> {
        if self.writer.is_none()
            || (self.cfg.max_records > 0 && self.records_in_file >= self.cfg.max_records)
        {
            self.rotate()?;
        }
        let record = mrt_record_for(meta, self.epoch_seconds, update);
        self.writer.as_mut().expect("opened above").write_record(&record)?;
        self.records_in_file += 1;
        self.total_records += 1;
        Ok(())
    }

    /// Closes the current file (if any) and opens the next one.
    pub fn rotate(&mut self) -> Result<(), MrtError> {
        self.close_current()?;
        self.open_next()
    }

    /// Completed (rotated-out) dump files, in write order.
    pub fn finished_files(&self) -> &[PathBuf] {
        &self.finished
    }

    /// Total records written across all files.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Flushes and closes the current file; returns every dump written,
    /// in order.
    pub fn finish(mut self) -> Result<Vec<PathBuf>, MrtError> {
        self.close_current()?;
        Ok(self.finished)
    }
}

/// The in-progress name for a dump file: `<final>.part`.
fn part_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".part");
    PathBuf::from(os)
}

/// Concatenates rotated dump files into one MRT byte stream — the shape
/// `MrtSource` and `UpdateArchive::read_mrt` consume.
pub fn concat_dumps(files: &[impl AsRef<Path>]) -> std::io::Result<Vec<u8>> {
    let mut bytes = Vec::new();
    for f in files {
        bytes.extend(std::fs::read(f)?);
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{Asn, PathAttributes};
    use kcc_collector::{SessionKey, UpdateArchive};

    fn meta() -> PeerMeta {
        PeerMeta::normal(SessionKey::new("rrc00", Asn(20_205), "192.0.2.9".parse().unwrap()))
    }

    fn announce(t: u64) -> RouteUpdate {
        let attrs = PathAttributes {
            as_path: "20205 3356 12654".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        RouteUpdate::announce(t, "84.205.64.0/24".parse().unwrap(), attrs)
    }

    #[test]
    fn rotates_by_record_count_and_roundtrips() {
        let dir = std::env::temp_dir().join(format!("kcc_rotate_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut rot = MrtRotator::new(RotateConfig::new(&dir, 3), 100).unwrap();
        let m = meta();
        for i in 0..8u64 {
            rot.write(&m, &announce(i * 1_000_000)).unwrap();
        }
        assert_eq!(rot.total_records(), 8);
        let files = rot.finish().unwrap();
        assert_eq!(files.len(), 3, "8 records at 3/file → 3 files");

        let bytes = concat_dumps(&files).unwrap();
        let archive = UpdateArchive::read_mrt(&bytes[..], "rrc00", 100).unwrap();
        assert_eq!(archive.update_count(), 8);
        let rec = archive.session(&m.key).unwrap();
        let times: Vec<u64> = rec.updates.iter().map(|u| u.time_us).collect();
        assert_eq!(times, (0..8).map(|i| i * 1_000_000).collect::<Vec<_>>());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_progress_file_carries_part_suffix() {
        let dir = std::env::temp_dir().join(format!("kcc_rotate_part_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut rot = MrtRotator::new(RotateConfig::new(&dir, 2), 0).unwrap();
        let m = meta();
        let names = |d: &Path| {
            let mut v: Vec<String> = std::fs::read_dir(d)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            v.sort();
            v
        };
        rot.write(&m, &announce(0)).unwrap();
        assert_eq!(names(&dir), ["updates.00000.mrt.part"]);
        rot.write(&m, &announce(1)).unwrap();
        rot.write(&m, &announce(2)).unwrap(); // rotates the full file out
        assert_eq!(names(&dir), ["updates.00000.mrt", "updates.00001.mrt.part"]);
        let files = rot.finish().unwrap();
        assert_eq!(names(&dir), ["updates.00000.mrt", "updates.00001.mrt"]);
        assert!(files.iter().all(|f| f.extension().is_some_and(|e| e == "mrt")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_max_records_never_rotates() {
        let dir = std::env::temp_dir().join(format!("kcc_rotate_one_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut rot = MrtRotator::new(RotateConfig::new(&dir, 0), 0).unwrap();
        let m = meta();
        for i in 0..10u64 {
            rot.write(&m, &announce(i)).unwrap();
        }
        let files = rot.finish().unwrap();
        assert_eq!(files.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
