//! BGP message framing over `std::io` byte streams.
//!
//! BGP messages are length-prefixed: a 19-byte header (16-byte marker,
//! 2-byte length, 1-byte type) followed by up to 4077 body bytes.
//! [`MessageReader`] reads exactly one message per call and hands the
//! bytes to `kcc_bgp_wire`'s codec; a clean EOF *between* messages is a
//! normal end-of-stream, while EOF mid-message is an error.
//!
//! Decode configuration: AS_PATH width in UPDATEs depends on the 4-octet
//! capability negotiated in the OPEN exchange. The reader starts from the
//! given [`SessionConfig`] and re-derives the width itself when it
//! decodes the peer's OPEN — the OPEN's own encoding is width-independent
//! and always precedes the first UPDATE, so the switch is race-free even
//! when the reader runs on its own thread.

use std::io::{ErrorKind, Read, Write};

use bytes::{Buf, BytesMut};
use kcc_bgp_wire::{
    decode_message, encode_message, Message, SessionConfig, WireError, HEADER_LEN, MAX_MESSAGE_LEN,
};

/// Transport-level failures.
#[derive(Debug)]
pub enum TransportError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The stream ended in the middle of a message.
    UnexpectedEof,
    /// The bytes did not decode as a BGP message.
    Wire(WireError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport I/O: {e}"),
            TransportError::UnexpectedEof => write!(f, "stream ended mid-message"),
            TransportError::Wire(e) => write!(f, "wire decode: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Wire(e)
    }
}

/// Reads framed BGP messages from any byte stream.
#[derive(Debug)]
pub struct MessageReader<R: Read> {
    inner: R,
    cfg: SessionConfig,
    /// Whether we announced the 4-octet capability (the negotiated width
    /// is the AND of both sides).
    we_offer_four_octet: bool,
}

impl<R: Read> MessageReader<R> {
    /// Wraps a stream. `cfg` seeds the decode configuration; once the
    /// peer's OPEN is seen the 4-octet width is re-derived from its
    /// capabilities (ANDed with `we_offer_four_octet`).
    pub fn new(inner: R, cfg: SessionConfig, we_offer_four_octet: bool) -> Self {
        MessageReader { inner, cfg, we_offer_four_octet }
    }

    /// The current decode configuration.
    pub fn config(&self) -> SessionConfig {
        self.cfg
    }

    /// Reads one complete message. `Ok(None)` on a clean EOF between
    /// messages.
    pub fn read_message(&mut self) -> Result<Option<Message>, TransportError> {
        let mut header = [0u8; HEADER_LEN];
        // First byte decides clean-EOF vs mid-message EOF.
        match self.inner.read(&mut header[..1]) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => return self.read_message(),
            Err(e) => return Err(e.into()),
        }
        self.read_exact(&mut header[1..])?;
        let len = u16::from_be_bytes([header[16], header[17]]) as usize;
        if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&len) {
            return Err(WireError::BadLength(len as u16).into());
        }
        let mut frame = vec![0u8; len];
        frame[..HEADER_LEN].copy_from_slice(&header);
        self.read_exact(&mut frame[HEADER_LEN..])?;
        let mut buf = &frame[..];
        let message = decode_message(&mut buf, &self.cfg)?;
        if buf.has_remaining() {
            return Err(WireError::BadLength(len as u16).into());
        }
        if let Message::Open(open) = &message {
            self.cfg.four_octet_as = self.we_offer_four_octet && open.supports_four_octet();
        }
        Ok(Some(message))
    }

    fn read_exact(&mut self, mut buf: &mut [u8]) -> Result<(), TransportError> {
        while !buf.is_empty() {
            match self.inner.read(buf) {
                Ok(0) => return Err(TransportError::UnexpectedEof),
                Ok(n) => buf = &mut buf[n..],
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }
}

/// Reads one message with a default-configured reader (handshake use).
pub fn read_message<R: Read>(r: R, cfg: &SessionConfig) -> Result<Option<Message>, TransportError> {
    MessageReader::new(r, *cfg, cfg.four_octet_as).read_message()
}

/// Encodes and writes one complete message.
pub fn write_message<W: Write>(
    mut w: W,
    message: &Message,
    cfg: &SessionConfig,
) -> std::io::Result<()> {
    let mut buf = BytesMut::new();
    encode_message(message, cfg, &mut buf);
    w.write_all(&buf)
}

/// Encodes and writes one UPDATE from a borrowed packet — the hot-path
/// variant that skips cloning into [`Message::Update`].
pub fn write_update<W: Write>(
    mut w: W,
    packet: &kcc_bgp_wire::UpdatePacket,
    cfg: &SessionConfig,
) -> std::io::Result<()> {
    let mut buf = BytesMut::new();
    kcc_bgp_wire::encode_update(packet, cfg, &mut buf);
    w.write_all(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{Asn, PathAttributes};
    use kcc_bgp_wire::{OpenMessage, UpdatePacket};

    fn wire(messages: &[Message], cfg: &SessionConfig) -> Vec<u8> {
        let mut out = Vec::new();
        for m in messages {
            write_message(&mut out, m, cfg).unwrap();
        }
        out
    }

    #[test]
    fn reads_back_to_back_messages_and_clean_eof() {
        let cfg = SessionConfig::default();
        let m1 = Message::Open(OpenMessage::standard(Asn(1), "1.1.1.1".parse().unwrap(), 90));
        let m2 = Message::Keepalive;
        let bytes = wire(&[m1.clone(), m2.clone()], &cfg);
        let mut r = MessageReader::new(&bytes[..], cfg, true);
        assert_eq!(r.read_message().unwrap(), Some(m1));
        assert_eq!(r.read_message().unwrap(), Some(m2));
        assert!(r.read_message().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn eof_mid_message_is_an_error() {
        let cfg = SessionConfig::default();
        let bytes = wire(&[Message::Keepalive], &cfg);
        let mut r = MessageReader::new(&bytes[..10], cfg, true);
        assert!(matches!(r.read_message(), Err(TransportError::UnexpectedEof)));
    }

    #[test]
    fn reader_rederives_as_width_from_peer_open() {
        // Peer announces NO capabilities → 2-octet paths follow.
        let open = Message::Open(OpenMessage {
            asn: Asn(20_205),
            hold_time: 90,
            bgp_id: "192.0.2.9".parse().unwrap(),
            capabilities: vec![],
        });
        let two_octet = SessionConfig { four_octet_as: false };
        let attrs = PathAttributes {
            as_path: "20205 3356".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        let update = Message::Update(UpdatePacket::announce("10.0.0.0/8".parse().unwrap(), attrs));
        let mut bytes = wire(&[open], &SessionConfig::default());
        bytes.extend(wire(std::slice::from_ref(&update), &two_octet));

        // Reader starts four-octet (our default offer) but must switch
        // after the OPEN, or the UPDATE's 2-octet path misparses.
        let mut r = MessageReader::new(&bytes[..], SessionConfig::default(), true);
        assert!(matches!(r.read_message().unwrap(), Some(Message::Open(_))));
        assert!(!r.config().four_octet_as);
        assert_eq!(r.read_message().unwrap(), Some(update));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = vec![0xFF; 16];
        bytes.extend([0xFF, 0xFF]); // length 65535
        bytes.push(4);
        let mut r = MessageReader::new(&bytes[..], SessionConfig::default(), true);
        assert!(matches!(r.read_message(), Err(TransportError::Wire(WireError::BadLength(_)))));
    }
}
