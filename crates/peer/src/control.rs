//! The daemon's control socket: a line protocol over TCP driving the
//! running/candidate [`ConfigStore`] from outside the process.
//!
//! One command per line, one-or-more response lines per command, and the
//! final response line always starts with `ok` or `err` — trivially
//! scriptable with `nc`. Edits accumulate in the candidate config and
//! take effect only on `commit`, exactly the semantics of
//! [`ConfigStore`]:
//!
//! ```text
//! show running | show candidate | show status
//! set stamp arrival | set stamp logical <us>
//! peer policy any | peer policy allow
//! peer allow <asn> | peer remove <asn>
//! route-server add <asn>@<ip> | route-server del <asn>@<ip>
//! listen add <addr> | listen del <addr>
//! trace default <level> | trace <target> <level>
//! metrics
//! commit | discard | quit
//! ```
//!
//! The server handles one connection at a time (an operator tool, not a
//! data plane) and exits when the daemon's [`ShutdownFlag`] trips.

use std::collections::BTreeSet;
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use kcc_bgp_types::Asn;
use kcc_collector::ShutdownFlag;

use crate::collector::StampMode;
use crate::config::{ConfigStore, DaemonConfig, PeerPolicy};
use crate::trace::TraceLevel;

/// The control-socket server thread.
pub struct ControlServer {
    local_addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ControlServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlServer").field("local_addr", &self.local_addr).finish()
    }
}

impl ControlServer {
    /// Binds the control socket and serves commands against `store`
    /// until `shutdown` trips.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        store: Arc<ConfigStore>,
        shutdown: ShutdownFlag,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let handle = std::thread::Builder::new()
            .name("kcc-control".to_owned())
            .spawn(move || serve(listener, store, shutdown))?;
        Ok(ControlServer { local_addr, handle: Some(handle) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Waits for the server thread to exit (trigger the shutdown flag
    /// first).
    pub fn join(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve(listener: TcpListener, store: Arc<ConfigStore>, shutdown: ShutdownFlag) {
    while !shutdown.is_triggered() {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = serve_connection(stream, &store, &shutdown);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    store: &ConfigStore,
    shutdown: &ShutdownFlag,
) -> io::Result<()> {
    // A finite read timeout lets the shutdown flag end an idle
    // connection instead of parking the thread forever.
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shutdown.is_triggered() {
            return Ok(());
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // peer closed
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) => return Err(e),
        }
        let cmd = line.trim();
        if cmd.is_empty() {
            continue;
        }
        if cmd == "quit" {
            writeln!(writer, "ok bye")?;
            return Ok(());
        }
        let response = dispatch(cmd, store);
        writer.write_all(response.as_bytes())?;
    }
}

/// Executes one command; the returned string ends with a newline and its
/// final line starts with `ok` or `err`.
fn dispatch(cmd: &str, store: &ConfigStore) -> String {
    match run_command(cmd, store) {
        Ok(msg) => msg,
        Err(msg) => format!("err {msg}\n"),
    }
}

fn run_command(cmd: &str, store: &ConfigStore) -> Result<String, String> {
    let words: Vec<&str> = cmd.split_whitespace().collect();
    match words.as_slice() {
        ["show", "running"] => Ok(format!("{}ok\n", render(&store.running()))),
        ["show", "candidate"] => Ok(format!("{}ok\n", render(&store.candidate()))),
        ["show", "status"] => {
            Ok(format!("generation={}\ndirty={}\nok\n", store.generation(), store.dirty()))
        }
        ["metrics"] => Ok(format!("{}ok\n", store.metrics().render())),
        ["set", "stamp", "arrival"] => {
            store.edit(|c| c.stamp = StampMode::Arrival);
            Ok("ok stamp=arrival\n".to_owned())
        }
        ["set", "stamp", "logical", us] => {
            let us: u64 = us.parse().map_err(|_| format!("bad spacing {us:?}"))?;
            store.edit(|c| c.stamp = StampMode::Logical { spacing_us: us });
            Ok(format!("ok stamp=logical:{us}\n"))
        }
        ["peer", "policy", "any"] => {
            store.edit(|c| c.peers = PeerPolicy::AcceptAny);
            Ok("ok peers=any\n".to_owned())
        }
        ["peer", "policy", "allow"] => {
            store.edit(|c| {
                if !matches!(c.peers, PeerPolicy::Allow(_)) {
                    c.peers = PeerPolicy::Allow(BTreeSet::new());
                }
            });
            Ok("ok peers=allow\n".to_owned())
        }
        ["peer", "allow", asn] => {
            let asn = parse_asn(asn)?;
            store.edit(|c| match &mut c.peers {
                PeerPolicy::Allow(set) => {
                    set.insert(asn);
                }
                PeerPolicy::AcceptAny => {
                    c.peers = PeerPolicy::Allow([asn].into());
                }
            });
            Ok(format!("ok allow AS{}\n", asn.0))
        }
        ["peer", "remove", asn] => {
            let asn = parse_asn(asn)?;
            let mut removed = false;
            store.edit(|c| {
                if let PeerPolicy::Allow(set) = &mut c.peers {
                    removed = set.remove(&asn);
                }
            });
            if removed {
                Ok(format!("ok removed AS{}\n", asn.0))
            } else {
                Err(format!("AS{} not in allowlist (policy must be allow)", asn.0))
            }
        }
        ["route-server", "add", spec] => {
            let (asn, ip) = parse_peer_spec(spec)?;
            store.edit(|c| {
                if !c.route_servers.contains(&(asn, ip)) {
                    c.route_servers.push((asn, ip));
                }
            });
            Ok(format!("ok route-server AS{}@{ip}\n", asn.0))
        }
        ["route-server", "del", spec] => {
            let (asn, ip) = parse_peer_spec(spec)?;
            let mut removed = false;
            store.edit(|c| {
                let before = c.route_servers.len();
                c.route_servers.retain(|&e| e != (asn, ip));
                removed = c.route_servers.len() != before;
            });
            if removed {
                Ok(format!("ok removed route-server AS{}@{ip}\n", asn.0))
            } else {
                Err(format!("AS{}@{ip} is not a route server", asn.0))
            }
        }
        ["listen", "add", addr] => {
            let addr: SocketAddr = addr.parse().map_err(|_| format!("bad address {addr:?}"))?;
            store.edit(|c| {
                if !c.listen.contains(&addr) {
                    c.listen.push(addr);
                }
            });
            Ok(format!("ok listen {addr}\n"))
        }
        ["listen", "del", addr] => {
            let addr: SocketAddr = addr.parse().map_err(|_| format!("bad address {addr:?}"))?;
            let mut removed = false;
            store.edit(|c| {
                let before = c.listen.len();
                c.listen.retain(|&a| a != addr);
                removed = c.listen.len() != before;
            });
            if removed {
                Ok(format!("ok removed listen {addr}\n"))
            } else {
                Err(format!("{addr} is not an extra listener"))
            }
        }
        ["trace", "default", level] => {
            let level = parse_level(level)?;
            store.edit(|c| c.trace.default = level);
            Ok(format!("ok trace default={level}\n"))
        }
        ["trace", target, level] => {
            let level = parse_level(level)?;
            let target = (*target).to_owned();
            let reply = format!("ok trace {target}={level}\n");
            store.edit(move |c| {
                c.trace.targets.insert(target, level);
            });
            Ok(reply)
        }
        ["commit"] => {
            let generation = store.commit();
            Ok(format!("ok generation={generation}\n"))
        }
        ["discard"] => {
            if store.discard() {
                Ok("ok discarded\n".to_owned())
            } else {
                Ok("ok clean\n".to_owned())
            }
        }
        _ => Err(format!("unknown command {cmd:?}")),
    }
}

fn parse_asn(s: &str) -> Result<Asn, String> {
    let digits = s.strip_prefix("AS").unwrap_or(s);
    digits.parse::<u32>().map(Asn).map_err(|_| format!("bad ASN {s:?}"))
}

fn parse_level(s: &str) -> Result<TraceLevel, String> {
    TraceLevel::parse(s).ok_or_else(|| format!("bad level {s:?} (off|error|info|debug|trace)"))
}

fn parse_peer_spec(s: &str) -> Result<(Asn, IpAddr), String> {
    let (asn, ip) = s.split_once('@').ok_or_else(|| format!("expected ASN@IP, got {s:?}"))?;
    let asn = parse_asn(asn)?;
    let ip: IpAddr = ip.parse().map_err(|_| format!("bad IP {ip:?}"))?;
    Ok((asn, ip))
}

fn render(cfg: &DaemonConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "stamp={}\n",
        match cfg.stamp {
            StampMode::Arrival => "arrival".to_owned(),
            StampMode::Logical { spacing_us } => format!("logical:{spacing_us}"),
        }
    ));
    out.push_str(&match &cfg.peers {
        PeerPolicy::AcceptAny => "peers=any\n".to_owned(),
        PeerPolicy::Allow(set) => {
            let list: Vec<String> = set.iter().map(|a| format!("AS{}", a.0)).collect();
            format!("peers=allow:{}\n", list.join(","))
        }
    });
    let rs: Vec<String> =
        cfg.route_servers.iter().map(|(a, ip)| format!("AS{}@{ip}", a.0)).collect();
    out.push_str(&format!("route_servers={}\n", rs.join(",")));
    out.push_str(&match &cfg.mrt {
        None => "mrt=none\n".to_owned(),
        Some(rc) => format!(
            "mrt=dir:{},prefix:{},max_records:{}\n",
            rc.dir.display(),
            rc.prefix,
            rc.max_records
        ),
    });
    let listen: Vec<String> = cfg.listen.iter().map(|a| a.to_string()).collect();
    out.push_str(&format!("listen={}\n", listen.join(",")));
    let mut trace = vec![format!("default:{}", cfg.trace.default)];
    trace.extend(cfg.trace.targets.iter().map(|(t, l)| format!("{t}:{l}")));
    out.push_str(&format!("trace={}\n", trace.join(",")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_store() -> ConfigStore {
        ConfigStore::new(DaemonConfig::default())
    }

    fn ok(store: &ConfigStore, cmd: &str) -> String {
        let out = dispatch(cmd, store);
        assert!(out.lines().last().unwrap().starts_with("ok"), "command {cmd:?} failed: {out}");
        out
    }

    #[test]
    fn edit_then_commit_round_trip() {
        let store = fresh_store();
        ok(&store, "set stamp logical 1000");
        ok(&store, "peer allow 65001");
        ok(&store, "route-server add AS65001@10.0.0.1");
        ok(&store, "trace reactor debug");
        assert!(store.dirty());
        assert!(ok(&store, "show candidate").contains("stamp=logical:1000"));
        assert!(ok(&store, "show running").contains("stamp=arrival"), "not yet committed");

        ok(&store, "commit");
        let running = ok(&store, "show running");
        assert!(running.contains("stamp=logical:1000"));
        assert!(running.contains("peers=allow:AS65001"));
        assert!(running.contains("route_servers=AS65001@10.0.0.1"));
        assert!(running.contains("trace=default:error,reactor:debug"));
        assert!(store.trace().enabled("reactor", TraceLevel::Debug));
    }

    #[test]
    fn metrics_command_renders_the_registry() {
        let store = fresh_store();
        store.metrics().counter("kcc_control_test_total").add(7);
        let out = ok(&store, "metrics");
        assert!(out.contains("# TYPE kcc_control_test_total counter"), "{out}");
        assert!(out.contains("kcc_control_test_total 7"), "{out}");
        assert!(out.ends_with("ok\n"), "{out}");
    }

    #[test]
    fn discard_resets_candidate() {
        let store = fresh_store();
        ok(&store, "set stamp logical 77");
        assert_eq!(ok(&store, "discard"), "ok discarded\n");
        assert!(ok(&store, "show candidate").contains("stamp=arrival"));
        assert_eq!(ok(&store, "discard"), "ok clean\n");
    }

    #[test]
    fn malformed_commands_err_without_editing() {
        let store = fresh_store();
        for bad in [
            "set stamp logical nope",
            "peer allow nonsense",
            "route-server add 65001",
            "trace reactor loud",
            "listen add not-an-addr",
            "frobnicate",
            "peer remove 65001",
        ] {
            let out = dispatch(bad, &store);
            assert!(out.starts_with("err "), "{bad:?} should fail, got {out}");
        }
        assert!(!store.dirty(), "failed commands must not dirty the candidate");
    }

    #[test]
    fn server_answers_over_tcp() {
        let store = Arc::new(fresh_store());
        let shutdown = ShutdownFlag::new();
        let server =
            ControlServer::bind("127.0.0.1:0", Arc::clone(&store), shutdown.clone()).unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        writeln!(conn, "set stamp logical 500").unwrap();
        writeln!(conn, "commit").unwrap();
        writeln!(conn, "quit").unwrap();
        let mut reply = String::new();
        let mut reader = BufReader::new(conn);
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            reply.push_str(&line);
        }
        assert!(reply.contains("ok stamp=logical:500"));
        assert!(reply.contains("ok generation=2"));
        assert!(reply.contains("ok bye"));
        assert_eq!(store.running().stamp, StampMode::Logical { spacing_us: 500 });
        shutdown.trigger();
        server.join();
    }
}
