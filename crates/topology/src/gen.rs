//! Seeded hierarchical topology generation.
//!
//! The generator builds a three-tier Internet: a tier-1 clique, transit
//! ASes that buy from tier-1s (and peer among themselves), and stub ASes
//! that buy from transits. Multi-homing and *parallel* interconnections at
//! different cities are generated deliberately — they are what gives
//! community exploration room to happen.

use kcc_bgp_types::{Asn, GeoTag, Prefix};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::behavior::{BehaviorMix, CommunityBehavior};
use crate::igp::IgpMap;
use crate::model::{AsEdge, AsNode, RouterSpec, Tier, Topology};
use crate::relationship::Relationship;

/// The RIPE RIS beacon origin AS, reserved for beacon-hosting topologies.
pub const BEACON_ORIGIN_ASN: Asn = Asn(12_654);

/// Famous tier-1 ASNs used for the first few generated tier-1 nodes, so
/// simulated paths read like the paper's examples (`3356 174 ...`).
const TIER1_POOL: [u32; 8] = [3356, 174, 1299, 2914, 6939, 3257, 6453, 701];

/// Generator configuration. All fields have sensible defaults; ranges are
/// inclusive `(lo, hi)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyConfig {
    /// RNG seed; equal seeds give equal topologies.
    pub seed: u64,
    /// Number of tier-1 ASes (full P2P clique).
    pub n_tier1: usize,
    /// Number of transit ASes.
    pub n_transit: usize,
    /// Number of stub ASes.
    pub n_stub: usize,
    /// Router count range for tier-1 ASes.
    pub routers_tier1: (u16, u16),
    /// Router count range for transit ASes.
    pub routers_transit: (u16, u16),
    /// Providers per transit AS.
    pub providers_per_transit: (usize, usize),
    /// Providers per stub AS.
    pub providers_per_stub: (usize, usize),
    /// Probability that two transit ASes peer.
    pub transit_peering_prob: f64,
    /// Probability that a customer-provider pair gets a second, parallel
    /// link at a different city.
    pub parallel_link_prob: f64,
    /// Prefixes originated per stub.
    pub prefixes_per_stub: (usize, usize),
    /// Fraction of stub prefixes that are IPv6.
    pub ipv6_share: f64,
    /// Community behavior mix.
    pub behavior_mix: BehaviorMix,
    /// If true, adds the beacon origin AS12654 (customer of two transits)
    /// hosting the RIPE-style beacon prefixes supplied by the caller.
    pub with_beacon_origin: bool,
    /// Beacon prefixes to originate from AS12654.
    pub beacon_prefixes: Vec<Prefix>,
}

impl TopologyConfig {
    /// A configuration scaled to approximately `n_ases` total ASes,
    /// keeping the default tier ratios (roughly 1 tier-1 : 4 transit :
    /// 15 stub). Sweeps use this to turn "topology size" into a single
    /// scalar dimension; at least two transits are always generated so a
    /// collector and the beacon origin have distinct attachment points.
    pub fn sized(n_ases: usize, seed: u64) -> Self {
        let n_tier1 = (n_ases / 20).clamp(2, 8);
        let n_transit = (n_ases / 5).max(2);
        let n_stub = n_ases.saturating_sub(n_tier1 + n_transit).max(1);
        TopologyConfig { seed, n_tier1, n_transit, n_stub, ..Default::default() }
    }

    /// Replaces the community behavior mix (builder style).
    pub fn with_behavior_mix(mut self, mix: BehaviorMix) -> Self {
        self.behavior_mix = mix;
        self
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            seed: 42,
            n_tier1: 4,
            n_transit: 16,
            n_stub: 60,
            routers_tier1: (3, 6),
            routers_transit: (2, 4),
            providers_per_transit: (1, 2),
            providers_per_stub: (1, 3),
            transit_peering_prob: 0.25,
            parallel_link_prob: 0.35,
            prefixes_per_stub: (1, 3),
            ipv6_share: 0.12,
            behavior_mix: BehaviorMix::default(),
            with_beacon_origin: true,
            beacon_prefixes: vec!["84.205.64.0/24".parse().expect("literal prefix")],
        }
    }
}

fn range_sample(rng: &mut StdRng, (lo, hi): (u16, u16)) -> u16 {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

fn range_sample_usize(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

/// Continents weighted toward EU (4) and NA (5), matching where collector
/// peers concentrate.
fn random_continent(rng: &mut StdRng) -> u8 {
    const WEIGHTED: [u8; 10] = [4, 4, 4, 5, 5, 5, 3, 2, 6, 7];
    WEIGHTED[rng.gen_range(0..WEIGHTED.len())]
}

fn random_location(rng: &mut StdRng, continent: u8) -> GeoTag {
    // Countries are blocked per continent (50 ids each); cities per country.
    let country = (continent as u16 - 1) * 50 + rng.gen_range(0u16..50);
    let city = country * 8 + rng.gen_range(0u16..8);
    GeoTag::new(continent, country, city)
}

fn make_routers(rng: &mut StdRng, n: u16, home: u8, spread: bool) -> Vec<RouterSpec> {
    (0..n)
        .map(|index| {
            let continent =
                if spread && index > 0 && rng.gen_bool(0.5) { random_continent(rng) } else { home };
            RouterSpec { index, location: random_location(rng, continent) }
        })
        .collect()
}

fn assign_behavior(rng: &mut StdRng, tier: Tier, mix: &BehaviorMix) -> CommunityBehavior {
    let tags_geo = match tier {
        Tier::Tier1 | Tier::Transit => rng.gen_bool(mix.transit_tags_geo),
        Tier::Stub => false,
    };
    // Cleaning direction is exclusive: an AS that cleans picks one place.
    // Both bools are always drawn so that RNG consumption (and therefore
    // the rest of the generated topology) is independent of the mix —
    // ablations can vary the mix without confounding the comparison.
    let ingress_roll = rng.gen_bool(mix.cleans_ingress);
    let egress_roll = rng.gen_bool(mix.cleans_egress);
    let cleans_ingress = ingress_roll;
    let cleans_egress = !ingress_roll && egress_roll;
    CommunityBehavior { tags_geo, cleans_egress, cleans_ingress }
}

/// Allocates the `i`-th stub's `k`-th prefix deterministically.
fn stub_prefix(i: usize, k: usize, v6: bool) -> Prefix {
    if v6 {
        let site = (i as u32) * 8 + k as u32;
        format!("2001:db8:{:x}::/48", site & 0xFFFF).parse().expect("generated v6 prefix")
    } else {
        // Each stub owns 1.(i).0.0/16 carved into /24s; i stays < 256 by
        // construction (the generator caps n_stub accordingly).
        let hi = 1 + (i / 250) as u8;
        let mid = (i % 250) as u8;
        Prefix::v4_unchecked(hi, mid, k as u8, 0, 24)
    }
}

/// Picks a provider by preferential attachment over current degree.
fn pick_preferential(rng: &mut StdRng, candidates: &[Asn], degree: impl Fn(Asn) -> usize) -> Asn {
    let weights: Vec<usize> = candidates.iter().map(|&a| degree(a) + 1).collect();
    let total: usize = weights.iter().sum();
    let mut pick = rng.gen_range(0..total);
    for (asn, w) in candidates.iter().zip(weights) {
        if pick < w {
            return *asn;
        }
        pick -= w;
    }
    *candidates.last().expect("non-empty candidates")
}

/// Generates a topology from the configuration.
pub fn generate(cfg: &TopologyConfig) -> Topology {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut topo = Topology::new();
    let mut tier1_asns = Vec::with_capacity(cfg.n_tier1);
    let mut transit_asns = Vec::with_capacity(cfg.n_transit);

    // Tier-1 clique.
    for i in 0..cfg.n_tier1 {
        let asn = Asn(*TIER1_POOL.get(i).unwrap_or(&(100 + i as u32)));
        let home = random_continent(&mut rng);
        let n_routers = range_sample(&mut rng, cfg.routers_tier1);
        let routers = make_routers(&mut rng, n_routers, home, true);
        topo.add_node(AsNode {
            asn,
            tier: Tier::Tier1,
            igp: IgpMap::ring(routers.len() as u16),
            routers,
            behavior: assign_behavior(&mut rng, Tier::Tier1, &cfg.behavior_mix),
            prefixes: Vec::new(),
            route_server: false,
        });
        tier1_asns.push(asn);
    }
    for i in 0..tier1_asns.len() {
        for j in i + 1..tier1_asns.len() {
            let (a, b) = (tier1_asns[i], tier1_asns[j]);
            let ar = rng.gen_range(0..topo.node(a).expect("node").routers.len() as u16);
            let br = rng.gen_range(0..topo.node(b).expect("node").routers.len() as u16);
            topo.add_edge(AsEdge { a, b, rel: Relationship::PeerPeer, a_router: ar, b_router: br });
        }
    }

    // Transit ASes.
    for i in 0..cfg.n_transit {
        let asn = Asn(20_000 + i as u32);
        let home = random_continent(&mut rng);
        let n_routers = range_sample(&mut rng, cfg.routers_transit);
        let routers = make_routers(&mut rng, n_routers, home, true);
        topo.add_node(AsNode {
            asn,
            tier: Tier::Transit,
            igp: IgpMap::ring(routers.len() as u16),
            routers,
            behavior: assign_behavior(&mut rng, Tier::Transit, &cfg.behavior_mix),
            prefixes: vec![Prefix::v4_unchecked(60, i as u8, 0, 0, 24)],
            route_server: false,
        });
        transit_asns.push(asn);

        let n_providers = range_sample_usize(&mut rng, cfg.providers_per_transit);
        let mut chosen: Vec<Asn> = Vec::new();
        for _ in 0..n_providers.min(tier1_asns.len()) {
            let degree = |a: Asn| topo.edges_of(a).count();
            let p = pick_preferential(&mut rng, &tier1_asns, degree);
            if chosen.contains(&p) {
                continue;
            }
            chosen.push(p);
            add_cp_links(&mut rng, &mut topo, asn, p, cfg.parallel_link_prob);
        }
    }

    // Transit-transit peering.
    for i in 0..transit_asns.len() {
        for j in i + 1..transit_asns.len() {
            if rng.gen_bool(cfg.transit_peering_prob) {
                let (a, b) = (transit_asns[i], transit_asns[j]);
                let ar = rng.gen_range(0..topo.node(a).expect("node").routers.len() as u16);
                let br = rng.gen_range(0..topo.node(b).expect("node").routers.len() as u16);
                topo.add_edge(AsEdge {
                    a,
                    b,
                    rel: Relationship::PeerPeer,
                    a_router: ar,
                    b_router: br,
                });
            }
        }
    }

    // Stubs.
    for i in 0..cfg.n_stub {
        let asn = Asn(40_000 + i as u32);
        let home = random_continent(&mut rng);
        let n_prefixes = range_sample_usize(&mut rng, cfg.prefixes_per_stub);
        let prefixes =
            (0..n_prefixes).map(|k| stub_prefix(i, k, rng.gen_bool(cfg.ipv6_share))).collect();
        topo.add_node(AsNode {
            asn,
            tier: Tier::Stub,
            routers: vec![RouterSpec { index: 0, location: random_location(&mut rng, home) }],
            igp: IgpMap::ring(1),
            behavior: assign_behavior(&mut rng, Tier::Stub, &cfg.behavior_mix),
            prefixes,
            route_server: false,
        });

        let n_providers = range_sample_usize(&mut rng, cfg.providers_per_stub);
        let mut chosen: Vec<Asn> = Vec::new();
        for _ in 0..n_providers.min(transit_asns.len()) {
            let degree = |a: Asn| topo.edges_of(a).count();
            let p = pick_preferential(&mut rng, &transit_asns, degree);
            if chosen.contains(&p) {
                continue;
            }
            chosen.push(p);
            add_cp_links(&mut rng, &mut topo, asn, p, cfg.parallel_link_prob);
        }
    }

    // Beacon origin: AS12654 with the RIS beacon prefixes, dual-homed to
    // two transits so withdrawals trigger path exploration.
    if cfg.with_beacon_origin && !transit_asns.is_empty() {
        let home = 4; // Europe, like the real RIS beacons
        topo.add_node(AsNode {
            asn: BEACON_ORIGIN_ASN,
            tier: Tier::Stub,
            routers: vec![RouterSpec { index: 0, location: random_location(&mut rng, home) }],
            igp: IgpMap::ring(1),
            behavior: CommunityBehavior::BLIND_PROPAGATOR,
            prefixes: cfg.beacon_prefixes.clone(),
            route_server: false,
        });
        let first = transit_asns[0];
        add_cp_links(&mut rng, &mut topo, BEACON_ORIGIN_ASN, first, 1.0);
        if transit_asns.len() > 1 {
            let second = transit_asns[1];
            add_cp_links(&mut rng, &mut topo, BEACON_ORIGIN_ASN, second, 0.0);
        }
    }

    topo
}

/// Adds a customer-provider link (customer `c`, provider `p`), possibly
/// with a parallel second link at a different provider router.
fn add_cp_links(rng: &mut StdRng, topo: &mut Topology, c: Asn, p: Asn, parallel_prob: f64) {
    let c_routers = topo.node(c).expect("customer node").routers.len() as u16;
    let p_routers = topo.node(p).expect("provider node").routers.len() as u16;
    let cr = rng.gen_range(0..c_routers);
    let pr = rng.gen_range(0..p_routers);
    topo.add_edge(AsEdge {
        a: c,
        b: p,
        rel: Relationship::CustomerProvider,
        a_router: cr,
        b_router: pr,
    });
    if p_routers > 1 && rng.gen_bool(parallel_prob) {
        let pr2 = (pr + 1 + rng.gen_range(0..p_routers - 1)) % p_routers;
        let cr2 = if c_routers > 1 { rng.gen_range(0..c_routers) } else { cr };
        topo.add_edge(AsEdge {
            a: c,
            b: p,
            rel: Relationship::CustomerProvider,
            a_router: cr2,
            b_router: pr2,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationship::RouteSource;

    #[test]
    fn deterministic_generation() {
        let cfg = TopologyConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TopologyConfig::default());
        let b = generate(&TopologyConfig { seed: 7, ..Default::default() });
        // Edge sets should differ with overwhelming probability.
        assert_ne!(a.edges(), b.edges());
    }

    #[test]
    fn expected_node_count() {
        let cfg = TopologyConfig::default();
        let t = generate(&cfg);
        // tier1 + transit + stub + beacon origin
        assert_eq!(t.node_count(), cfg.n_tier1 + cfg.n_transit + cfg.n_stub + 1);
    }

    #[test]
    fn tier1_forms_clique() {
        let cfg = TopologyConfig::default();
        let t = generate(&cfg);
        let tier1: Vec<Asn> = t.nodes().filter(|n| n.tier == Tier::Tier1).map(|n| n.asn).collect();
        assert_eq!(tier1.len(), cfg.n_tier1);
        for (i, &a) in tier1.iter().enumerate() {
            for &b in &tier1[i + 1..] {
                assert!(t.interconnection_count(a, b) >= 1, "tier1 {a} and {b} must interconnect");
                assert_eq!(t.neighbor_kind(a, b), Some(RouteSource::Peer));
            }
        }
    }

    #[test]
    fn every_transit_has_tier1_provider() {
        let t = generate(&TopologyConfig::default());
        for n in t.nodes().filter(|n| n.tier == Tier::Transit) {
            let has_provider = t
                .neighbors(n.asn)
                .iter()
                .any(|&nb| t.neighbor_kind(n.asn, nb) == Some(RouteSource::Provider));
            assert!(has_provider, "transit {} lacks a provider", n.asn);
        }
    }

    #[test]
    fn every_stub_has_provider_and_prefix() {
        let t = generate(&TopologyConfig::default());
        for n in t.nodes().filter(|n| n.tier == Tier::Stub) {
            let has_provider = t
                .neighbors(n.asn)
                .iter()
                .any(|&nb| t.neighbor_kind(n.asn, nb) == Some(RouteSource::Provider));
            assert!(has_provider, "stub {} lacks a provider", n.asn);
            assert!(!n.prefixes.is_empty(), "stub {} lacks prefixes", n.asn);
        }
    }

    #[test]
    fn beacon_origin_present_and_dual_homed() {
        let t = generate(&TopologyConfig::default());
        let b = t.node(BEACON_ORIGIN_ASN).expect("beacon origin");
        assert_eq!(b.prefixes[0].to_string(), "84.205.64.0/24");
        assert!(t.neighbors(BEACON_ORIGIN_ASN).len() >= 2, "beacon origin must be dual-homed");
    }

    #[test]
    fn stubs_never_geo_tag() {
        let t = generate(&TopologyConfig::default());
        for n in t.nodes().filter(|n| n.tier == Tier::Stub) {
            assert!(!n.behavior.tags_geo);
        }
    }

    #[test]
    fn some_transits_geo_tag_with_default_mix() {
        let t = generate(&TopologyConfig::default());
        let taggers = t.nodes().filter(|n| n.tier != Tier::Stub && n.behavior.tags_geo).count();
        assert!(taggers > 0, "default mix should produce geo-taggers");
    }

    #[test]
    fn cleaning_directions_exclusive() {
        let t = generate(&TopologyConfig::default());
        for n in t.nodes() {
            assert!(
                !(n.behavior.cleans_egress && n.behavior.cleans_ingress),
                "AS {} cleans both directions",
                n.asn
            );
        }
    }

    #[test]
    fn v6_prefixes_generated() {
        let cfg = TopologyConfig { ipv6_share: 1.0, ..Default::default() };
        let t = generate(&cfg);
        let v6 = t
            .nodes()
            .filter(|n| n.tier == Tier::Stub)
            .flat_map(|n| &n.prefixes)
            .filter(|p| p.is_ipv6())
            .count();
        assert!(v6 > 0);
    }

    #[test]
    fn sized_configs_scale_and_generate() {
        for (n, seed) in [(20usize, 1u64), (60, 2), (200, 3)] {
            let cfg = TopologyConfig::sized(n, seed);
            assert_eq!(cfg.seed, seed);
            assert!(cfg.n_transit >= 2, "collector needs two transit attachment points");
            let total = cfg.n_tier1 + cfg.n_transit + cfg.n_stub;
            assert!(total >= n.min(5) && total <= n + 5, "sized({n}) produced {total} ASes");
            let t = generate(&cfg);
            assert_eq!(t.node_count(), total + 1); // + beacon origin
        }
        // Larger sizes produce strictly larger topologies.
        assert!(
            TopologyConfig::sized(200, 0).n_stub > TopologyConfig::sized(40, 0).n_stub,
            "stub count must grow with requested size"
        );
    }

    #[test]
    fn builder_helpers_replace_fields() {
        let mix = BehaviorMix { transit_tags_geo: 1.0, cleans_egress: 0.0, cleans_ingress: 0.0 };
        let cfg = TopologyConfig::sized(30, 9).with_behavior_mix(mix).with_seed(11);
        assert_eq!(cfg.seed, 11);
        assert!((cfg.behavior_mix.transit_tags_geo - 1.0).abs() < f64::EPSILON);
        // The mix reaches the generated ASes: every non-stub tags geo.
        let t = generate(&cfg);
        let non_stub_taggers =
            t.nodes().filter(|n| n.tier != Tier::Stub && n.behavior.tags_geo).count();
        let non_stub = t.nodes().filter(|n| n.tier != Tier::Stub).count();
        assert_eq!(non_stub_taggers, non_stub);
    }

    #[test]
    fn generated_asns_allocatable() {
        let t = generate(&TopologyConfig::default());
        for n in t.nodes() {
            assert!(n.asn.is_allocatable(), "AS {} not allocatable", n.asn);
        }
    }
}
