//! Seeded hierarchical topology generation.
//!
//! The generator builds a three-tier Internet: a tier-1 clique, transit
//! ASes that buy from tier-1s (and peer among themselves), and stub ASes
//! that buy from transits. Multi-homing and *parallel* interconnections at
//! different cities are generated deliberately — they are what gives
//! community exploration room to happen.

use kcc_bgp_types::{Asn, GeoTag, Prefix};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::behavior::{BehaviorMix, CommunityBehavior};
use crate::igp::IgpMap;
use crate::model::{AsEdge, AsNode, RouterSpec, Tier, Topology};
use crate::relationship::Relationship;

/// The RIPE RIS beacon origin AS, reserved for beacon-hosting topologies.
pub const BEACON_ORIGIN_ASN: Asn = Asn(12_654);

/// Famous tier-1 ASNs used for the first few generated tier-1 nodes, so
/// simulated paths read like the paper's examples (`3356 174 ...`).
const TIER1_POOL: [u32; 8] = [3356, 174, 1299, 2914, 6939, 3257, 6453, 701];

/// Generator configuration. All fields have sensible defaults; ranges are
/// inclusive `(lo, hi)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyConfig {
    /// RNG seed; equal seeds give equal topologies.
    pub seed: u64,
    /// Number of tier-1 ASes (full P2P clique).
    pub n_tier1: usize,
    /// Number of transit ASes.
    pub n_transit: usize,
    /// Number of stub ASes.
    pub n_stub: usize,
    /// Router count range for tier-1 ASes.
    pub routers_tier1: (u16, u16),
    /// Router count range for transit ASes.
    pub routers_transit: (u16, u16),
    /// Providers per transit AS.
    pub providers_per_transit: (usize, usize),
    /// Providers per stub AS.
    pub providers_per_stub: (usize, usize),
    /// Probability that two transit ASes peer.
    pub transit_peering_prob: f64,
    /// Probability that a customer-provider pair gets a second, parallel
    /// link at a different city.
    pub parallel_link_prob: f64,
    /// Prefixes originated per stub.
    pub prefixes_per_stub: (usize, usize),
    /// Fraction of stub prefixes that are IPv6.
    pub ipv6_share: f64,
    /// Community behavior mix.
    pub behavior_mix: BehaviorMix,
    /// If true, adds the beacon origin AS12654 (customer of two transits)
    /// hosting the RIPE-style beacon prefixes supplied by the caller.
    pub with_beacon_origin: bool,
    /// Beacon prefixes to originate from AS12654.
    pub beacon_prefixes: Vec<Prefix>,
}

impl TopologyConfig {
    /// A configuration scaled to approximately `n_ases` total ASes,
    /// keeping the default tier ratios (roughly 1 tier-1 : 4 transit :
    /// 15 stub). Sweeps use this to turn "topology size" into a single
    /// scalar dimension; at least two transits are always generated so a
    /// collector and the beacon origin have distinct attachment points.
    pub fn sized(n_ases: usize, seed: u64) -> Self {
        let n_tier1 = (n_ases / 20).clamp(2, 8);
        let n_transit = (n_ases / 5).max(2);
        let n_stub = n_ases.saturating_sub(n_tier1 + n_transit).max(1);
        TopologyConfig { seed, n_tier1, n_transit, n_stub, ..Default::default() }
    }

    /// Replaces the community behavior mix (builder style).
    pub fn with_behavior_mix(mut self, mix: BehaviorMix) -> Self {
        self.behavior_mix = mix;
        self
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            seed: 42,
            n_tier1: 4,
            n_transit: 16,
            n_stub: 60,
            routers_tier1: (3, 6),
            routers_transit: (2, 4),
            providers_per_transit: (1, 2),
            providers_per_stub: (1, 3),
            transit_peering_prob: 0.25,
            parallel_link_prob: 0.35,
            prefixes_per_stub: (1, 3),
            ipv6_share: 0.12,
            behavior_mix: BehaviorMix::default(),
            with_beacon_origin: true,
            beacon_prefixes: vec!["84.205.64.0/24".parse().expect("literal prefix")],
        }
    }
}

fn range_sample(rng: &mut StdRng, (lo, hi): (u16, u16)) -> u16 {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

fn range_sample_usize(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

/// Continents weighted toward EU (4) and NA (5), matching where collector
/// peers concentrate.
fn random_continent(rng: &mut StdRng) -> u8 {
    const WEIGHTED: [u8; 10] = [4, 4, 4, 5, 5, 5, 3, 2, 6, 7];
    WEIGHTED[rng.gen_range(0..WEIGHTED.len())]
}

fn random_location(rng: &mut StdRng, continent: u8) -> GeoTag {
    // Countries are blocked per continent (50 ids each); cities per country.
    let country = (continent as u16 - 1) * 50 + rng.gen_range(0u16..50);
    let city = country * 8 + rng.gen_range(0u16..8);
    GeoTag::new(continent, country, city)
}

fn make_routers(rng: &mut StdRng, n: u16, home: u8, spread: bool) -> Vec<RouterSpec> {
    (0..n)
        .map(|index| {
            let continent =
                if spread && index > 0 && rng.gen_bool(0.5) { random_continent(rng) } else { home };
            RouterSpec { index, location: random_location(rng, continent) }
        })
        .collect()
}

fn assign_behavior(rng: &mut StdRng, tier: Tier, mix: &BehaviorMix) -> CommunityBehavior {
    let tags_geo = match tier {
        Tier::Tier1 | Tier::Transit => rng.gen_bool(mix.transit_tags_geo),
        Tier::Stub => false,
    };
    // Cleaning direction is exclusive: an AS that cleans picks one place.
    // Both bools are always drawn so that RNG consumption (and therefore
    // the rest of the generated topology) is independent of the mix —
    // ablations can vary the mix without confounding the comparison.
    let ingress_roll = rng.gen_bool(mix.cleans_ingress);
    let egress_roll = rng.gen_bool(mix.cleans_egress);
    let cleans_ingress = ingress_roll;
    let cleans_egress = !ingress_roll && egress_roll;
    CommunityBehavior { tags_geo, cleans_egress, cleans_ingress }
}

/// Allocates the `i`-th stub's `k`-th prefix deterministically.
fn stub_prefix(i: usize, k: usize, v6: bool) -> Prefix {
    if v6 {
        let site = (i as u32) * 8 + k as u32;
        format!("2001:db8:{:x}::/48", site & 0xFFFF).parse().expect("generated v6 prefix")
    } else {
        // Each stub owns 1.(i).0.0/16 carved into /24s; i stays < 256 by
        // construction (the generator caps n_stub accordingly).
        let hi = 1 + (i / 250) as u8;
        let mid = (i % 250) as u8;
        Prefix::v4_unchecked(hi, mid, k as u8, 0, 24)
    }
}

/// Picks a provider by preferential attachment over current degree.
fn pick_preferential(rng: &mut StdRng, candidates: &[Asn], degree: impl Fn(Asn) -> usize) -> Asn {
    let weights: Vec<usize> = candidates.iter().map(|&a| degree(a) + 1).collect();
    let total: usize = weights.iter().sum();
    let mut pick = rng.gen_range(0..total);
    for (asn, w) in candidates.iter().zip(weights) {
        if pick < w {
            return *asn;
        }
        pick -= w;
    }
    *candidates.last().expect("non-empty candidates")
}

/// Generates a topology from the configuration.
pub fn generate(cfg: &TopologyConfig) -> Topology {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut topo = Topology::new();
    let mut tier1_asns = Vec::with_capacity(cfg.n_tier1);
    let mut transit_asns = Vec::with_capacity(cfg.n_transit);

    // Tier-1 clique.
    for i in 0..cfg.n_tier1 {
        let asn = Asn(*TIER1_POOL.get(i).unwrap_or(&(100 + i as u32)));
        let home = random_continent(&mut rng);
        let n_routers = range_sample(&mut rng, cfg.routers_tier1);
        let routers = make_routers(&mut rng, n_routers, home, true);
        topo.add_node(AsNode {
            asn,
            tier: Tier::Tier1,
            igp: IgpMap::ring(routers.len() as u16),
            routers,
            behavior: assign_behavior(&mut rng, Tier::Tier1, &cfg.behavior_mix),
            prefixes: Vec::new(),
            route_server: false,
        });
        tier1_asns.push(asn);
    }
    for i in 0..tier1_asns.len() {
        for j in i + 1..tier1_asns.len() {
            let (a, b) = (tier1_asns[i], tier1_asns[j]);
            let ar = rng.gen_range(0..topo.node(a).expect("node").routers.len() as u16);
            let br = rng.gen_range(0..topo.node(b).expect("node").routers.len() as u16);
            topo.add_edge(AsEdge { a, b, rel: Relationship::PeerPeer, a_router: ar, b_router: br });
        }
    }

    // Transit ASes.
    for i in 0..cfg.n_transit {
        let asn = Asn(20_000 + i as u32);
        let home = random_continent(&mut rng);
        let n_routers = range_sample(&mut rng, cfg.routers_transit);
        let routers = make_routers(&mut rng, n_routers, home, true);
        topo.add_node(AsNode {
            asn,
            tier: Tier::Transit,
            igp: IgpMap::ring(routers.len() as u16),
            routers,
            behavior: assign_behavior(&mut rng, Tier::Transit, &cfg.behavior_mix),
            prefixes: vec![Prefix::v4_unchecked(60, i as u8, 0, 0, 24)],
            route_server: false,
        });
        transit_asns.push(asn);

        let n_providers = range_sample_usize(&mut rng, cfg.providers_per_transit);
        let mut chosen: Vec<Asn> = Vec::new();
        for _ in 0..n_providers.min(tier1_asns.len()) {
            let degree = |a: Asn| topo.edges_of(a).count();
            let p = pick_preferential(&mut rng, &tier1_asns, degree);
            if chosen.contains(&p) {
                continue;
            }
            chosen.push(p);
            add_cp_links(&mut rng, &mut topo, asn, p, cfg.parallel_link_prob);
        }
    }

    // Transit-transit peering.
    for i in 0..transit_asns.len() {
        for j in i + 1..transit_asns.len() {
            if rng.gen_bool(cfg.transit_peering_prob) {
                let (a, b) = (transit_asns[i], transit_asns[j]);
                let ar = rng.gen_range(0..topo.node(a).expect("node").routers.len() as u16);
                let br = rng.gen_range(0..topo.node(b).expect("node").routers.len() as u16);
                topo.add_edge(AsEdge {
                    a,
                    b,
                    rel: Relationship::PeerPeer,
                    a_router: ar,
                    b_router: br,
                });
            }
        }
    }

    // Stubs.
    for i in 0..cfg.n_stub {
        let asn = Asn(40_000 + i as u32);
        let home = random_continent(&mut rng);
        let n_prefixes = range_sample_usize(&mut rng, cfg.prefixes_per_stub);
        let prefixes =
            (0..n_prefixes).map(|k| stub_prefix(i, k, rng.gen_bool(cfg.ipv6_share))).collect();
        topo.add_node(AsNode {
            asn,
            tier: Tier::Stub,
            routers: vec![RouterSpec { index: 0, location: random_location(&mut rng, home) }],
            igp: IgpMap::ring(1),
            behavior: assign_behavior(&mut rng, Tier::Stub, &cfg.behavior_mix),
            prefixes,
            route_server: false,
        });

        let n_providers = range_sample_usize(&mut rng, cfg.providers_per_stub);
        let mut chosen: Vec<Asn> = Vec::new();
        for _ in 0..n_providers.min(transit_asns.len()) {
            let degree = |a: Asn| topo.edges_of(a).count();
            let p = pick_preferential(&mut rng, &transit_asns, degree);
            if chosen.contains(&p) {
                continue;
            }
            chosen.push(p);
            add_cp_links(&mut rng, &mut topo, asn, p, cfg.parallel_link_prob);
        }
    }

    // Beacon origin: AS12654 with the RIS beacon prefixes, dual-homed to
    // two transits so withdrawals trigger path exploration.
    if cfg.with_beacon_origin && !transit_asns.is_empty() {
        let home = 4; // Europe, like the real RIS beacons
        topo.add_node(AsNode {
            asn: BEACON_ORIGIN_ASN,
            tier: Tier::Stub,
            routers: vec![RouterSpec { index: 0, location: random_location(&mut rng, home) }],
            igp: IgpMap::ring(1),
            behavior: CommunityBehavior::BLIND_PROPAGATOR,
            prefixes: cfg.beacon_prefixes.clone(),
            route_server: false,
        });
        let first = transit_asns[0];
        add_cp_links(&mut rng, &mut topo, BEACON_ORIGIN_ASN, first, 1.0);
        if transit_asns.len() > 1 {
            let second = transit_asns[1];
            add_cp_links(&mut rng, &mut topo, BEACON_ORIGIN_ASN, second, 0.0);
        }
    }

    topo
}

/// Internet-scale generator configuration (see [`generate_internet`]).
///
/// Unlike [`TopologyConfig`]'s dense three-tier lab, this builds a sparse
/// power-law AS graph: a tier-1 clique at the core, a transit hierarchy
/// grown by preferential attachment (rich ISPs attract more customers), a
/// degree-weighted peering mesh among transits, and single-router stub
/// leaves numbered from the 32-bit ASN space. Every edge carries a
/// [`Relationship`] annotation, from which `Network::from_topology`
/// derives Gao–Rexford import local-prefs and valley-free export filters.
#[derive(Debug, Clone, PartialEq)]
pub struct InternetConfig {
    /// RNG seed; equal seeds give equal topologies.
    pub seed: u64,
    /// Total AS count (tier-1 + transit + stub). The beacon origin is
    /// added on top when `with_beacon_origin` is set.
    pub n_ases: usize,
    /// Tier-1 clique size.
    pub n_tier1: usize,
    /// Fraction of ASes that provide transit.
    pub transit_share: f64,
    /// Multi-homing cap: each customer AS buys from 1..=`max_providers`
    /// upstreams.
    pub max_providers: usize,
    /// Expected peering links per transit AS.
    pub peering_per_transit: f64,
    /// Community behavior mix.
    pub behavior_mix: BehaviorMix,
    /// If true, adds beacon origin AS12654 dual-homed to two transits.
    pub with_beacon_origin: bool,
    /// Beacon prefixes originated from AS12654.
    pub beacon_prefixes: Vec<Prefix>,
}

impl InternetConfig {
    /// A configuration targeting approximately `n_ases` total ASes with
    /// the default shape parameters.
    pub fn sized(n_ases: usize, seed: u64) -> Self {
        InternetConfig { seed, n_ases, ..Default::default() }
    }
}

impl Default for InternetConfig {
    fn default() -> Self {
        InternetConfig {
            seed: 42,
            n_ases: 10_000,
            n_tier1: 8,
            transit_share: 0.15,
            max_providers: 3,
            peering_per_transit: 1.5,
            behavior_mix: BehaviorMix::default(),
            with_beacon_origin: true,
            beacon_prefixes: vec!["84.205.64.0/24".parse().expect("literal prefix")],
        }
    }
}

/// O(1) preferential attachment. A provider occupies one baseline slot
/// plus one slot per customer edge it has attracted, so sampling a
/// uniform slot implements "probability proportional to degree + 1"
/// without the O(edges) weight scan of [`pick_preferential`] — the
/// difference between milliseconds and hours at 75k ASes.
struct AttachmentList {
    slots: Vec<u32>,
}

impl AttachmentList {
    fn new() -> Self {
        AttachmentList { slots: Vec::new() }
    }

    /// Registers candidate `idx` with its baseline slot.
    fn add_candidate(&mut self, idx: u32) {
        self.slots.push(idx);
    }

    /// Records that candidate `idx` attracted one more edge.
    fn record(&mut self, idx: u32) {
        self.slots.push(idx);
    }

    fn pick(&self, rng: &mut StdRng) -> u32 {
        self.slots[rng.gen_range(0..self.slots.len())]
    }
}

/// Allocates the `i`-th internet stub's /24 deterministically: the stub
/// index packed into the middle octets starting at 2.0.0.0/24, disjoint
/// from the lab generator's 1.x.y.0/24 pool.
fn internet_stub_prefix(i: usize) -> Prefix {
    let hi = 2 + (i >> 16) as u8;
    Prefix::v4_unchecked(hi, ((i >> 8) & 0xFF) as u8, (i & 0xFF) as u8, 0, 24)
}

/// First ASN of the 32-bit stub plane (the first real-world 4-byte RIR
/// allocation), exercising the high [`AsNode::router_ip`] address plane.
pub const INTERNET_STUB_BASE_ASN: u32 = 131_072;

/// Generates an internet-like topology: power-law customer trees under a
/// tier-1 clique, a peering mesh among transits, and an optional beacon
/// origin. Runs in O(ASes + edges); 75k ASes generate in well under a
/// second.
pub fn generate_internet(cfg: &InternetConfig) -> Topology {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut topo = Topology::new();

    let n_tier1 = cfg.n_tier1.clamp(2, TIER1_POOL.len() + 92);
    let n_transit = (((cfg.n_ases as f64) * cfg.transit_share) as usize).max(2);
    let n_stub = cfg.n_ases.saturating_sub(n_tier1 + n_transit);
    let max_providers = cfg.max_providers.max(1);

    // Transit-capable providers in creation order; `upstream` samples
    // over their indexes preferentially.
    let mut providers: Vec<Asn> = Vec::with_capacity(n_tier1 + n_transit);
    let mut upstream = AttachmentList::new();

    // Tier-1 clique.
    for i in 0..n_tier1 {
        let asn = Asn(*TIER1_POOL.get(i).unwrap_or(&(100 + i as u32)));
        let home = random_continent(&mut rng);
        let routers = make_routers(&mut rng, 3, home, true);
        topo.add_node(AsNode {
            asn,
            tier: Tier::Tier1,
            igp: IgpMap::ring(routers.len() as u16),
            routers,
            behavior: assign_behavior(&mut rng, Tier::Tier1, &cfg.behavior_mix),
            prefixes: Vec::new(),
            route_server: false,
        });
        upstream.add_candidate(providers.len() as u32);
        providers.push(asn);
    }
    for i in 0..n_tier1 {
        for j in i + 1..n_tier1 {
            let (a, b) = (providers[i], providers[j]);
            let ar = rng.gen_range(0..topo.node(a).expect("node").routers.len() as u16);
            let br = rng.gen_range(0..topo.node(b).expect("node").routers.len() as u16);
            topo.add_edge(AsEdge { a, b, rel: Relationship::PeerPeer, a_router: ar, b_router: br });
        }
    }

    // Transit hierarchy. Each transit buys from ASes created before it
    // (tier-1s and earlier transits), so customer-provider edges form a
    // DAG and preferential attachment yields a power-law degree
    // distribution with hierarchy depth.
    let mut transit_asns: Vec<Asn> = Vec::with_capacity(n_transit);
    let mut peer_slots = AttachmentList::new();
    for i in 0..n_transit {
        // Skip AS_TRANS (23456), which is reserved.
        let v = 20_000 + i as u32;
        let asn = Asn(if v >= 23_456 { v + 1 } else { v });
        let home = random_continent(&mut rng);
        let n_routers = if rng.gen_bool(0.3) { 2 } else { 1 };
        let routers = make_routers(&mut rng, n_routers, home, true);
        topo.add_node(AsNode {
            asn,
            tier: Tier::Transit,
            igp: IgpMap::ring(n_routers),
            routers,
            behavior: assign_behavior(&mut rng, Tier::Transit, &cfg.behavior_mix),
            prefixes: Vec::new(),
            route_server: false,
        });
        attach_customer(&mut rng, &mut topo, asn, &providers, &mut upstream, max_providers);
        upstream.add_candidate(providers.len() as u32);
        providers.push(asn);
        peer_slots.add_candidate(i as u32);
        transit_asns.push(asn);
    }

    // Degree-weighted peering mesh among transits (IXP-style: the more
    // peers a transit already has, the likelier it attracts another).
    let target_links = ((n_transit as f64) * cfg.peering_per_transit / 2.0).round() as usize;
    let mut linked: std::collections::BTreeSet<(Asn, Asn)> = std::collections::BTreeSet::new();
    let mut made = 0usize;
    let mut attempts = 0usize;
    while made < target_links && attempts < target_links.saturating_mul(10) {
        attempts += 1;
        let ai = peer_slots.pick(&mut rng) as usize;
        let bi = peer_slots.pick(&mut rng) as usize;
        if ai == bi {
            continue;
        }
        let (a, b) = (transit_asns[ai], transit_asns[bi]);
        let pair = (a.min(b), a.max(b));
        if !linked.insert(pair) {
            continue;
        }
        let ar = rng.gen_range(0..topo.node(a).expect("node").routers.len() as u16);
        let br = rng.gen_range(0..topo.node(b).expect("node").routers.len() as u16);
        topo.add_edge(AsEdge { a, b, rel: Relationship::PeerPeer, a_router: ar, b_router: br });
        peer_slots.record(ai as u32);
        peer_slots.record(bi as u32);
        made += 1;
    }

    // Stub leaves, numbered from the 32-bit ASN plane.
    for i in 0..n_stub {
        let asn = Asn(INTERNET_STUB_BASE_ASN + i as u32);
        let home = random_continent(&mut rng);
        topo.add_node(AsNode {
            asn,
            tier: Tier::Stub,
            routers: vec![RouterSpec { index: 0, location: random_location(&mut rng, home) }],
            igp: IgpMap::ring(1),
            behavior: assign_behavior(&mut rng, Tier::Stub, &cfg.behavior_mix),
            prefixes: vec![internet_stub_prefix(i)],
            route_server: false,
        });
        attach_customer(&mut rng, &mut topo, asn, &providers, &mut upstream, max_providers);
    }

    // Beacon origin: AS12654 dual-homed to two transits so withdrawals
    // trigger path exploration, exactly like the lab generator.
    if cfg.with_beacon_origin && transit_asns.len() >= 2 {
        topo.add_node(AsNode {
            asn: BEACON_ORIGIN_ASN,
            tier: Tier::Stub,
            routers: vec![RouterSpec { index: 0, location: random_location(&mut rng, 4) }],
            igp: IgpMap::ring(1),
            behavior: CommunityBehavior::BLIND_PROPAGATOR,
            prefixes: cfg.beacon_prefixes.clone(),
            route_server: false,
        });
        for &p in &transit_asns[..2] {
            let pr = rng.gen_range(0..topo.node(p).expect("node").routers.len() as u16);
            topo.add_edge(AsEdge {
                a: BEACON_ORIGIN_ASN,
                b: p,
                rel: Relationship::CustomerProvider,
                a_router: 0,
                b_router: pr,
            });
        }
    }

    topo
}

/// Buys transit for `customer` from 1..=`max_providers` distinct
/// upstreams picked preferentially from `upstream` (candidates are all
/// created before `customer`, so the customer cone stays acyclic).
fn attach_customer(
    rng: &mut StdRng,
    topo: &mut Topology,
    customer: Asn,
    providers: &[Asn],
    upstream: &mut AttachmentList,
    max_providers: usize,
) {
    let want = (1 + rng.gen_range(0..max_providers)).min(providers.len());
    let c_routers = topo.node(customer).expect("customer node").routers.len() as u16;
    let mut chosen: Vec<u32> = Vec::with_capacity(want);
    let mut attempts = 0;
    while chosen.len() < want && attempts < want * 8 {
        attempts += 1;
        let slot = upstream.pick(rng);
        if chosen.contains(&slot) {
            continue;
        }
        chosen.push(slot);
        let p = providers[slot as usize];
        let pr = rng.gen_range(0..topo.node(p).expect("provider node").routers.len() as u16);
        let cr = if c_routers > 1 { rng.gen_range(0..c_routers) } else { 0 };
        topo.add_edge(AsEdge {
            a: customer,
            b: p,
            rel: Relationship::CustomerProvider,
            a_router: cr,
            b_router: pr,
        });
        upstream.record(slot);
    }
}

/// Adds a customer-provider link (customer `c`, provider `p`), possibly
/// with a parallel second link at a different provider router.
fn add_cp_links(rng: &mut StdRng, topo: &mut Topology, c: Asn, p: Asn, parallel_prob: f64) {
    let c_routers = topo.node(c).expect("customer node").routers.len() as u16;
    let p_routers = topo.node(p).expect("provider node").routers.len() as u16;
    let cr = rng.gen_range(0..c_routers);
    let pr = rng.gen_range(0..p_routers);
    topo.add_edge(AsEdge {
        a: c,
        b: p,
        rel: Relationship::CustomerProvider,
        a_router: cr,
        b_router: pr,
    });
    if p_routers > 1 && rng.gen_bool(parallel_prob) {
        let pr2 = (pr + 1 + rng.gen_range(0..p_routers - 1)) % p_routers;
        let cr2 = if c_routers > 1 { rng.gen_range(0..c_routers) } else { cr };
        topo.add_edge(AsEdge {
            a: c,
            b: p,
            rel: Relationship::CustomerProvider,
            a_router: cr2,
            b_router: pr2,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationship::RouteSource;

    #[test]
    fn deterministic_generation() {
        let cfg = TopologyConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TopologyConfig::default());
        let b = generate(&TopologyConfig { seed: 7, ..Default::default() });
        // Edge sets should differ with overwhelming probability.
        assert_ne!(a.edges(), b.edges());
    }

    #[test]
    fn expected_node_count() {
        let cfg = TopologyConfig::default();
        let t = generate(&cfg);
        // tier1 + transit + stub + beacon origin
        assert_eq!(t.node_count(), cfg.n_tier1 + cfg.n_transit + cfg.n_stub + 1);
    }

    #[test]
    fn tier1_forms_clique() {
        let cfg = TopologyConfig::default();
        let t = generate(&cfg);
        let tier1: Vec<Asn> = t.nodes().filter(|n| n.tier == Tier::Tier1).map(|n| n.asn).collect();
        assert_eq!(tier1.len(), cfg.n_tier1);
        for (i, &a) in tier1.iter().enumerate() {
            for &b in &tier1[i + 1..] {
                assert!(t.interconnection_count(a, b) >= 1, "tier1 {a} and {b} must interconnect");
                assert_eq!(t.neighbor_kind(a, b), Some(RouteSource::Peer));
            }
        }
    }

    #[test]
    fn every_transit_has_tier1_provider() {
        let t = generate(&TopologyConfig::default());
        for n in t.nodes().filter(|n| n.tier == Tier::Transit) {
            let has_provider = t
                .neighbors(n.asn)
                .iter()
                .any(|&nb| t.neighbor_kind(n.asn, nb) == Some(RouteSource::Provider));
            assert!(has_provider, "transit {} lacks a provider", n.asn);
        }
    }

    #[test]
    fn every_stub_has_provider_and_prefix() {
        let t = generate(&TopologyConfig::default());
        for n in t.nodes().filter(|n| n.tier == Tier::Stub) {
            let has_provider = t
                .neighbors(n.asn)
                .iter()
                .any(|&nb| t.neighbor_kind(n.asn, nb) == Some(RouteSource::Provider));
            assert!(has_provider, "stub {} lacks a provider", n.asn);
            assert!(!n.prefixes.is_empty(), "stub {} lacks prefixes", n.asn);
        }
    }

    #[test]
    fn beacon_origin_present_and_dual_homed() {
        let t = generate(&TopologyConfig::default());
        let b = t.node(BEACON_ORIGIN_ASN).expect("beacon origin");
        assert_eq!(b.prefixes[0].to_string(), "84.205.64.0/24");
        assert!(t.neighbors(BEACON_ORIGIN_ASN).len() >= 2, "beacon origin must be dual-homed");
    }

    #[test]
    fn stubs_never_geo_tag() {
        let t = generate(&TopologyConfig::default());
        for n in t.nodes().filter(|n| n.tier == Tier::Stub) {
            assert!(!n.behavior.tags_geo);
        }
    }

    #[test]
    fn some_transits_geo_tag_with_default_mix() {
        let t = generate(&TopologyConfig::default());
        let taggers = t.nodes().filter(|n| n.tier != Tier::Stub && n.behavior.tags_geo).count();
        assert!(taggers > 0, "default mix should produce geo-taggers");
    }

    #[test]
    fn cleaning_directions_exclusive() {
        let t = generate(&TopologyConfig::default());
        for n in t.nodes() {
            assert!(
                !(n.behavior.cleans_egress && n.behavior.cleans_ingress),
                "AS {} cleans both directions",
                n.asn
            );
        }
    }

    #[test]
    fn v6_prefixes_generated() {
        let cfg = TopologyConfig { ipv6_share: 1.0, ..Default::default() };
        let t = generate(&cfg);
        let v6 = t
            .nodes()
            .filter(|n| n.tier == Tier::Stub)
            .flat_map(|n| &n.prefixes)
            .filter(|p| p.is_ipv6())
            .count();
        assert!(v6 > 0);
    }

    #[test]
    fn sized_configs_scale_and_generate() {
        for (n, seed) in [(20usize, 1u64), (60, 2), (200, 3)] {
            let cfg = TopologyConfig::sized(n, seed);
            assert_eq!(cfg.seed, seed);
            assert!(cfg.n_transit >= 2, "collector needs two transit attachment points");
            let total = cfg.n_tier1 + cfg.n_transit + cfg.n_stub;
            assert!(total >= n.min(5) && total <= n + 5, "sized({n}) produced {total} ASes");
            let t = generate(&cfg);
            assert_eq!(t.node_count(), total + 1); // + beacon origin
        }
        // Larger sizes produce strictly larger topologies.
        assert!(
            TopologyConfig::sized(200, 0).n_stub > TopologyConfig::sized(40, 0).n_stub,
            "stub count must grow with requested size"
        );
    }

    #[test]
    fn builder_helpers_replace_fields() {
        let mix = BehaviorMix { transit_tags_geo: 1.0, cleans_egress: 0.0, cleans_ingress: 0.0 };
        let cfg = TopologyConfig::sized(30, 9).with_behavior_mix(mix).with_seed(11);
        assert_eq!(cfg.seed, 11);
        assert!((cfg.behavior_mix.transit_tags_geo - 1.0).abs() < f64::EPSILON);
        // The mix reaches the generated ASes: every non-stub tags geo.
        let t = generate(&cfg);
        let non_stub_taggers =
            t.nodes().filter(|n| n.tier != Tier::Stub && n.behavior.tags_geo).count();
        let non_stub = t.nodes().filter(|n| n.tier != Tier::Stub).count();
        assert_eq!(non_stub_taggers, non_stub);
    }

    #[test]
    fn generated_asns_allocatable() {
        let t = generate(&TopologyConfig::default());
        for n in t.nodes() {
            assert!(n.asn.is_allocatable(), "AS {} not allocatable", n.asn);
        }
    }

    #[test]
    fn internet_deterministic_and_sized() {
        let cfg = InternetConfig::sized(500, 7);
        let a = generate_internet(&cfg);
        let b = generate_internet(&cfg);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edges(), b.edges());
        // tier-1 + transit + stub + beacon origin
        assert_eq!(a.node_count(), 500 + 1);
    }

    #[test]
    fn internet_every_non_tier1_has_provider() {
        let t = generate_internet(&InternetConfig::sized(400, 3));
        for n in t.nodes().filter(|n| n.tier != Tier::Tier1) {
            let has_provider = t
                .neighbors(n.asn)
                .iter()
                .any(|&nb| t.neighbor_kind(n.asn, nb) == Some(RouteSource::Provider));
            assert!(has_provider, "{:?} {} lacks a provider", n.tier, n.asn);
        }
    }

    #[test]
    fn internet_degree_distribution_is_skewed() {
        // Preferential attachment must concentrate customers: the busiest
        // provider ends up with many times the median provider's degree.
        let t = generate_internet(&InternetConfig::sized(1_000, 11));
        let mut degrees: Vec<usize> =
            t.nodes().filter(|n| n.tier != Tier::Stub).map(|n| t.edges_of(n.asn).count()).collect();
        degrees.sort_unstable();
        let median = degrees[degrees.len() / 2];
        let max = *degrees.last().unwrap();
        assert!(max >= median * 4, "no power-law skew: median {median}, max {max}");
    }

    #[test]
    fn internet_stubs_use_32bit_asn_plane() {
        let t = generate_internet(&InternetConfig::sized(300, 5));
        let stubs: Vec<_> =
            t.nodes().filter(|n| n.tier == Tier::Stub && n.asn != BEACON_ORIGIN_ASN).collect();
        assert!(!stubs.is_empty());
        for s in &stubs {
            assert!(s.asn.value() >= INTERNET_STUB_BASE_ASN, "stub {} below 32-bit plane", s.asn);
            assert!(s.asn.is_allocatable(), "stub {} not allocatable", s.asn);
            // The high router_ip plane keeps loopbacks collision-free.
            assert!(s.router_ip(0).octets()[0] >= 240);
            assert_eq!(s.prefixes.len(), 1);
        }
    }

    #[test]
    fn internet_beacon_dual_homed() {
        let t = generate_internet(&InternetConfig::sized(200, 1));
        let b = t.node(BEACON_ORIGIN_ASN).expect("beacon origin");
        assert_eq!(b.prefixes[0].to_string(), "84.205.64.0/24");
        let providers = t
            .neighbors(BEACON_ORIGIN_ASN)
            .iter()
            .filter(|&&nb| t.neighbor_kind(BEACON_ORIGIN_ASN, nb) == Some(RouteSource::Provider))
            .count();
        assert_eq!(providers, 2, "beacon origin must be dual-homed");
    }

    #[test]
    fn internet_peering_mesh_present() {
        let t = generate_internet(&InternetConfig::sized(600, 9));
        let transit_peerings = t
            .edges()
            .iter()
            .filter(|e| {
                e.rel == Relationship::PeerPeer
                    && t.node(e.a).is_some_and(|n| n.tier == Tier::Transit)
            })
            .count();
        assert!(transit_peerings > 0, "expected transit-transit peerings");
    }

    #[test]
    fn internet_10k_generates_quickly() {
        // O(ASes + edges): a 10k-AS graph must come out in well under a
        // second even on slow CI (the old O(edges)-per-pick generator
        // would take minutes here).
        let start = std::time::Instant::now();
        let t = generate_internet(&InternetConfig::sized(10_000, 42));
        assert_eq!(t.node_count(), 10_001);
        assert!(t.edges().len() > 10_000, "graph too sparse: {} edges", t.edges().len());
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "generation took {:?}",
            start.elapsed()
        );
    }
}
