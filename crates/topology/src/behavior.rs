//! Per-AS community handling behavior.
//!
//! The paper's central mechanism is the *combination* of behaviors along a
//! path: an upstream that geo-tags, a middle AS that blindly propagates,
//! and a peer that cleans on egress produce exactly the `nc`/`nn` bursts of
//! Figures 4 and 5. [`CommunityBehavior`] is the per-AS knob; the simulator
//! compiles it into import/export policies.

use std::fmt;

/// How an AS treats BGP communities, matching the classes the paper's
/// future-work section proposes to infer per AS: *tag*, *filter*, *ignore*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommunityBehavior {
    /// Adds geolocation communities on ingress (informational tagging), the
    /// behavior of large transit networks such as the paper's AS3356
    /// example.
    pub tags_geo: bool,
    /// Strips *all* communities on egress announcements (the paper's Exp3
    /// configuration — prevents propagation but still leaks `nn`
    /// duplicates on most implementations).
    pub cleans_egress: bool,
    /// Strips all communities on ingress (Exp4 — suppresses the duplicate
    /// entirely because the RIB never holds them).
    pub cleans_ingress: bool,
}

impl CommunityBehavior {
    /// Neither tags nor cleans: communities pass through untouched. The
    /// paper finds this is the common default ("many ASes blindly
    /// propagate communities they do not recognize").
    pub const BLIND_PROPAGATOR: Self =
        CommunityBehavior { tags_geo: false, cleans_egress: false, cleans_ingress: false };

    /// Tags geo on ingress, no cleaning — the AS3356-like transit profile.
    pub const GEO_TAGGER: Self =
        CommunityBehavior { tags_geo: true, cleans_egress: false, cleans_ingress: false };

    /// Cleans on egress only (Exp3 profile).
    pub const EGRESS_CLEANER: Self =
        CommunityBehavior { tags_geo: false, cleans_egress: true, cleans_ingress: false };

    /// Cleans on ingress (Exp4 profile).
    pub const INGRESS_CLEANER: Self =
        CommunityBehavior { tags_geo: false, cleans_egress: false, cleans_ingress: true };

    /// True if the AS performs any community cleaning at all.
    pub fn cleans(&self) -> bool {
        self.cleans_egress || self.cleans_ingress
    }
}

impl Default for CommunityBehavior {
    fn default() -> Self {
        Self::BLIND_PROPAGATOR
    }
}

impl fmt::Display for CommunityBehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<&str> = Vec::new();
        if self.tags_geo {
            parts.push("geo-tag");
        }
        if self.cleans_ingress {
            parts.push("clean-in");
        }
        if self.cleans_egress {
            parts.push("clean-out");
        }
        if parts.is_empty() {
            parts.push("blind");
        }
        f.write_str(&parts.join("+"))
    }
}

/// The mix of behaviors assigned when generating a topology; fields are
/// probabilities in `[0, 1]` applied independently per tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BehaviorMix {
    /// Probability a tier-1/transit AS geo-tags on ingress. Giotsas et al.
    /// (cited by the paper) found ~50% of announcements carry location
    /// communities, so large-transit tagging is common.
    pub transit_tags_geo: f64,
    /// Probability any AS cleans on egress.
    pub cleans_egress: f64,
    /// Probability any AS cleans on ingress.
    pub cleans_ingress: f64,
}

impl Default for BehaviorMix {
    /// Calibrated so the emergent announcement-type mix lands near the
    /// paper's Table 2 (most ASes propagate blindly; cleaning is rare).
    fn default() -> Self {
        BehaviorMix { transit_tags_geo: 0.5, cleans_egress: 0.15, cleans_ingress: 0.05 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_consistent() {
        assert!(!CommunityBehavior::BLIND_PROPAGATOR.cleans());
        assert!(CommunityBehavior::EGRESS_CLEANER.cleans());
        assert!(CommunityBehavior::INGRESS_CLEANER.cleans());
        const { assert!(CommunityBehavior::GEO_TAGGER.tags_geo) };
        assert!(!CommunityBehavior::GEO_TAGGER.cleans());
    }

    #[test]
    fn default_is_blind() {
        assert_eq!(CommunityBehavior::default(), CommunityBehavior::BLIND_PROPAGATOR);
    }

    #[test]
    fn display_composes() {
        assert_eq!(CommunityBehavior::BLIND_PROPAGATOR.to_string(), "blind");
        assert_eq!(CommunityBehavior::GEO_TAGGER.to_string(), "geo-tag");
        let both = CommunityBehavior { tags_geo: true, cleans_egress: true, cleans_ingress: false };
        assert_eq!(both.to_string(), "geo-tag+clean-out");
    }

    #[test]
    fn default_mix_mostly_blind() {
        // Written as a runtime check over the struct (not consts) so the
        // invariant survives changes to the Default impl.
        let mixes = [BehaviorMix::default()];
        for m in mixes {
            assert!(m.cleans_egress < 0.5, "cleaning must be the minority behavior");
            assert!(m.cleans_ingress < m.cleans_egress, "ingress cleaning is rarer");
        }
    }
}
