//! Intra-AS IGP cost model.
//!
//! BGP's decision process falls through to IGP cost ("hot-potato" routing)
//! when higher tie-breakers are equal — exactly the step that makes router
//! `Y1` in the paper's lab topology prefer border `Y2` over `Y3`, and that
//! makes real transit ASes shift traffic between ingress points during
//! path exploration. A full link-state IGP is unnecessary: what BGP needs
//! is a stable cost *matrix* between routers of one AS.

/// IGP costs between the routers of one AS.
///
/// Two layouts are provided: an explicit matrix (used by the lab topology
/// to pin down tie-breaks) and a ring (used by generated ASes — routers
/// sit on a ring, cost is ring distance × 5, giving distinct, symmetric,
/// triangle-inequality-respecting costs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IgpMap {
    /// Ring layout over `n` routers.
    Ring {
        /// Number of routers.
        n: u16,
    },
    /// Explicit symmetric matrix, row-major, `n × n`.
    Matrix {
        /// Number of routers.
        n: u16,
        /// Row-major costs; `costs[i*n + j]` is the cost from `i` to `j`.
        costs: Vec<u32>,
    },
}

impl IgpMap {
    /// A ring over `n` routers.
    pub fn ring(n: u16) -> Self {
        IgpMap::Ring { n }
    }

    /// An explicit matrix; panics if `costs.len() != n*n` (construction
    /// bug, not runtime input).
    pub fn matrix(n: u16, costs: Vec<u32>) -> Self {
        assert_eq!(costs.len(), n as usize * n as usize, "IGP matrix must be n*n");
        IgpMap::Matrix { n, costs }
    }

    /// Number of routers covered.
    pub fn len(&self) -> u16 {
        match self {
            IgpMap::Ring { n } | IgpMap::Matrix { n, .. } => *n,
        }
    }

    /// True if there are no routers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cost from router `i` to router `j`. Out-of-range indices cost
    /// `u32::MAX` (unreachable), so a mis-wired lookup loses every
    /// comparison instead of panicking mid-simulation.
    pub fn cost(&self, i: u16, j: u16) -> u32 {
        let n = self.len();
        if i >= n || j >= n {
            return u32::MAX;
        }
        if i == j {
            return 0;
        }
        match self {
            IgpMap::Ring { n } => {
                let d = (i as i32 - j as i32).unsigned_abs();
                let ring = (*n as u32).min(u16::MAX as u32);
                d.min(ring - d) * 5
            }
            IgpMap::Matrix { n, costs } => costs[i as usize * *n as usize + j as usize],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_distances() {
        let m = IgpMap::ring(6);
        assert_eq!(m.cost(0, 0), 0);
        assert_eq!(m.cost(0, 1), 5);
        assert_eq!(m.cost(0, 3), 15);
        assert_eq!(m.cost(0, 5), 5); // wraps around
        assert_eq!(m.cost(1, 4), 15);
    }

    #[test]
    fn ring_is_symmetric() {
        let m = IgpMap::ring(7);
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(m.cost(i, j), m.cost(j, i));
            }
        }
    }

    #[test]
    fn matrix_lookup() {
        let m = IgpMap::matrix(2, vec![0, 7, 7, 0]);
        assert_eq!(m.cost(0, 1), 7);
        assert_eq!(m.cost(1, 0), 7);
        assert_eq!(m.cost(1, 1), 0);
    }

    #[test]
    fn out_of_range_is_unreachable() {
        let m = IgpMap::ring(3);
        assert_eq!(m.cost(0, 9), u32::MAX);
        assert_eq!(m.cost(9, 0), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "IGP matrix must be n*n")]
    fn bad_matrix_panics() {
        IgpMap::matrix(2, vec![0, 1, 2]);
    }
}
