//! The topology data model: ASes, routers, edges.

use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

use kcc_bgp_types::{Asn, GeoTag, Prefix};

use crate::behavior::CommunityBehavior;
use crate::igp::IgpMap;
use crate::relationship::{Relationship, RouteSource};

/// The hierarchy tier of an AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Settlement-free core (full clique among themselves).
    Tier1,
    /// Regional/national transit.
    Transit,
    /// Edge network with no customers.
    Stub,
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tier::Tier1 => "tier1",
            Tier::Transit => "transit",
            Tier::Stub => "stub",
        })
    }
}

/// Globally unique router identity: AS plus router index within the AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId {
    /// Owning AS.
    pub asn: Asn,
    /// Index within the AS (0-based).
    pub index: u16,
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}r{}", self.asn, self.index)
    }
}

/// One router of an AS.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterSpec {
    /// Index within the AS.
    pub index: u16,
    /// Physical location (drives geo-tagging on routes entering here).
    pub location: GeoTag,
}

/// One AS.
#[derive(Debug, Clone, PartialEq)]
pub struct AsNode {
    /// The AS number.
    pub asn: Asn,
    /// Hierarchy tier.
    pub tier: Tier,
    /// The AS's routers (border + internal). iBGP is full mesh.
    pub routers: Vec<RouterSpec>,
    /// Community handling behavior.
    pub behavior: CommunityBehavior,
    /// Prefixes this AS originates.
    pub prefixes: Vec<Prefix>,
    /// Intra-AS IGP costs between routers.
    pub igp: IgpMap,
    /// True for IXP route-server ASes, which do not insert their own ASN
    /// into announcements (the data-cleaning stage re-inserts it).
    pub route_server: bool,
}

impl AsNode {
    /// A single-router stub-style node; callers adjust fields as needed.
    pub fn simple(asn: Asn, tier: Tier, location: GeoTag) -> Self {
        AsNode {
            asn,
            tier,
            routers: vec![RouterSpec { index: 0, location }],
            behavior: CommunityBehavior::default(),
            prefixes: Vec::new(),
            igp: IgpMap::ring(1),
            route_server: false,
        }
    }

    /// IGP cost between two of this AS's routers.
    pub fn igp_cost(&self, i: u16, j: u16) -> u32 {
        self.igp.cost(i, j)
    }

    /// A deterministic, unique loopback/identifier address for a router.
    ///
    /// 16-bit ASNs map into `10.0.0.0/8`; 32-bit ASNs map into the
    /// class-E `240.0.0.0/4` plane, which the low mapping can never
    /// produce, so the two schemes are collision-free against each other.
    /// The high plane packs `(asn - 65536) * 32 + index` into 28 bits:
    /// unique for up to ~8.4M 32-bit ASNs with up to 32 routers each,
    /// far beyond what the internet-scale generator allocates.
    pub fn router_ip(&self, index: u16) -> Ipv4Addr {
        let a = self.asn.value();
        if a < 0x1_0000 {
            Ipv4Addr::new(
                10,
                ((a >> 8) & 0xFF) as u8,
                (a & 0xFF) as u8,
                (index as u8).wrapping_add(1),
            )
        } else {
            let flat = (a - 0x1_0000) * 32 + u32::from(index % 32);
            Ipv4Addr::new(
                240 + ((flat >> 24) & 0x0F) as u8,
                ((flat >> 16) & 0xFF) as u8,
                ((flat >> 8) & 0xFF) as u8,
                (flat & 0xFF) as u8,
            )
        }
    }

    /// The [`RouterId`] of router `index`.
    pub fn router_id(&self, index: u16) -> RouterId {
        RouterId { asn: self.asn, index }
    }
}

/// One inter-AS link. `a`/`b` order is canonical for the relationship:
/// in a customer-provider edge, `a` is the customer.
///
/// Each edge attaches to a specific router on both sides, so two ASes can
/// interconnect at several cities — the paper's update streams let an
/// observer *count* those interconnections, which is exactly the
/// information-leak implication §7 discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsEdge {
    /// First endpoint (the customer in c2p edges).
    pub a: Asn,
    /// Second endpoint (the provider in c2p edges).
    pub b: Asn,
    /// Business relationship.
    pub rel: Relationship,
    /// Attachment router on side `a`.
    pub a_router: u16,
    /// Attachment router on side `b`.
    pub b_router: u16,
}

impl AsEdge {
    /// The kind of neighbor `other` is *from `asn`'s point of view* on
    /// this edge, or `None` if `asn` is not an endpoint.
    pub fn neighbor_kind(&self, asn: Asn) -> Option<RouteSource> {
        match self.rel {
            Relationship::PeerPeer => {
                if asn == self.a || asn == self.b {
                    Some(RouteSource::Peer)
                } else {
                    None
                }
            }
            Relationship::CustomerProvider => {
                if asn == self.a {
                    Some(RouteSource::Provider) // a's neighbor is its provider
                } else if asn == self.b {
                    Some(RouteSource::Customer) // b's neighbor is its customer
                } else {
                    None
                }
            }
        }
    }

    /// The other endpoint, or `None` if `asn` is not an endpoint.
    pub fn other(&self, asn: Asn) -> Option<Asn> {
        if asn == self.a {
            Some(self.b)
        } else if asn == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// The attachment router index on `asn`'s side.
    pub fn router_on(&self, asn: Asn) -> Option<u16> {
        if asn == self.a {
            Some(self.a_router)
        } else if asn == self.b {
            Some(self.b_router)
        } else {
            None
        }
    }
}

/// A complete AS-level topology.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: BTreeMap<Asn, AsNode>,
    edges: Vec<AsEdge>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an AS. Replaces any previous node with the same ASN.
    pub fn add_node(&mut self, node: AsNode) {
        self.nodes.insert(node.asn, node);
    }

    /// Adds an edge. Panics if either endpoint AS or attachment router is
    /// missing — topology construction bugs should fail fast.
    pub fn add_edge(&mut self, edge: AsEdge) {
        let a = self.nodes.get(&edge.a).expect("edge endpoint a must exist");
        let b = self.nodes.get(&edge.b).expect("edge endpoint b must exist");
        assert!((edge.a_router as usize) < a.routers.len(), "attachment router on a out of range");
        assert!((edge.b_router as usize) < b.routers.len(), "attachment router on b out of range");
        self.edges.push(edge);
    }

    /// The node for `asn`.
    pub fn node(&self, asn: Asn) -> Option<&AsNode> {
        self.nodes.get(&asn)
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, asn: Asn) -> Option<&mut AsNode> {
        self.nodes.get_mut(&asn)
    }

    /// All nodes in ASN order.
    pub fn nodes(&self) -> impl Iterator<Item = &AsNode> {
        self.nodes.values()
    }

    /// Number of ASes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All edges.
    pub fn edges(&self) -> &[AsEdge] {
        &self.edges
    }

    /// Edges incident to `asn`.
    pub fn edges_of(&self, asn: Asn) -> impl Iterator<Item = &AsEdge> {
        self.edges.iter().filter(move |e| e.a == asn || e.b == asn)
    }

    /// Distinct neighbor ASes of `asn`.
    pub fn neighbors(&self, asn: Asn) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.edges_of(asn).filter_map(|e| e.other(asn)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of parallel interconnections between two ASes.
    pub fn interconnection_count(&self, a: Asn, b: Asn) -> usize {
        self.edges.iter().filter(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a)).count()
    }

    /// The relationship of `neighbor` from `asn`'s point of view (first
    /// matching edge; parallel edges share one relationship by
    /// construction).
    pub fn neighbor_kind(&self, asn: Asn, neighbor: Asn) -> Option<RouteSource> {
        self.edges_of(asn)
            .find(|e| e.other(asn) == Some(neighbor))
            .and_then(|e| e.neighbor_kind(asn))
    }

    /// Every prefix originated anywhere, with its origin.
    pub fn all_prefixes(&self) -> Vec<(Asn, Prefix)> {
        let mut v = Vec::new();
        for n in self.nodes.values() {
            for p in &n.prefixes {
                v.push((n.asn, *p));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag() -> GeoTag {
        GeoTag::new(4, 1, 1)
    }

    fn small_topology() -> Topology {
        let mut t = Topology::new();
        let mut transit = AsNode::simple(Asn(3356), Tier::Transit, tag());
        transit.routers.push(RouterSpec { index: 1, location: GeoTag::new(5, 2, 2) });
        transit.igp = IgpMap::ring(2);
        t.add_node(transit);
        let mut stub = AsNode::simple(Asn(12654), Tier::Stub, tag());
        stub.prefixes.push("84.205.64.0/24".parse().unwrap());
        t.add_node(stub);
        t.add_node(AsNode::simple(Asn(20205), Tier::Transit, tag()));
        // 12654 is customer of 3356 (two parallel links), 20205 peers with 3356.
        t.add_edge(AsEdge {
            a: Asn(12_654),
            b: Asn(3356),
            rel: Relationship::CustomerProvider,
            a_router: 0,
            b_router: 0,
        });
        t.add_edge(AsEdge {
            a: Asn(12_654),
            b: Asn(3356),
            rel: Relationship::CustomerProvider,
            a_router: 0,
            b_router: 1,
        });
        t.add_edge(AsEdge {
            a: Asn(20_205),
            b: Asn(3356),
            rel: Relationship::PeerPeer,
            a_router: 0,
            b_router: 0,
        });
        t
    }

    #[test]
    fn neighbor_kinds_from_both_sides() {
        let t = small_topology();
        assert_eq!(t.neighbor_kind(Asn(12_654), Asn(3356)), Some(RouteSource::Provider));
        assert_eq!(t.neighbor_kind(Asn(3356), Asn(12_654)), Some(RouteSource::Customer));
        assert_eq!(t.neighbor_kind(Asn(20_205), Asn(3356)), Some(RouteSource::Peer));
        assert_eq!(t.neighbor_kind(Asn(3356), Asn(20_205)), Some(RouteSource::Peer));
        assert_eq!(t.neighbor_kind(Asn(3356), Asn(999)), None);
    }

    #[test]
    fn interconnection_counting() {
        let t = small_topology();
        assert_eq!(t.interconnection_count(Asn(12_654), Asn(3356)), 2);
        assert_eq!(t.interconnection_count(Asn(3356), Asn(12_654)), 2);
        assert_eq!(t.interconnection_count(Asn(20_205), Asn(12_654)), 0);
    }

    #[test]
    fn neighbors_deduped() {
        let t = small_topology();
        assert_eq!(t.neighbors(Asn(3356)), vec![Asn(12_654), Asn(20_205)]);
    }

    #[test]
    fn all_prefixes_lists_origins() {
        let t = small_topology();
        let all = t.all_prefixes();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, Asn(12_654));
    }

    #[test]
    fn router_ip_unique_per_router() {
        let t = small_topology();
        let n = t.node(Asn(3356)).unwrap();
        assert_ne!(n.router_ip(0), n.router_ip(1));
        let m = t.node(Asn(12_654)).unwrap();
        assert_ne!(n.router_ip(0), m.router_ip(0));
    }

    #[test]
    fn router_ip_32bit_plane_disjoint_and_unique() {
        // 32-bit ASNs land in 240/4, which the 16-bit mapping (10/8)
        // never produces; neighbors in the dense allocation don't collide.
        let mut seen = std::collections::BTreeSet::new();
        for asn in [131_072u32, 131_073, 131_074, 200_000, 206_071] {
            let node = AsNode::simple(Asn(asn), Tier::Stub, tag());
            for index in [0u16, 1, 31] {
                let ip = node.router_ip(index);
                assert!(ip.octets()[0] >= 240, "AS{asn} must map into 240/4, got {ip}");
                assert!(seen.insert(ip), "collision at AS{asn} router {index}: {ip}");
            }
        }
        // And the low plane stays where it was.
        let low = AsNode::simple(Asn(65_535), Tier::Stub, tag());
        assert_eq!(low.router_ip(0).octets()[0], 10);
    }

    #[test]
    #[should_panic(expected = "edge endpoint a must exist")]
    fn edge_to_missing_node_panics() {
        let mut t = Topology::new();
        t.add_node(AsNode::simple(Asn(1), Tier::Stub, tag()));
        t.add_edge(AsEdge {
            a: Asn(99),
            b: Asn(1),
            rel: Relationship::PeerPeer,
            a_router: 0,
            b_router: 0,
        });
    }

    #[test]
    #[should_panic(expected = "attachment router on a out of range")]
    fn edge_to_missing_router_panics() {
        let mut t = Topology::new();
        t.add_node(AsNode::simple(Asn(1), Tier::Stub, tag()));
        t.add_node(AsNode::simple(Asn(2), Tier::Stub, tag()));
        t.add_edge(AsEdge {
            a: Asn(1),
            b: Asn(2),
            rel: Relationship::PeerPeer,
            a_router: 5,
            b_router: 0,
        });
    }

    #[test]
    fn edge_router_lookup() {
        let t = small_topology();
        let e = &t.edges()[1];
        assert_eq!(e.router_on(Asn(12_654)), Some(0));
        assert_eq!(e.router_on(Asn(3356)), Some(1));
        assert_eq!(e.router_on(Asn(7)), None);
    }
}
