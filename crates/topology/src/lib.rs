//! # kcc-topology — AS-level Internet topology generation
//!
//! The paper's measurement study runs over the real Internet; its lab
//! experiments run over a four-AS topology. This crate provides the
//! synthetic middle ground: deterministic, seeded generation of AS-level
//! topologies with
//!
//! * **Gao–Rexford business relationships** (customer/provider and
//!   peer-to-peer) and the valley-free export rule ([`relationship`]),
//! * **multi-router ASes** whose border routers sit in distinct cities —
//!   the precondition for geo-tagged community exploration ([`model`]),
//! * **per-AS community behavior** (geo-tagging, egress cleaning, ingress
//!   cleaning, blind propagation) drawn from a configurable mix
//!   ([`behavior`]) — the knob the paper's findings turn on,
//! * **intra-AS IGP costs** for hot-potato decisions ([`igp`] via
//!   [`model::AsNode::igp_cost`]),
//! * a hierarchical random generator (tier-1 clique / transit / stub)
//!   ([`gen`]).
//!
//! Everything is deterministic given a seed: the same config always
//! produces the same Internet, so experiments are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod gen;
pub mod igp;
pub mod model;
pub mod relationship;

pub use behavior::{BehaviorMix, CommunityBehavior};
pub use gen::{generate, generate_internet, InternetConfig, TopologyConfig};
pub use igp::IgpMap;
pub use model::{AsEdge, AsNode, RouterId, RouterSpec, Tier, Topology};
pub use relationship::{may_export, Relationship, RouteSource};
