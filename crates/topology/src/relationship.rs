//! Gao–Rexford business relationships and the valley-free export rule.

use std::fmt;

/// The business relationship on an AS-level edge, read from the edge's
/// canonical direction: in a [`Relationship::CustomerProvider`] edge
/// `(a, b)`, `a` is the customer and `b` the provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// `a` buys transit from `b`.
    CustomerProvider,
    /// Settlement-free peering.
    PeerPeer,
}

impl fmt::Display for Relationship {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relationship::CustomerProvider => "c2p",
            Relationship::PeerPeer => "p2p",
        })
    }
}

/// Where a route came from, as seen by the AS applying export policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteSource {
    /// The AS originates the prefix itself.
    Originated,
    /// Learned from a customer.
    Customer,
    /// Learned from a settlement-free peer.
    Peer,
    /// Learned from a provider.
    Provider,
}

/// Relationship of the neighbor a route would be exported *to*.
pub type NeighborKind = RouteSource; // Customer/Peer/Provider reused

impl RouteSource {
    /// Local preference conventionally assigned per Gao–Rexford:
    /// customer routes are most profitable, providers least.
    pub fn conventional_local_pref(self) -> u32 {
        match self {
            RouteSource::Originated => 400,
            RouteSource::Customer => 300,
            RouteSource::Peer => 200,
            RouteSource::Provider => 100,
        }
    }
}

/// The valley-free export rule: routes learned from customers (or
/// originated locally) are exported to everyone; routes learned from peers
/// or providers are exported only to customers.
pub fn may_export(source: RouteSource, to: NeighborKind) -> bool {
    match source {
        RouteSource::Originated | RouteSource::Customer => true,
        RouteSource::Peer | RouteSource::Provider => to == RouteSource::Customer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn customer_routes_export_everywhere() {
        for to in [RouteSource::Customer, RouteSource::Peer, RouteSource::Provider] {
            assert!(may_export(RouteSource::Customer, to));
            assert!(may_export(RouteSource::Originated, to));
        }
    }

    #[test]
    fn peer_and_provider_routes_only_to_customers() {
        for src in [RouteSource::Peer, RouteSource::Provider] {
            assert!(may_export(src, RouteSource::Customer));
            assert!(!may_export(src, RouteSource::Peer));
            assert!(!may_export(src, RouteSource::Provider));
        }
    }

    #[test]
    fn local_pref_ordering() {
        assert!(
            RouteSource::Originated.conventional_local_pref()
                > RouteSource::Customer.conventional_local_pref()
        );
        assert!(
            RouteSource::Customer.conventional_local_pref()
                > RouteSource::Peer.conventional_local_pref()
        );
        assert!(
            RouteSource::Peer.conventional_local_pref()
                > RouteSource::Provider.conventional_local_pref()
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Relationship::CustomerProvider.to_string(), "c2p");
        assert_eq!(Relationship::PeerPeer.to_string(), "p2p");
    }
}
