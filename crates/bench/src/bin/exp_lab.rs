//! §3 lab experiments Exp1–Exp4 across all vendor profiles.
//!
//! Regenerates the paper's controlled-experiment findings:
//! * Exp1: internal next-hop change → duplicate to X1, nothing at the
//!   collector; Junos suppresses.
//! * Exp2: community change alone propagates to the collector (all
//!   vendors).
//! * Exp3: egress cleaning still leaks an `nn` duplicate (except Junos).
//! * Exp4: ingress cleaning stops propagation entirely.

use kcc_bench::Comparison;
use kcc_bgp_sim::lab::{run_experiment, LabExperiment};
use kcc_bgp_sim::VendorProfile;
use kcc_core::report::render_table;

fn main() {
    println!("== Lab experiments (paper §3, Figure 1 topology) ==\n");
    let mut rows = Vec::new();
    for exp in LabExperiment::ALL {
        for vendor in VendorProfile::ALL {
            let r = run_experiment(exp, vendor);
            rows.push(vec![
                exp.name().to_string(),
                vendor.name.to_string(),
                r.y1_to_x1.len().to_string(),
                r.at_collector.len().to_string(),
                if r.x1_rib_changed { "yes" } else { "no" }.to_string(),
                r.duplicates_suppressed.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "experiment",
                "vendor",
                "msgs Y1→X1",
                "msgs at collector",
                "X1 RIB changed",
                "dups suppressed"
            ],
            &rows
        )
    );

    // Shape checks against the paper's §3 summary.
    let mut cmp = Comparison::new();
    let exp1_ios = run_experiment(LabExperiment::Exp1, VendorProfile::CISCO_IOS);
    cmp.add(
        "Exp1 IOS: duplicate crosses Y1→X1, collector silent",
        "1 / 0",
        &format!("{} / {}", exp1_ios.y1_to_x1.len(), exp1_ios.at_collector.len()),
        exp1_ios.y1_to_x1.len() == 1 && exp1_ios.at_collector.is_empty(),
    );
    let exp1_junos = run_experiment(LabExperiment::Exp1, VendorProfile::JUNOS);
    cmp.add(
        "Exp1 Junos: duplicate suppressed",
        "0 msgs",
        &format!("{} msgs", exp1_junos.y1_to_x1.len()),
        exp1_junos.y1_to_x1.is_empty(),
    );
    let exp2_all = VendorProfile::ALL
        .iter()
        .all(|&v| run_experiment(LabExperiment::Exp2, v).at_collector.len() == 1);
    cmp.add(
        "Exp2 all vendors: community change reaches collector",
        "1 msg",
        if exp2_all { "1 msg" } else { "mixed" },
        exp2_all,
    );
    let exp3_ios = run_experiment(LabExperiment::Exp3, VendorProfile::CISCO_IOS);
    let exp3_junos = run_experiment(LabExperiment::Exp3, VendorProfile::JUNOS);
    cmp.add(
        "Exp3: egress cleaning leaks nn (IOS) / suppressed (Junos)",
        "1 / 0",
        &format!("{} / {}", exp3_ios.at_collector.len(), exp3_junos.at_collector.len()),
        exp3_ios.at_collector.len() == 1 && exp3_junos.at_collector.is_empty(),
    );
    let exp4_all = VendorProfile::ALL.iter().all(|&v| {
        let r = run_experiment(LabExperiment::Exp4, v);
        r.at_collector.is_empty() && r.y1_to_x1.len() == 1
    });
    cmp.add(
        "Exp4 all vendors: ingress cleaning stops propagation",
        "0 at collector, 1 on wire",
        if exp4_all { "0 at collector, 1 on wire" } else { "mixed" },
        exp4_all,
    );
    println!("{}", cmp.render());
    assert!(cmp.all_ok(), "lab experiment shape deviates from the paper");
}
