//! Pipeline throughput measurement with machine-readable output — the
//! perf-trajectory anchor for the streaming redesign.
//!
//! Measures, per workload size: streaming one-pass analysis (cleaning +
//! classification + Table 1/2 sinks) over MRT bytes, the sharded variant,
//! and the batch path (materialize → clean → classify) for comparison.
//! Emits `BENCH_pipeline.json` (or `--out <path>`) so CI can archive the
//! numbers run over run.
//!
//! ```sh
//! cargo run --release -p kcc_bench --bin bench_pipeline -- \
//!     --sizes 10000,100000 --threads 4 --out BENCH_pipeline.json
//! ```
//!
//! Batch runs are skipped above `--batch-cap` updates (default 200k):
//! materializing the day at 1M+ is exactly what the streaming path
//! exists to avoid.

use std::fmt::Write as _;
use std::time::Instant;

use kcc_bench::mrtgen::{generate_mrt_day, MrtDay};
use kcc_collector::UpdateArchive;
use kcc_core::pipeline::PipelineBuilder;
use kcc_core::table::{overview, OverviewSink};
use kcc_core::{
    classify_archive, clean_archive, run_pipeline, run_sharded, CleaningConfig, CleaningStage,
    CountsSink, MrtSource,
};
use kcc_tracegen::Mar20Config;

/// Sampling interval for the instrumented run: every N-th update is
/// wall-clocked through each pipeline phase (the `--profile-every`
/// default the daemon also uses).
const PROFILE_EVERY: u64 = 64;
/// Interleaved plain/instrumented pass pairs for the overhead figure.
/// Adjacent-in-time passes see the most similar machine conditions, so
/// each pair's on-CPU ratio is one (noisy) estimate of the true cost.
/// The pairs split into [`OVERHEAD_BLOCKS`] time-separated blocks; each
/// block yields an interquartile-trimmed mean, and the figure is the
/// *minimum* block estimate: ambient load spikes pollute whole blocks
/// (the noise is correlated over seconds, so averaging across a spike
/// cannot remove it) and only ever inflate them, while a real
/// instrumentation regression inflates every block. The minimum is the
/// least-polluted look at the true cost — biased slightly low, which is
/// the right tradeoff for a gate meant to catch cost *regressions*.
const OVERHEAD_REPEATS: usize = 48;
/// Time-separated estimate blocks for the overhead figure (see
/// [`OVERHEAD_REPEATS`]).
const OVERHEAD_BLOCKS: usize = 3;

/// One measured mode.
struct Measurement {
    seconds: f64,
    updates_per_sec: f64,
}

fn measure<F: FnOnce() -> u64>(f: F) -> Measurement {
    let start = Instant::now();
    let updates = f();
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    Measurement { seconds, updates_per_sec: updates as f64 / seconds }
}

fn json_measurement(m: &Measurement) -> String {
    format!("{{\"seconds\":{:.6},\"updates_per_sec\":{:.0}}}", m.seconds, m.updates_per_sec)
}

/// Nanoseconds the calling thread has spent on-CPU (field 1 of
/// `/proc/thread-self/schedstat`). On a contended machine wall time
/// includes run-queue waits the workload never executed through, which
/// drowns a sub-2% comparison; on-CPU time excludes preemption noise
/// entirely. The streaming pipeline runs single-threaded on the calling
/// thread, so this captures exactly the measured work. Returns `None`
/// where the file is unavailable (non-Linux); callers fall back to wall
/// time.
fn thread_cpu_ns() -> Option<u64> {
    let s = std::fs::read_to_string("/proc/thread-self/schedstat")
        .or_else(|_| std::fs::read_to_string("/proc/self/schedstat"))
        .ok()?;
    s.split_whitespace().next()?.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sizes: Vec<u64> = vec![10_000, 100_000];
    let mut out_path = String::from("BENCH_pipeline.json");
    let mut threads = 4usize;
    let mut batch_cap = 200_000u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sizes" => {
                if let Some(v) = it.next() {
                    sizes = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
                }
            }
            "--out" => {
                if let Some(v) = it.next() {
                    out_path = v.clone();
                }
            }
            "--threads" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    threads = v;
                }
            }
            "--batch-cap" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    batch_cap = v;
                }
            }
            _ => {}
        }
    }

    let mut rows = Vec::new();
    for &target in &sizes {
        let cfg = Mar20Config { target_announcements: target, ..Default::default() };
        println!("== generating ~{target} announcements to MRT bytes ==");
        let MrtDay { bytes, updates, registry, route_servers } = generate_mrt_day(&cfg);
        println!("   {} updates, {:.1} MiB", updates, bytes.len() as f64 / (1024.0 * 1024.0));
        let open = || {
            MrtSource::new(&bytes[..], "rrc00", cfg.epoch_seconds)
                .with_route_servers(route_servers.clone())
        };

        let streaming = measure(|| {
            let stage = CleaningStage::new(&registry, CleaningConfig::default());
            let out = run_pipeline(open(), stage, (OverviewSink::default(), CountsSink::default()))
                .expect("in-memory MRT cannot fail");
            out.stats.updates
        });
        println!(
            "   streaming: {:.3}s  ({:.0} updates/s)",
            streaming.seconds, streaming.updates_per_sec
        );

        let sharded = measure(|| {
            let out = run_sharded(
                open(),
                threads,
                || CleaningStage::new(&registry, CleaningConfig::default()),
                || (OverviewSink::default(), CountsSink::default()),
            )
            .expect("in-memory MRT cannot fail");
            out.stats.updates
        });
        println!(
            "   sharded×{threads}: {:.3}s  ({:.0} updates/s)",
            sharded.seconds, sharded.updates_per_sec
        );

        // Metrics overhead: the identical builder chain with and without
        // sampled per-phase profiling. Both halves of a pair run
        // back-to-back (the most similar machine conditions available)
        // and are compared on on-CPU time, so each pair's ratio is one
        // noisy estimate of the true cost; the trimmed mean over all
        // pairs is the gated figure. Measured on the largest size only —
        // the cost is a property of the instrumentation, and sub-50ms
        // runs cannot resolve the sub-2% difference CI gates on.
        let measure_overhead = Some(target) == sizes.iter().copied().max();
        let overhead = measure_overhead.then(|| {
            let mut instrumented = None;
            let mut best_instr = f64::MAX;
            let mut ratios = Vec::with_capacity(OVERHEAD_REPEATS);
            let run_plain = || {
                measure(|| {
                    let out = PipelineBuilder::new(open())
                        .stages(CleaningStage::new(&registry, CleaningConfig::default()))
                        .sink((OverviewSink::default(), CountsSink::default()))
                        .run()
                        .expect("in-memory MRT cannot fail");
                    out.stats.updates
                })
            };
            let run_instr = || {
                measure(|| {
                    let out = PipelineBuilder::new(open())
                        .stages(CleaningStage::new(&registry, CleaningConfig::default()))
                        .sink((OverviewSink::default(), CountsSink::default()))
                        .profile(PROFILE_EVERY)
                        .run()
                        .expect("in-memory MRT cannot fail");
                    assert!(out.profile.is_some(), "profiling was enabled");
                    out.stats.updates
                })
            };
            // Compare on-CPU time where available (see [`thread_cpu_ns`]);
            // wall time otherwise.
            let timed = |run: &dyn Fn() -> Measurement| -> (Measurement, f64) {
                let before = thread_cpu_ns();
                let m = run();
                let after = thread_cpu_ns();
                let cpu = match (before, after) {
                    (Some(b), Some(a)) if a > b => (a - b) as f64 * 1e-9,
                    _ => m.seconds,
                };
                (m, cpu)
            };
            for i in 0..OVERHEAD_REPEATS {
                // Shift the heap layout between pairs: allocation-address
                // luck (page/cache-set collisions in the classifier maps)
                // can bias either variant by several percent for an
                // entire process lifetime. Holding a varying-size pad
                // during the pair moves subsequent allocations, turning
                // that per-process bias into per-pair noise the trimmed
                // mean cancels.
                let pad_len = (i % 61) * 4096 + (i % 13) * 64 + 1;
                let mut pad = vec![0u8; pad_len];
                for b in pad.iter_mut().step_by(4096) {
                    *b = 1;
                }
                std::hint::black_box(&mut pad);
                // Alternate which variant goes first so that any load
                // ramping across the measurement window biases half the
                // pairs one way and half the other.
                let (plain, instr) = if i % 2 == 0 {
                    let p = timed(&run_plain);
                    (p, timed(&run_instr))
                } else {
                    let q = timed(&run_instr);
                    (timed(&run_plain), q)
                };
                ratios.push(instr.1 / plain.1);
                if instr.1 < best_instr {
                    best_instr = instr.1;
                    instrumented = Some(instr.0);
                }
            }
            let instrumented = instrumented.expect("at least one repeat");
            // Per block: drop the top and bottom quarter of pair ratios
            // (where noise hit only one half), average the rest. Figure:
            // minimum across blocks (see OVERHEAD_REPEATS).
            let block_estimate = |block: &[f64]| {
                let mut sorted = block.to_vec();
                sorted.sort_by(|a, b| a.total_cmp(b));
                let trim = sorted.len() / 4;
                let kept = &sorted[trim..sorted.len() - trim];
                kept.iter().sum::<f64>() / kept.len() as f64
            };
            let overhead_percent = (ratios
                .chunks(OVERHEAD_REPEATS / OVERHEAD_BLOCKS)
                .map(block_estimate)
                .fold(f64::MAX, f64::min)
                - 1.0)
                * 100.0;
            println!(
                "   instrumented (1/{PROFILE_EVERY} sampling): {:.3}s  ({:.0} updates/s, \
             {overhead_percent:+.2}% overhead)",
                instrumented.seconds, instrumented.updates_per_sec
            );
            (instrumented, overhead_percent)
        });

        let batch = if updates <= batch_cap {
            let m = measure(|| {
                let mut archive = UpdateArchive::from_source(&mut open(), cfg.epoch_seconds)
                    .expect("in-memory MRT cannot fail");
                clean_archive(&mut archive, &registry, &CleaningConfig::default());
                let _ = overview(&archive);
                let _ = classify_archive(&archive).counts;
                archive.update_count() as u64
            });
            println!("   batch:     {:.3}s  ({:.0} updates/s)", m.seconds, m.updates_per_sec);
            Some(m)
        } else {
            println!("   batch:     skipped (> {batch_cap} updates; see --batch-cap)");
            None
        };

        let mut row = format!(
            "{{\"target_announcements\":{target},\"updates\":{updates},\"mrt_bytes\":{},\
             \"streaming\":{},\"sharded\":{{\"threads\":{threads},\"result\":{}}}",
            bytes.len(),
            json_measurement(&streaming),
            json_measurement(&sharded),
        );
        if let Some((instrumented, overhead_percent)) = &overhead {
            let _ = write!(
                row,
                ",\"instrumented\":{{\"profile_every\":{PROFILE_EVERY},\"result\":{},\
                 \"overhead_percent\":{overhead_percent:.2}}}",
                json_measurement(instrumented),
            );
        }
        match &batch {
            Some(m) => {
                let _ = write!(row, ",\"batch\":{}}}", json_measurement(m));
            }
            None => row.push_str(",\"batch\":null}"),
        }
        rows.push(row);
    }

    let json = format!("{{\"bench\":\"pipeline\",\"results\":[{}]}}\n", rows.join(","));
    std::fs::write(&out_path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {out_path}");
}
