//! Pipeline throughput measurement with machine-readable output — the
//! perf-trajectory anchor for the streaming redesign.
//!
//! Measures, per workload size: streaming one-pass analysis (cleaning +
//! classification + Table 1/2 sinks) over MRT bytes, the sharded variant,
//! and the batch path (materialize → clean → classify) for comparison.
//! Emits `BENCH_pipeline.json` (or `--out <path>`) so CI can archive the
//! numbers run over run.
//!
//! ```sh
//! cargo run --release -p kcc_bench --bin bench_pipeline -- \
//!     --sizes 10000,100000 --threads 4 --out BENCH_pipeline.json
//! ```
//!
//! Batch runs are skipped above `--batch-cap` updates (default 200k):
//! materializing the day at 1M+ is exactly what the streaming path
//! exists to avoid.

use std::fmt::Write as _;
use std::time::Instant;

use kcc_bench::mrtgen::{generate_mrt_day, MrtDay};
use kcc_collector::UpdateArchive;
use kcc_core::table::{overview, OverviewSink};
use kcc_core::{
    classify_archive, clean_archive, run_pipeline, run_sharded, CleaningConfig, CleaningStage,
    CountsSink, MrtSource,
};
use kcc_tracegen::Mar20Config;

/// One measured mode.
struct Measurement {
    seconds: f64,
    updates_per_sec: f64,
}

fn measure<F: FnOnce() -> u64>(f: F) -> Measurement {
    let start = Instant::now();
    let updates = f();
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    Measurement { seconds, updates_per_sec: updates as f64 / seconds }
}

fn json_measurement(m: &Measurement) -> String {
    format!("{{\"seconds\":{:.6},\"updates_per_sec\":{:.0}}}", m.seconds, m.updates_per_sec)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sizes: Vec<u64> = vec![10_000, 100_000];
    let mut out_path = String::from("BENCH_pipeline.json");
    let mut threads = 4usize;
    let mut batch_cap = 200_000u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sizes" => {
                if let Some(v) = it.next() {
                    sizes = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
                }
            }
            "--out" => {
                if let Some(v) = it.next() {
                    out_path = v.clone();
                }
            }
            "--threads" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    threads = v;
                }
            }
            "--batch-cap" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    batch_cap = v;
                }
            }
            _ => {}
        }
    }

    let mut rows = Vec::new();
    for &target in &sizes {
        let cfg = Mar20Config { target_announcements: target, ..Default::default() };
        println!("== generating ~{target} announcements to MRT bytes ==");
        let MrtDay { bytes, updates, registry, route_servers } = generate_mrt_day(&cfg);
        println!("   {} updates, {:.1} MiB", updates, bytes.len() as f64 / (1024.0 * 1024.0));
        let open = || {
            MrtSource::new(&bytes[..], "rrc00", cfg.epoch_seconds)
                .with_route_servers(route_servers.clone())
        };

        let streaming = measure(|| {
            let stage = CleaningStage::new(&registry, CleaningConfig::default());
            let out = run_pipeline(open(), stage, (OverviewSink::default(), CountsSink::default()))
                .expect("in-memory MRT cannot fail");
            out.stats.updates
        });
        println!(
            "   streaming: {:.3}s  ({:.0} updates/s)",
            streaming.seconds, streaming.updates_per_sec
        );

        let sharded = measure(|| {
            let out = run_sharded(
                open(),
                threads,
                || CleaningStage::new(&registry, CleaningConfig::default()),
                || (OverviewSink::default(), CountsSink::default()),
            )
            .expect("in-memory MRT cannot fail");
            out.stats.updates
        });
        println!(
            "   sharded×{threads}: {:.3}s  ({:.0} updates/s)",
            sharded.seconds, sharded.updates_per_sec
        );

        let batch = if updates <= batch_cap {
            let m = measure(|| {
                let mut archive = UpdateArchive::from_source(&mut open(), cfg.epoch_seconds)
                    .expect("in-memory MRT cannot fail");
                clean_archive(&mut archive, &registry, &CleaningConfig::default());
                let _ = overview(&archive);
                let _ = classify_archive(&archive).counts;
                archive.update_count() as u64
            });
            println!("   batch:     {:.3}s  ({:.0} updates/s)", m.seconds, m.updates_per_sec);
            Some(m)
        } else {
            println!("   batch:     skipped (> {batch_cap} updates; see --batch-cap)");
            None
        };

        let mut row = format!(
            "{{\"target_announcements\":{target},\"updates\":{updates},\"mrt_bytes\":{},\
             \"streaming\":{},\"sharded\":{{\"threads\":{threads},\"result\":{}}}",
            bytes.len(),
            json_measurement(&streaming),
            json_measurement(&sharded),
        );
        match &batch {
            Some(m) => {
                let _ = write!(row, ",\"batch\":{}}}", json_measurement(m));
            }
            None => row.push_str(",\"batch\":null}"),
        }
        rows.push(row);
    }

    let json = format!("{{\"bench\":\"pipeline\",\"results\":[{}]}}\n", rows.join(","));
    std::fs::write(&out_path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {out_path}");
}
