//! Table 1: overview of the *d_mar20* dataset.
//!
//! The synthetic snapshot is a scale model (default ≈ 1/3400 of the
//! paper's 1.008 B announcements; raise with `--scale`). Absolute counts
//! therefore differ; the *structural ratios* the paper's analysis rests
//! on — announcements carrying communities, withdrawals per announcement,
//! sessions per peer — are the comparison targets.

use kcc_bench::{Args, Comparison};
use kcc_core::table::overview;
use kcc_core::{clean_archive, CleaningConfig};
use kcc_tracegen::{generate_mar20, Mar20Config};

fn main() {
    let args = Args::from_env();
    let mut cfg = Mar20Config {
        seed: args.seed,
        target_announcements: args.sized(300_000),
        ..Default::default()
    };
    if args.quick {
        cfg.universe.n_prefixes_v4 = 400;
        cfg.universe.n_sessions = 60;
    }
    println!(
        "== Table 1: d_mar20 overview (synthetic, target {} announcements) ==\n",
        cfg.target_announcements
    );

    let out = generate_mar20(&cfg);
    let mut archive = out.archive;
    let report = clean_archive(&mut archive, &out.registry, &CleaningConfig::default());
    println!(
        "cleaning: removed {} (unallocated ASN) + {} (unallocated prefix), {} route-server insertions, {} sessions normalized\n",
        report.removed_unallocated_asn,
        report.removed_unallocated_prefix,
        report.route_server_insertions,
        report.sessions_normalized
    );

    let stats = overview(&archive);
    println!("{}", stats.render("Overview *d_mar20 (synthetic scale model)"));

    let mut cmp = Comparison::new();
    // Paper: 737.0M of 1,008M announcements carry communities (73.1%).
    let comm_share = stats.with_communities as f64 * 100.0 / stats.announcements.max(1) as f64;
    cmp.add_pct("announcements w/ communities (%)", 73.1, comm_share, 0.15);
    // Paper: 38.5M withdrawals vs 1,008M announcements (3.8%).
    let wd_share = stats.withdrawals as f64 * 100.0 / stats.announcements.max(1) as f64;
    cmp.add_pct("withdrawals per 100 announcements", 3.8, wd_share, 2.5);
    // Paper: 1,504 sessions over 581 peers (2.6 sessions/peer).
    let spp = stats.sessions as f64 / stats.peers.max(1) as f64;
    cmp.add_pct("sessions per peer", 2.6, spp, 0.35);
    // Paper: IPv6 prefixes ≈ 9.3% of IPv4 count.
    let v6_ratio = stats.ipv6_prefixes as f64 * 100.0 / stats.ipv4_prefixes.max(1) as f64;
    cmp.add_pct("IPv6/IPv4 prefix ratio (%)", 9.3, v6_ratio, 0.5);
    println!("{}", cmp.render());
}
