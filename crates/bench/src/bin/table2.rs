//! Table 2: announcement-type shares in *d_mar20* and *d_beacon*.
//!
//! The headline numbers of the paper's §5: around half of all
//! announcements carry no path change (`nc` + `nn` ≈ 50 %), and half of
//! *those* change only the community attribute.

use kcc_bench::{Args, Comparison};
use kcc_core::table::TypeShares;
use kcc_core::{classify_archive, clean_archive, AnnouncementType, CleaningConfig};
use kcc_tracegen::{generate_mar20, Mar20Config};

fn main() {
    let args = Args::from_env();
    let mut cfg = Mar20Config {
        seed: args.seed,
        target_announcements: args.sized(300_000),
        ..Default::default()
    };
    if args.quick {
        cfg.universe.n_prefixes_v4 = 400;
        cfg.universe.n_sessions = 60;
    }
    println!("== Table 2: announcement types (synthetic d_mar20 / d_beacon) ==\n");

    let out = generate_mar20(&cfg);
    let mut archive = out.archive;
    clean_archive(&mut archive, &out.registry, &CleaningConfig::default());
    let classified = classify_archive(&archive);

    // d_beacon: the beacon-prefix subset of the same archive.
    let mut beacon_counts = kcc_core::TypeCounts::default();
    for (key, _) in classified.per_session.iter() {
        for prefix in &out.beacon_prefixes {
            beacon_counts.merge(&classified.stream_counts(key, prefix));
        }
    }

    let shares = TypeShares::new(vec![
        ("*d_mar20".into(), classified.counts),
        ("d_beacon".into(), beacon_counts),
    ]);
    println!("{}", shares.render());
    println!(
        "nn announcements attributable to MED-only changes: {} of {}\n",
        classified.counts.nn_med_only, classified.counts.nn
    );

    let mut cmp = Comparison::new();
    let c = &classified.counts;
    cmp.add_pct("d_mar20 pc share %", 33.7, c.share(AnnouncementType::Pc), 0.20);
    cmp.add_pct("d_mar20 pn share %", 15.1, c.share(AnnouncementType::Pn), 0.30);
    cmp.add_pct("d_mar20 nc share %", 24.5, c.share(AnnouncementType::Nc), 0.25);
    cmp.add_pct("d_mar20 nn share %", 25.7, c.share(AnnouncementType::Nn), 0.25);
    let no_path = c.share(AnnouncementType::Nc) + c.share(AnnouncementType::Nn);
    cmp.add_pct("d_mar20 no-path-change (nc+nn) %", 50.2, no_path, 0.20);
    let x = c.share(AnnouncementType::Xc) + c.share(AnnouncementType::Xn);
    cmp.add("d_mar20 prepending (xc+xn) ≈ 1%", "1.0", &format!("{x:.1}"), x < 3.0);

    let b = &beacon_counts;
    cmp.add_pct("d_beacon pc share %", 44.6, b.share(AnnouncementType::Pc), 0.30);
    cmp.add_pct("d_beacon pn share %", 29.9, b.share(AnnouncementType::Pn), 0.40);
    cmp.add_pct("d_beacon nc share %", 13.8, b.share(AnnouncementType::Nc), 0.50);
    cmp.add_pct("d_beacon nn share %", 11.2, b.share(AnnouncementType::Nn), 0.50);
    // Ordering claims: pc dominates d_beacon; nc+nn ≈ 25% there.
    let b_no_path = b.share(AnnouncementType::Nc) + b.share(AnnouncementType::Nn);
    cmp.add(
        "d_beacon pc is dominant type",
        "44.6% > others",
        &format!("{:.1}%", b.share(AnnouncementType::Pc)),
        AnnouncementType::ALL.iter().all(|&t| b.share(AnnouncementType::Pc) >= b.share(t)),
    );
    cmp.add_pct("d_beacon no-path-change %", 25.0, b_no_path, 0.45);
    println!("{}", cmp.render());
}
