//! Fig. 4: cumulative announcement types over a day for one
//! `(session, AS path)` — the geo-tagging / community-exploration case.
//!
//! The paper's example: a route that is never best (path `20205 3356 174
//! 12654`) shows up *only* during withdrawal phases, as a `pc` followed by
//! `nc` announcements whose geo communities reveal ingress locations. The
//! harness finds the equivalent stream in the simulated beacon day: the
//! non-cleaning session + backup path with the most `nc` traffic.

use std::collections::HashMap;

use kcc_bench::{run_beacon_day, Args, BeaconDayConfig, Comparison};
use kcc_bgp_types::AsPath;
use kcc_collector::{BeaconPhase, BeaconSchedule, SessionKey};
use kcc_core::beacon_phase::DAY_US;
use kcc_core::cumsum::path_timeline;
use kcc_core::exploration::{detect, summarize};
use kcc_core::stream::EventKind;
use kcc_core::{classify_archive, AnnouncementType};

fn main() {
    let args = Args::from_env();
    let mut cfg = BeaconDayConfig { seed: args.seed, ..Default::default() };
    if args.quick {
        cfg.n_transit = 8;
        cfg.n_stub = 12;
        cfg.stub_peers = 4;
    }
    println!("== Fig. 4: community exploration on one (session, path) (simulated) ==\n");

    let out = run_beacon_day(&cfg);
    let classified = classify_archive(&out.archive);

    // Find the (session, path) with the most nc announcements, preferring
    // paths that — like the paper's example — are *never best*: every
    // appearance falls inside a withdrawal phase.
    let schedule = BeaconSchedule::default();
    let mut nc_by_stream: HashMap<(SessionKey, String), (u32, bool)> = HashMap::new();
    for (key, events) in &classified.per_session {
        for e in events {
            if e.prefix != out.beacon_prefix {
                continue;
            }
            let (is_nc, attrs) = match (&e.kind, &e.attrs) {
                (EventKind::Classified { atype, .. }, Some(attrs)) => {
                    (*atype == AnnouncementType::Nc, attrs)
                }
                (EventKind::Initial, Some(attrs)) => (false, attrs),
                _ => continue,
            };
            let in_withdrawal =
                matches!(schedule.phase_of(e.time_us % DAY_US), BeaconPhase::Withdrawal(_));
            let entry =
                nc_by_stream.entry((key.clone(), attrs.as_path.to_string())).or_insert((0, true));
            if is_nc {
                entry.0 += 1;
            }
            entry.1 &= in_withdrawal;
        }
    }
    let Some(((session, path_str), (nc_count, _))) = nc_by_stream
        .into_iter()
        .filter(|(_, (nc, _))| *nc > 0)
        .max_by_key(|(_, (nc, withdrawal_only))| (*withdrawal_only, *nc))
    else {
        println!("no nc traffic found — increase topology size");
        return;
    };
    let path: AsPath = path_str.parse().expect("rendered path parses");
    println!("selected session: {session}");
    println!("selected AS path: {path}  ({nc_count} nc announcements)\n");

    let timeline = path_timeline(&classified, &session, &out.beacon_prefix, Some(&path));
    println!("{}", timeline.to_csv());

    // Decode the revealed locations (the paper: 9 locations in 19
    // announcements — cities, countries, regions).
    let episodes = detect(&classified, &BeaconSchedule::default(), &[out.beacon_prefix]);
    let summary = summarize(&episodes);
    let this_stream: Vec<_> = episodes.iter().filter(|e| e.session == session).collect();
    let locations: usize = this_stream.iter().map(|e| e.locations.len()).sum();
    println!(
        "exploration episodes on this session: {}; distinct locations revealed: {locations}",
        this_stream.len()
    );
    println!(
        "network-wide: {} episodes, {} with community exploration, {} nc updates\n",
        summary.episodes, summary.exploration_episodes, summary.total_nc
    );

    let mut cmp = Comparison::new();
    let in_withdraw = timeline
        .points
        .iter()
        .filter(|p| matches!(schedule.phase_of(p.time_us % DAY_US), BeaconPhase::Withdrawal(_)))
        .count();
    cmp.add(
        "announcements confined to withdrawal phases",
        "all",
        &format!("{in_withdraw}/{}", timeline.points.len()),
        in_withdraw * 10 >= timeline.points.len() * 8,
    );
    let nc = timeline.count_of(AnnouncementType::Nc);
    let pc = timeline.count_of(AnnouncementType::Pc);
    cmp.add(
        "nc outnumbers pc on the explored path (paper: 13 vs 6)",
        "nc > pc",
        &format!("nc={nc} pc={pc}"),
        nc >= pc,
    );
    cmp.add(
        "multiple locations revealed on one path",
        "9 locations",
        &format!("{locations} locations"),
        locations > 1,
    );
    println!("{}", cmp.render());
}
