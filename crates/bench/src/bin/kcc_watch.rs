//! `kcc-watch` — the CommunityWatch anomaly service over MRT corpora
//! and rotated dump directories, plus its eval and soak harnesses.
//!
//! Inputs: `*.mrt` files (each one collector, named by file stem) and/or
//! directories (each one *rotated collector feed* — every `*.mrt` inside
//! streamed in name order under the directory's name, the layout a
//! `kccd --dump-dir` daemon writes). Every vantage runs through its own
//! [`WatchSink`] pipeline; the merged report's alerts print one per
//! line in the canonical deterministic order.
//!
//! ```sh
//! kcc-watch rrc00.mrt rrc01.mrt                 # corpus of dumps
//! kcc-watch --follow 30 /var/kccd/dumps         # tail a daemon feed
//! kcc-watch --train yesterday/ today.mrt        # + §7 profile checks
//! kcc-watch --eval                              # labeled fault library
//! kcc-watch --soak 90000                        # self-contained soak
//! ```
//!
//! `--eval` replays the four labeled fault scenarios
//! (`kcc_bgp_sim::fault_library`) through the detector and fails unless
//! every scenario raises exactly its labeled alert kind. `--soak N`
//! generates an N-announcement multi-vantage day, injects a prefix
//! hijack into one vantage and silences another for the tail of the
//! day, replays the whole corpus through the watch pipeline, and fails
//! unless exactly those two alert kinds fire — the end-to-end gate CI
//! runs under a memory ceiling.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use kcc_bench::watch_eval::{alert_lines, eval_library};
use kcc_bgp_types::{AsPath, Asn, MessageKind, PathAttributes, Prefix, RouteUpdate};
use kcc_collector::UpdateArchive;
use kcc_core::pipeline::PipelineBuilder;
use kcc_core::{
    CommunityProfiler, Corpus, MrtDirSource, MrtFileOptions, MrtSource, WatchConfig, WatchReport,
    WatchSink,
};
use kcc_tracegen::{vantage_names, MultiVantageConfig, VantageSource};

struct Options {
    inputs: Vec<PathBuf>,
    train: Vec<PathBuf>,
    epoch: Option<u32>,
    clamp: bool,
    threads: usize,
    follow_secs: Option<u64>,
    cfg: WatchConfig,
    metrics_out: Option<PathBuf>,
}

fn usage() {
    println!(
        "usage: kcc-watch [--epoch SECONDS] [--clamp] [--threads N] [--follow SECS]\n\
         \x20                [--window-us N] [--learn N] [--rate-min N] [--outage-windows N]\n\
         \x20                [--metrics-out FILE]\n\
         \x20                [--train <file.mrt|dir>]... <file.mrt | dir>...\n\
         \x20      kcc-watch --eval\n\
         \x20      kcc-watch --soak [ANNOUNCEMENTS]\n\
         \n\
         Files are collectors named by stem; a directory is one rotated\n\
         collector feed (kccd dump layout). --follow tails directories for\n\
         SECS seconds before draining. --train enables the community\n\
         profile checks (novel values, blackhole injection, bursts)."
    );
}

/// The timestamp of a file's first MRT record — 4 bytes of I/O.
fn first_record_seconds(path: &Path) -> Option<u32> {
    let mut file = std::fs::File::open(path).ok()?;
    let mut buf = [0u8; 4];
    file.read_exact(&mut buf).ok()?;
    Some(u32::from_be_bytes(buf))
}

/// `*.mrt` files under a directory, sorted by name.
fn mrt_files_in(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
    let mut found: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "mrt"))
        .collect();
    found.sort();
    Ok(found)
}

/// Derives the day anchor: the earliest first-record timestamp across
/// all inputs, floored to midnight UTC.
fn derive_epoch(inputs: &[PathBuf], train: &[PathBuf]) -> Option<u32> {
    let mut earliest: Option<u32> = None;
    for input in inputs.iter().chain(train) {
        let files = if input.is_dir() { mrt_files_in(input).ok()? } else { vec![input.clone()] };
        for f in &files {
            if let Some(s) = first_record_seconds(f) {
                earliest = Some(earliest.map_or(s, |e| e.min(s)));
            }
        }
    }
    earliest.map(|e| e - e % 86_400)
}

/// Loads one training input (file or directory-as-one-feed) into an
/// archive and folds it into the profiler.
fn train_profiler(
    profiler: &mut CommunityProfiler,
    path: &Path,
    epoch: u32,
    options: &MrtFileOptions,
) -> Result<(), String> {
    let archive = if path.is_dir() {
        let mut src = MrtDirSource::new(path, "train", epoch).with_options(options.clone());
        UpdateArchive::from_source(&mut src, epoch).map_err(|e| e.to_string())?
    } else {
        let file =
            std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
        let mut src = MrtSource::new(std::io::BufReader::new(file), "train", epoch)
            .with_route_servers(options.route_servers.iter().copied());
        if options.clamp_pre_epoch {
            src = src.with_pre_epoch_clamp();
        }
        UpdateArchive::from_source(&mut src, epoch).map_err(|e| e.to_string())?
    };
    profiler.train(&archive);
    Ok(())
}

/// Collector name for a directory feed: the directory's file name.
fn dir_collector_name(dir: &Path) -> Result<String, String> {
    dir.file_name()
        .and_then(|s| s.to_str())
        .map(str::to_owned)
        .ok_or_else(|| format!("unnameable feed directory: {}", dir.display()))
}

/// Builds the corpus and runs the watch pipelines; returns the merged
/// report.
fn run_watch(opts: &Options, epoch: u32) -> Result<WatchReport, String> {
    let options = MrtFileOptions { clamp_pre_epoch: opts.clamp, ..Default::default() };
    let mut corpus = Corpus::new();
    let mut stop_flags = Vec::new();
    for input in &opts.inputs {
        if input.is_dir() {
            let name = dir_collector_name(input)?;
            let mut src = MrtDirSource::new(input, &name, epoch).with_options(options.clone());
            if let Some(secs) = opts.follow_secs {
                src = src.follow(Duration::from_millis(200));
                stop_flags.push((src.shutdown_flag(), secs));
            }
            corpus.push(&name, src).map_err(|e| e.to_string())?;
        } else {
            corpus.push_mrt_file_with(input, epoch, &options).map_err(|e| e.to_string())?;
        }
    }

    let profiler = if opts.train.is_empty() {
        None
    } else {
        let mut p = CommunityProfiler::new();
        for path in &opts.train {
            train_profiler(&mut p, path, epoch, &options)?;
        }
        Some(Arc::new(p))
    };

    // Follow mode ends by the clock: one timer thread per followed feed.
    let timers: Vec<_> = stop_flags
        .into_iter()
        .map(|(flag, secs)| {
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_secs(secs));
                flag.trigger();
            })
        })
        .collect();

    let cfg = opts.cfg;
    let make_profiler = profiler.clone();
    let out = PipelineBuilder::collectors(corpus)
        .threads(opts.threads)
        .stages_for(|_: &str| ())
        .sinks_for(move |_: &str| {
            let sink = WatchSink::new(cfg);
            match &make_profiler {
                Some(p) => sink.with_profile(Arc::clone(p)),
                None => sink,
            }
        })
        .run()
        .map_err(|e| e.to_string())?;
    for t in timers {
        let _ = t.join();
    }
    Ok(out.combined.finish())
}

fn print_report(report: &WatchReport) {
    for alert in &report.alerts {
        println!("{}", alert.to_line());
    }
    let (communities, unanimous, disputed) = report.agreement_summary();
    println!(
        "\nwatch: {} updates, {} streams, {} active windows; \
         {} communities across collectors ({unanimous} unanimous, {disputed} disputed)",
        report.updates, report.streams, report.windows, communities
    );
    if report.alerts.is_empty() {
        println!("watch: no alerts");
    } else {
        let kinds: Vec<String> =
            report.kind_counts().iter().map(|(k, n)| format!("{k} x{n}")).collect();
        println!("watch: {} alerts ({})", report.alerts.len(), kinds.join(", "));
    }
}

fn run_eval() -> ExitCode {
    let results = eval_library();
    let mut ok = true;
    for r in &results {
        println!("{}", r.to_line());
        for line in alert_lines(&r.report) {
            println!("  {line}");
        }
        ok &= r.pass;
    }
    if ok {
        println!("eval: all {} labeled faults detected, no false alert kinds", results.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("eval: FAILED");
        ExitCode::FAILURE
    }
}

/// One vantage of the generated soak day, materialized for fault
/// injection.
fn soak_vantage(cfg: &MultiVantageConfig, name: &str) -> UpdateArchive {
    let mut src = VantageSource::new(cfg, name);
    UpdateArchive::from_source(&mut src, cfg.base.epoch_seconds)
        .expect("generated sources cannot fail")
}

/// Makes the generated background day path-stable so the injected
/// faults are the *only* path-level deviations: pins every
/// `(session, prefix)` stream to its first-seen AS path (the raw
/// generator explores alternate transits all day, which a path-novelty
/// detector rightly flags), then replays each stream's canonical
/// announcement into the first `learn_windows` detection windows so
/// every origin and on-path AS is learned before detection starts.
fn stabilize(archive: &mut UpdateArchive, window_us: u64, learn_windows: u64) {
    for (_, rec) in archive.sessions_mut() {
        let mut canonical: BTreeMap<Prefix, AsPath> = BTreeMap::new();
        for u in &mut rec.updates {
            if let MessageKind::Announcement(attrs) = &mut u.kind {
                let path = canonical.entry(u.prefix).or_insert_with(|| attrs.as_path.clone());
                if attrs.as_path != *path {
                    std::sync::Arc::make_mut(attrs).as_path = path.clone();
                }
            }
        }
        let mut first_attrs: BTreeMap<Prefix, std::sync::Arc<PathAttributes>> = BTreeMap::new();
        for u in &rec.updates {
            if let MessageKind::Announcement(attrs) = &u.kind {
                first_attrs.entry(u.prefix).or_insert_with(|| attrs.clone());
            }
        }
        for (prefix, attrs) in first_attrs {
            for w in 0..learn_windows {
                rec.updates.push(RouteUpdate::announce(w * window_us, prefix, attrs.clone()));
            }
        }
        rec.updates.sort_by_key(|u| u.time_us);
    }
}

/// Picks the busiest announcement stream of the first half of the day —
/// the stable baseline the injected hijack deviates from.
fn busiest_stream(archive: &UpdateArchive, half_us: u64) -> Option<(usize, Prefix, usize)> {
    let mut best: Option<(usize, Prefix, usize)> = None;
    for (i, (_, rec)) in archive.sessions().enumerate() {
        let mut counts: std::collections::HashMap<Prefix, usize> = std::collections::HashMap::new();
        for u in &rec.updates {
            if u.time_us <= half_us && matches!(u.kind, MessageKind::Announcement(_)) {
                *counts.entry(u.prefix).or_insert(0) += 1;
            }
        }
        for (prefix, n) in counts {
            if best.as_ref().is_none_or(|&(_, _, bn)| n > bn) {
                best = Some((i, prefix, n));
            }
        }
    }
    best
}

/// All origin ASes announcing `prefix` anywhere in the corpus.
fn origins_of(archives: &[(String, UpdateArchive)], prefix: Prefix) -> BTreeSet<Asn> {
    let mut origins = BTreeSet::new();
    for (_, a) in archives {
        for (_, rec) in a.sessions() {
            for u in &rec.updates {
                if u.prefix == prefix {
                    if let MessageKind::Announcement(attrs) = &u.kind {
                        origins.extend(attrs.as_path.origin());
                    }
                }
            }
        }
    }
    origins
}

fn run_soak(target: u64) -> ExitCode {
    let cfg = MultiVantageConfig {
        base: kcc_tracegen::Mar20Config {
            target_announcements: target,
            universe: kcc_tracegen::universe::UniverseConfig {
                n_collectors: 3,
                n_peers: 9,
                n_sessions: 12,
                n_transits: 8,
                n_origins: 40,
                n_prefixes_v4: 200,
                n_prefixes_v6: 20,
                ..Default::default()
            },
            ..Default::default()
        },
        force_second_granularity: Vec::new(),
    };
    let watch_cfg = WatchConfig::default();
    let names = vantage_names(&cfg.base);
    assert!(names.len() >= 3, "soak needs at least 3 vantages");
    println!("soak: generating {} vantages (~{target} announcements)...", names.len());
    let mut archives: Vec<(String, UpdateArchive)> =
        names.iter().map(|n| (n.clone(), soak_vantage(&cfg, n))).collect();
    for (_, archive) in &mut archives {
        stabilize(archive, watch_cfg.window_us, watch_cfg.learn_windows);
    }

    let day_end = archives
        .iter()
        .flat_map(|(_, a)| a.all_updates())
        .map(|(_, u)| u.time_us)
        .max()
        .unwrap_or(0);
    let hijack_at = day_end / 4 * 3;
    let outage_from = day_end / 5 * 3;

    // Fault 1: a prefix hijack on vantage 0's busiest stream. The bogus
    // origin must be novel for the prefix across the whole corpus.
    let (session_idx, prefix, baseline_count) =
        busiest_stream(&archives[0].1, day_end / 2).expect("generated day has announcements");
    let taken = origins_of(&archives, prefix);
    let bogus = (64_000..65_000).map(Asn).find(|a| !taken.contains(a)).expect("free private ASN");
    {
        let archive = &mut archives[0].1;
        let (key, template) = {
            let (key, rec) = archive.sessions().nth(session_idx).expect("session index valid");
            let attrs = rec
                .updates
                .iter()
                .rev()
                .find_map(|u| match (&u.kind, u.prefix == prefix) {
                    (MessageKind::Announcement(attrs), true) => Some(attrs.clone()),
                    _ => None,
                })
                .expect("stream has announcements");
            (key.clone(), attrs)
        };
        let mut asns: Vec<Asn> = template.as_path.asns().collect();
        *asns.last_mut().expect("non-empty path") = bogus;
        let attrs = PathAttributes { as_path: AsPath::from_asns(asns), ..(*template).clone() };
        archive.record(&key, RouteUpdate::announce(hijack_at, prefix, attrs));
        for (_, rec) in archive.sessions_mut() {
            rec.updates.sort_by_key(|u| u.time_us);
        }
        println!(
            "soak: injected hijack of {prefix} (origin {bogus}, \
             baseline {baseline_count} announcements) at 75% of day"
        );
    }

    // Fault 2: the last vantage goes dark at 60% of the day.
    {
        let (name, archive) = archives.last_mut().expect("at least 3 vantages");
        let mut dropped = 0usize;
        for (_, rec) in archive.sessions_mut() {
            let before = rec.updates.len();
            rec.updates.retain(|u| u.time_us <= outage_from);
            dropped += before - rec.updates.len();
        }
        println!("soak: silenced {name} after 60% of day ({dropped} updates dropped)");
    }

    // Round-trip through real MRT files: the corpus path CI exercises.
    let dir = std::env::temp_dir().join(format!("kcc_watch_soak_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create soak dir");
    let mut inputs = Vec::new();
    for (name, archive) in &archives {
        let path = dir.join(format!("{name}.mrt"));
        let mut bytes = Vec::new();
        archive.write_mrt(&mut bytes).expect("in-memory write cannot fail");
        std::fs::write(&path, bytes).expect("write soak dump");
        inputs.push(path);
    }
    drop(archives);

    let opts = Options {
        inputs,
        train: Vec::new(),
        epoch: Some(cfg.base.epoch_seconds),
        clamp: false,
        threads: 3,
        follow_secs: None,
        cfg: watch_cfg,
        metrics_out: None,
    };
    let report = match run_watch(&opts, cfg.base.epoch_seconds) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kcc-watch: soak run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_report(&report);
    let _ = std::fs::remove_dir_all(&dir);

    let detected: Vec<&'static str> = report.kind_counts().iter().map(|&(k, _)| k).collect();
    let expected = ["collector-outage", "prefix-hijack"];
    if detected == expected {
        println!("soak: PASS — both injected faults detected, zero false alert kinds");
        ExitCode::SUCCESS
    } else {
        eprintln!("soak: FAIL — expected kinds {expected:?}, detected {detected:?}");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        inputs: Vec::new(),
        train: Vec::new(),
        epoch: None,
        clamp: false,
        threads: 4,
        follow_secs: None,
        cfg: WatchConfig::default(),
        metrics_out: None,
    };
    let mut eval = false;
    let mut soak: Option<u64> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--eval" => eval = true,
            "--soak" => {
                soak = Some(
                    it.peek()
                        .and_then(|s| s.parse().ok())
                        .inspect(|_| {
                            it.next();
                        })
                        .unwrap_or(90_000),
                );
            }
            "--epoch" => opts.epoch = it.next().and_then(|s| s.parse().ok()),
            "--clamp" => opts.clamp = true,
            "--threads" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.threads = v;
                }
            }
            "--follow" => opts.follow_secs = it.next().and_then(|s| s.parse().ok()),
            "--metrics-out" => opts.metrics_out = it.next().map(PathBuf::from),
            "--window-us" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.cfg.window_us = v;
                }
            }
            "--learn" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.cfg.learn_windows = v;
                }
            }
            "--rate-min" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.cfg.rate_min = v;
                }
            }
            "--outage-windows" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    opts.cfg.outage_windows = v;
                }
            }
            "--train" => {
                if let Some(p) = it.next() {
                    opts.train.push(PathBuf::from(p));
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => opts.inputs.push(PathBuf::from(other)),
        }
    }

    if eval {
        return run_eval();
    }
    if let Some(target) = soak {
        return run_soak(target);
    }
    if opts.inputs.is_empty() {
        eprintln!("kcc-watch: no inputs (see --help)");
        return ExitCode::FAILURE;
    }

    let epoch = opts.epoch.or_else(|| derive_epoch(&opts.inputs, &opts.train));
    let Some(epoch) = epoch else {
        eprintln!("kcc-watch: could not derive an epoch (empty inputs?); pass --epoch");
        return ExitCode::FAILURE;
    };

    match run_watch(&opts, epoch) {
        Ok(report) => {
            if let Some(path) = &opts.metrics_out {
                let metrics = kcc_obs::Registry::new();
                report.export_metrics(&metrics);
                if let Err(e) = std::fs::write(path, metrics.render()) {
                    eprintln!("kcc-watch: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("metrics written to {}", path.display());
            }
            print_report(&report);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("kcc-watch: {e}");
            ExitCode::FAILURE
        }
    }
}
