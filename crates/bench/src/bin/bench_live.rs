//! Live-ingest scaling: loopback TCP BGP → reactor → pipeline, as a
//! sessions × throughput matrix, with machine-readable output
//! (`BENCH_live.json`) — the perf anchor for the event-driven session
//! engine, next to `BENCH_pipeline.json`'s offline numbers.
//!
//! For each point of `--peers`, spawns an in-process collector daemon on
//! a loopback socket, drives that many **concurrent** nonblocking BGP
//! sessions through the flood rig (all of them Established before the
//! first UPDATE), streams `--updates` total UPDATE messages across them,
//! and measures wall time from stream start to the pipeline having
//! drained the feed. Each point is the best of `--repeat` runs
//! (default 3) and asserts the live classification equals the offline
//! reference before its rate is trusted.
//!
//! ```sh
//! cargo run --release -p kcc_bench --bin bench_live -- \
//!     --peers 4,64,1000,5000 --updates 100000 --out BENCH_live.json
//! ```

use std::fmt::Write as _;
use std::net::{IpAddr, Ipv4Addr};
use std::time::Instant;

use kcc_bgp_types::Asn;
use kcc_collector::{SessionKey, UpdateArchive};
use kcc_core::{run_live, CountsSink};
use kcc_peer::{
    offline_reference, sys, Collector, CollectorConfig, FloodOptions, FloodPlan, FloodRig,
    StampMode,
};
use kcc_tracegen::{generate_mar20, Mar20Config};

struct Point {
    peers: usize,
    updates: u64,
    seconds: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut peer_points = vec![4usize, 64, 1_000, 5_000];
    let mut total_updates = 100_000u64;
    let mut repeat = 3u32;
    let mut out_path = String::from("BENCH_live.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--peers" => {
                if let Some(v) = it.next() {
                    peer_points = v.split(',').filter_map(|s| s.parse().ok()).collect();
                }
            }
            "--updates" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    total_updates = v;
                }
            }
            "--repeat" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    repeat = v;
                }
            }
            "--out" => {
                if let Some(v) = it.next() {
                    out_path = v.clone();
                }
            }
            _ => {}
        }
    }
    assert!(repeat >= 1, "--repeat wants at least 1");
    assert!(!peer_points.is_empty(), "need at least one --peers point");
    // 2 fds per session (client + daemon side) plus headroom.
    let want_fds = peer_points.iter().max().unwrap() * 2 + 512;
    if let Err(e) = sys::raise_nofile_limit(want_fds as u64) {
        eprintln!("bench_live: cannot raise fd limit to {want_fds}: {e}");
    }

    // Workload: one generated day's updates, re-dealt onto each point's
    // session count so every speaker has a realistic mix of
    // announcements, withdrawals and community churn.
    let day = generate_mar20(&Mar20Config {
        target_announcements: total_updates + total_updates / 4,
        ..Default::default()
    });
    let all = day.archive.all_updates();

    // Each point is the best of `repeat` runs: the daemon shares the
    // machine with the rig and the pipeline, so single runs carry
    // scheduler noise the minimum filters out.
    let mut points = Vec::new();
    for &peers in &peer_points {
        let workload = deal(&all, peers, total_updates);
        let mut best = run_point(peers, &workload);
        for _ in 1..repeat {
            let p = run_point(peers, &workload);
            if p.seconds < best.seconds {
                best = p;
            }
        }
        points.push(best);
    }

    let mut json = String::from("{\"bench\":\"live\",\"results\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let rate = p.updates as f64 / p.seconds;
        let _ = write!(
            json,
            "{{\"peers\":{},\"updates\":{},\"seconds\":{:.6},\"updates_per_sec\":{:.0}}}",
            p.peers, p.updates, p.seconds, rate
        );
    }
    json.push_str("]}\n");
    std::fs::write(&out_path, &json).expect("write json");
    println!("{json}");
}

/// Deals `total` updates of the generated day round-robin onto `peers`
/// sessions.
fn deal(
    all: &[(SessionKey, kcc_bgp_types::RouteUpdate)],
    peers: usize,
    total: u64,
) -> UpdateArchive {
    let mut workload = UpdateArchive::new(0);
    let mut dealt = 0u64;
    for (i, (_, update)) in all.iter().enumerate() {
        let p = i % peers;
        let key = SessionKey::new(
            "bench",
            Asn(64_512 + p as u32),
            IpAddr::V4(Ipv4Addr::new(10, 99, (p >> 8) as u8, (p & 0xFF) as u8)),
        );
        workload.record(&key, update.clone());
        dealt += 1;
        if dealt >= total {
            break;
        }
    }
    workload
}

/// One matrix point: `peers` concurrent sessions streaming `workload`.
fn run_point(peers: usize, workload: &UpdateArchive) -> Point {
    let dealt_updates = workload.update_count() as u64;
    let cfg = CollectorConfig::new("bench", Asn(3333), "198.51.100.1".parse().unwrap())
        .with_stamp(StampMode::logical(1_000));
    let mut collector = Collector::bind("127.0.0.1:0", cfg.clone()).expect("bind loopback");
    let addr = collector.local_addr();
    let source = collector.take_source();
    let stop = source.shutdown_flag();

    let plan = FloodPlan::from_archive(workload, 90);
    eprintln!("bench_live: {peers} sessions × {dealt_updates} total updates → {addr}");
    let rig =
        FloodRig::connect(addr, plan, FloodOptions::default()).expect("establish flood sessions");
    assert_eq!(rig.established_count(), peers, "every session concurrently Established");
    // The rig counts a session when *its* FSM goes Up — half a round-trip
    // before the daemon's side. Wait for the daemon's own gauge before
    // streaming, so the peak-concurrency assertion below is
    // deterministic even when the first sessions finish quickly.
    assert!(
        collector.gauges().wait_for_established(peers as u64, std::time::Duration::from_secs(60)),
        "daemon never reported {peers} concurrent sessions"
    );

    // The measured stretch: all sessions stream, the daemon ingests, the
    // pipeline drains. Handshake cost is excluded — this is the
    // steady-state rate a long-lived daemon sustains.
    let start = Instant::now();
    let coordinator = std::thread::spawn(move || {
        let report = rig.stream().expect("flood stream");
        collector.shutdown();
        (report, collector.join())
    });
    let out = run_live(source, (), CountsSink::default(), &stop).expect("live run");
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    let (report, stats) = coordinator.join().expect("coordinator thread");

    // Sanity: everything sent was ingested and classified identically to
    // the offline path, and the daemon really held `peers` sessions at
    // once on a bounded worker pool.
    assert_eq!(report.updates_sent, dealt_updates, "rig sent the whole workload");
    assert_eq!(stats.updates, dealt_updates, "daemon ingested everything");
    assert_eq!(stats.peak_established, peers as u64, "daemon held all sessions concurrently");
    let reference = offline_reference(workload, &cfg);
    let offline = kcc_core::classify_archive(&reference).counts;
    assert_eq!(out.sink.finish(), offline, "live classification != offline");

    let rate = dealt_updates as f64 / seconds;
    eprintln!(
        "bench_live: {peers} sessions: {dealt_updates} updates in {seconds:.3} s → {rate:.0} upd/s"
    );
    Point { peers, updates: dealt_updates, seconds }
}
