//! Live-ingest throughput: loopback TCP BGP → FSM → pipeline, in
//! updates/s, with machine-readable output (`BENCH_live.json`) — the
//! perf anchor for the live collection subsystem, next to
//! `BENCH_pipeline.json`'s offline numbers.
//!
//! Spawns an in-process collector daemon on a loopback socket plus
//! `--peers` concurrent BGP speakers each blasting `--updates` UPDATE
//! messages, and measures wall time from first dial to the pipeline
//! having drained the feed.
//!
//! ```sh
//! cargo run --release -p kcc_bench --bin bench_live -- \
//!     --peers 4 --updates 25000 --out BENCH_live.json
//! ```

use std::net::{IpAddr, Ipv4Addr};
use std::time::Instant;

use kcc_bgp_sim::{replay_archive, BridgeConfig};
use kcc_bgp_types::Asn;
use kcc_collector::{SessionKey, UpdateArchive};
use kcc_core::{run_live, CountsSink};
use kcc_peer::{offline_reference, Collector, CollectorConfig, StampMode};
use kcc_tracegen::{generate_mar20, Mar20Config};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut peers = 4usize;
    let mut updates_per_peer = 25_000u64;
    let mut out_path = String::from("BENCH_live.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--peers" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    peers = v;
                }
            }
            "--updates" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    updates_per_peer = v;
                }
            }
            "--out" => {
                if let Some(v) = it.next() {
                    out_path = v.clone();
                }
            }
            _ => {}
        }
    }

    // Workload: a generated day's updates, re-dealt onto `peers`
    // sessions so every speaker has a realistic mix of announcements,
    // withdrawals and community churn.
    let total = peers as u64 * updates_per_peer;
    let day = generate_mar20(&Mar20Config {
        target_announcements: total + total / 4,
        ..Default::default()
    });
    let mut workload = UpdateArchive::new(0);
    let all = day.archive.all_updates();
    let mut dealt = 0u64;
    'deal: for (i, (_, update)) in all.iter().enumerate() {
        let p = i % peers;
        let key = SessionKey::new(
            "bench",
            Asn(64_512 + p as u32),
            IpAddr::V4(Ipv4Addr::new(10, 99, (p >> 8) as u8, (p & 0xFF) as u8)),
        );
        workload.record(&key, update.clone());
        dealt += 1;
        if dealt >= total {
            break 'deal;
        }
    }
    let dealt_updates = workload.update_count() as u64;

    let cfg = CollectorConfig::new("bench", Asn(3333), "198.51.100.1".parse().unwrap())
        .with_stamp(StampMode::logical(1_000));
    let mut collector = Collector::bind("127.0.0.1:0", cfg.clone()).expect("bind loopback");
    let addr = collector.local_addr();
    let source = collector.take_source();
    let stop = source.shutdown_flag();

    eprintln!("bench_live: {peers} peers × {updates_per_peer} updates → {addr}");
    let start = Instant::now();
    // Coordinator: replay everything, then shut the daemon down. The
    // sessions drain naturally (peers close after Cease), the feed
    // closes, and `run_live` below finishes with every update ingested.
    let coordinator = {
        let workload = workload.clone();
        std::thread::spawn(move || {
            let report = replay_archive(
                addr,
                &workload,
                &BridgeConfig { max_concurrency: peers.max(1), ..Default::default() },
            )
            .expect("replay");
            collector.shutdown();
            (report, collector.join())
        })
    };
    let out = run_live(source, (), CountsSink::default(), &stop).expect("live run");
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    let (report, stats) = coordinator.join().expect("coordinator thread");

    // Sanity: everything sent was ingested and classified identically to
    // the offline path.
    assert_eq!(report.updates_sent, dealt_updates, "bridge sent the whole workload");
    assert_eq!(stats.updates, dealt_updates, "daemon ingested everything");
    let reference = offline_reference(&workload, &cfg);
    let offline = kcc_core::classify_archive(&reference).counts;
    assert_eq!(out.sink.finish(), offline, "live classification != offline");

    let updates_per_sec = dealt_updates as f64 / seconds;
    let json = format!(
        "{{\"peers\":{peers},\"updates\":{dealt_updates},\"seconds\":{seconds:.6},\"updates_per_sec\":{updates_per_sec:.0}}}\n"
    );
    std::fs::write(&out_path, &json).expect("write json");
    println!("{json}");
    eprintln!(
        "bench_live: {dealt_updates} updates over {} sessions in {seconds:.3} s → {updates_per_sec:.0} upd/s",
        stats.sessions
    );
}
