//! Internet-scale simulator throughput measurement with machine-readable
//! output — the perf-trajectory anchor for the arena/interned-RIB core.
//!
//! Per topology size: generates a power-law internet
//! ([`kcc_topology::generate_internet`]), compiles it into a [`Network`]
//! (arena routers, `(Asn, Asn)`-indexed sessions, interned RIBs), runs
//! the beacon flap protocol (converge → flap → heal → reflap) with a
//! collector on the first two transits, and classifies the collector
//! stream into the paper's `pc/pn/nc/nn/xc/xn` announcement types.
//! Emits `BENCH_sim.json` (or `--out <path>`) so CI can gate the
//! events/s figures run over run.
//!
//! ```sh
//! cargo run --release -p kcc_bench --bin bench_sim -- \
//!     --sizes 10000,25000,75000 --out BENCH_sim.json
//! ```
//!
//! Sizes run ascending; `peak_rss_bytes` is the process high-water mark
//! (`VmHWM`), so each row's figure is dominated by its own — the
//! largest-so-far — topology.

use std::time::Instant;

use kcc_bench::sweep::{run_internet_cell, InternetCell};
use kcc_bgp_sim::{SimDuration, VendorProfile};

/// Peak resident set of this process in bytes (`VmHWM` from
/// `/proc/self/status`). `None` where procfs is unavailable.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Nanoseconds the calling thread has spent on-CPU (field 1 of
/// `/proc/thread-self/schedstat`). The simulator runs single-threaded on
/// the calling thread, so on-CPU time measures exactly the workload and
/// excludes run-queue waits — wall time on a contended machine swings far
/// beyond the ±25% the CI gate allows. `None` where unavailable
/// (non-Linux); callers fall back to wall time.
fn thread_cpu_ns() -> Option<u64> {
    let s = std::fs::read_to_string("/proc/thread-self/schedstat")
        .or_else(|_| std::fs::read_to_string("/proc/self/schedstat"))
        .ok()?;
    s.split_whitespace().next()?.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sizes: Vec<usize> = vec![10_000, 25_000, 75_000];
    let mut out_path = String::from("BENCH_sim.json");
    let mut seed = 42u64;
    let mut repeats = 3usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sizes" => {
                if let Some(v) = it.next() {
                    sizes = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
                }
            }
            "--out" => {
                if let Some(v) = it.next() {
                    out_path = v.clone();
                }
            }
            "--seed" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    seed = v;
                }
            }
            "--repeats" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    repeats = v;
                }
            }
            _ => {}
        }
    }
    sizes.sort_unstable();
    let repeats = repeats.max(1);

    let mut rows = Vec::new();
    for &n_ases in &sizes {
        println!("== internet at {n_ases} ASes ==");
        let cell = InternetCell {
            vendor: VendorProfile::BIRD_2,
            // Zero MRAI: the measured quantity is raw event throughput,
            // not timer waiting.
            mrai: SimDuration::ZERO,
            n_ases,
        };
        // Best of `repeats` on on-CPU time: the sim is deterministic, so
        // every repeat does identical work and the fastest pass is the
        // least-preempted look at the true cost.
        let mut r = None;
        let mut seconds = f64::MAX;
        for _ in 0..repeats {
            let cpu_before = thread_cpu_ns();
            let start = Instant::now();
            let pass = run_internet_cell(&cell, seed);
            let wall = start.elapsed().as_secs_f64().max(1e-9);
            let pass_seconds = match (cpu_before, thread_cpu_ns()) {
                (Some(b), Some(a)) if a > b => (a - b) as f64 * 1e-9,
                _ => wall,
            };
            if let Some(prev) = &r {
                assert_eq!(prev, &pass, "deterministic sim produced differing repeats");
            }
            seconds = seconds.min(pass_seconds);
            r = Some(pass);
        }
        let r = r.expect("at least one repeat");
        let updates_per_sec = r.events_processed as f64 / seconds;
        let rss = peak_rss_bytes().unwrap_or(0);
        println!(
            "   {} routers, {} sessions: {} events in {seconds:.3}s ({updates_per_sec:.0} \
             events/s), {} collector msgs, peak RSS {:.1} MiB",
            r.routers,
            r.sessions,
            r.events_processed,
            r.collector_messages,
            rss as f64 / (1024.0 * 1024.0),
        );
        println!(
            "   classes: pc={} pn={} nc={} nn={} xc={} xn={} (initial={}, wd={})",
            r.counts.pc,
            r.counts.pn,
            r.counts.nc,
            r.counts.nn,
            r.counts.xc,
            r.counts.xn,
            r.counts.initial,
            r.counts.withdrawals,
        );
        rows.push(format!(
            "{{\"n_ases\":{n_ases},\"routers\":{},\"sessions\":{},\"events\":{},\
             \"seconds\":{seconds:.6},\"updates_per_sec\":{updates_per_sec:.0},\
             \"peak_rss_bytes\":{rss},\"interned_attr_bytes\":{},\
             \"collector_messages\":{},\"counts\":{{\"initial\":{},\"pc\":{},\"pn\":{},\
             \"nc\":{},\"nn\":{},\"xc\":{},\"xn\":{},\"withdrawals\":{}}}}}",
            r.routers,
            r.sessions,
            r.events_processed,
            r.interned_attr_bytes,
            r.collector_messages,
            r.counts.initial,
            r.counts.pc,
            r.counts.pn,
            r.counts.nc,
            r.counts.nn,
            r.counts.xc,
            r.counts.xn,
            r.counts.withdrawals,
        ));
    }

    let json = format!("{{\"bench\":\"sim\",\"results\":[{}]}}\n", rows.join(","));
    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    println!("wrote {out_path}");
}
