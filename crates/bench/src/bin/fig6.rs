//! Fig. 6: unique community attributes revealed during withdrawal phases,
//! 2010–2020.
//!
//! The paper finds ~60 % of all unique community attributes on beacon
//! prefixes are revealed *exclusively* during withdrawal phases — stable
//! across ten years even as absolute counts grow multifold. The harness
//! regenerates yearly beacon days with growing community adoption and
//! measures the same ratio.

use kcc_bench::{Args, Comparison};
use kcc_collector::BeaconSchedule;
use kcc_core::longitudinal::LongitudinalSeries;
use kcc_core::revealed::revealed_attributes;
use kcc_core::{classify_archive, clean_archive, CleaningConfig};
use kcc_tracegen::generate_mar20;
use kcc_tracegen::hist::{day_configs, HistConfig};

fn main() {
    let args = Args::from_env();
    let cfg = HistConfig {
        seed: args.seed,
        target_announcements_2020: args.sized(30_000),
        samples_per_year: 1, // yearly resolution suffices for the ratio
        ..Default::default()
    };
    println!("== Fig. 6: revealed community attributes during withdrawal phases ==\n");

    let schedule = BeaconSchedule::default();
    let mut series = LongitudinalSeries::default();
    for (label, day_cfg) in day_configs(&cfg) {
        let out = generate_mar20(&day_cfg);
        let mut archive = out.archive;
        clean_archive(&mut archive, &out.registry, &CleaningConfig::default());
        let revealed = revealed_attributes(&archive, &schedule, &out.beacon_prefixes);
        let classified = classify_archive(&archive);
        series.push_with_revealed(label, classified.counts, revealed);
    }
    println!("{}", series.fig6_csv());

    let mut cmp = Comparison::new();
    let mean_ratio = series.mean_withdrawal_ratio();
    cmp.add_pct("mean withdrawal-exclusive ratio", 0.60 * 100.0, mean_ratio * 100.0, 0.30);
    let first_total = series.points.first().and_then(|p| p.revealed).map(|r| r.total).unwrap_or(0);
    let last_total = series.points.last().and_then(|p| p.revealed).map(|r| r.total).unwrap_or(0);
    cmp.add(
        "unique attributes grow multifold over the decade",
        "multifold",
        &format!("{first_total} → {last_total}"),
        last_total > first_total * 2,
    );
    let ratios: Vec<f64> =
        series.points.iter().filter_map(|p| p.revealed.map(|r| r.withdrawal_ratio())).collect();
    let stable = ratios.iter().all(|r| (r - mean_ratio).abs() < 0.2);
    cmp.add(
        "ratio stable across years (±0.2)",
        "stable ~0.6",
        &format!(
            "{:.2}..{:.2}",
            ratios.iter().cloned().fold(f64::MAX, f64::min),
            ratios.iter().cloned().fold(0.0, f64::max)
        ),
        stable,
    );
    println!("{}", cmp.render());
}
