//! Ablation: community cleaning strategy vs. routing-message load.
//!
//! The paper's §7 recommendation is "properly filter BGP communities".
//! This ablation quantifies it on the simulated beacon day: with the whole
//! Internet cleaning nowhere / on egress / on ingress, how many messages
//! does the collector receive, and of which types? It also re-runs the lab
//! topology per strategy (Exp2/Exp3/Exp4 are exactly the three
//! strategies at a single AS).

use kcc_bench::{Args, BeaconDayConfig, Comparison};
use kcc_bgp_sim::lab::{run_experiment, LabExperiment};
use kcc_bgp_sim::VendorProfile;
use kcc_core::classify_archive;
use kcc_core::report::render_table;
use kcc_topology::behavior::CommunityBehavior;

/// Cleaning strategy applied uniformly to every AS (tagging untouched).
#[derive(Clone, Copy)]
enum Strategy {
    NoCleaning,
    AllEgress,
    AllIngress,
}

fn beacon_day_with_strategy(args: &Args, strategy: Strategy) -> kcc_core::TypeCounts {
    let mut cfg = BeaconDayConfig { seed: args.seed, ..Default::default() };
    if args.quick {
        cfg.n_transit = 8;
        cfg.n_stub = 12;
        cfg.stub_peers = 4;
    }
    // One fixed topology per seed; only the cleaning behavior varies, so
    // the three strategies are compared on identical networks.
    let beacon_prefix: kcc_bgp_types::Prefix = "84.205.64.0/24".parse().expect("prefix");
    let mut topo = kcc_topology::generate(&kcc_topology::TopologyConfig {
        seed: cfg.seed,
        n_tier1: cfg.n_tier1,
        n_transit: cfg.n_transit,
        n_stub: cfg.n_stub,
        with_beacon_origin: true,
        beacon_prefixes: vec![beacon_prefix],
        ..Default::default()
    });
    let asns: Vec<_> = topo.nodes().map(|n| n.asn).collect();
    for asn in asns {
        if let Some(node) = topo.node_mut(asn) {
            node.behavior = CommunityBehavior {
                tags_geo: node.behavior.tags_geo,
                cleans_egress: matches!(strategy, Strategy::AllEgress),
                cleans_ingress: matches!(strategy, Strategy::AllIngress),
            };
        }
    }
    let mut net = kcc_bgp_sim::Network::from_topology(
        &topo,
        kcc_bgp_sim::SimConfig {
            seed: cfg.seed,
            vendor_mix: cfg.vendor_mix.clone(),
            ..Default::default()
        },
    );
    let peers: Vec<_> = topo
        .nodes()
        .filter(|n| n.tier == kcc_topology::Tier::Transit)
        .map(|n| n.router_id(0))
        .collect();
    let (collector, _) = net.attach_collector(kcc_bgp_types::Asn(3333), &peers);
    let beacon_router = kcc_topology::RouterId { asn: kcc_bgp_types::Asn(12_654), index: 0 };
    net.announce_all_origins(&topo, kcc_bgp_sim::SimTime::ZERO);
    net.run_until_quiet();
    let t = net.now() + kcc_bgp_sim::SimDuration::from_secs(10);
    net.schedule_withdraw(t, beacon_router, beacon_prefix);
    net.run_until_quiet();
    net.clear_captures();
    let day_start = kcc_bgp_sim::SimTime(((net.now().0 / 60_000_000) + 2) * 60_000_000);
    for (offset, event) in kcc_collector::BeaconSchedule::default().day_events() {
        let at = kcc_bgp_sim::SimTime(day_start.0 + offset);
        match event {
            kcc_collector::BeaconEvent::Announce => {
                net.schedule_announce(at, beacon_router, beacon_prefix)
            }
            kcc_collector::BeaconEvent::Withdraw => {
                net.schedule_withdraw(at, beacon_router, beacon_prefix)
            }
        }
    }
    net.run_until_quiet();
    let capture = net.capture(collector).expect("capture").clone();
    let archive = keep_communities_clean::adapter::capture_to_archive(&net, "rrc00", &capture, 0);
    classify_archive(&archive).counts
}

fn main() {
    let args = Args::from_env();
    println!("== Ablation: community cleaning strategy vs. message load ==\n");

    // Internet-wide sweep on one fixed topology.
    let strategies = [
        ("no cleaning", Strategy::NoCleaning),
        ("all clean egress", Strategy::AllEgress),
        ("all clean ingress", Strategy::AllIngress),
    ];
    let mut rows = Vec::new();
    let mut totals = Vec::new();
    for (name, strategy) in strategies {
        let c = beacon_day_with_strategy(&args, strategy);
        totals.push((name, c));
        rows.push(vec![
            name.to_string(),
            c.announcement_total().to_string(),
            c.nc.to_string(),
            c.nn.to_string(),
            c.withdrawals.to_string(),
        ]);
    }
    println!("{}", render_table(&["strategy", "announcements", "nc", "nn", "withdrawals"], &rows));

    // Per-AS lab view: Exp2/3/4 are the same three strategies at X1.
    let mut lab_rows = Vec::new();
    for (name, exp) in [
        ("no cleaning (Exp2)", LabExperiment::Exp2),
        ("egress cleaning (Exp3)", LabExperiment::Exp3),
        ("ingress cleaning (Exp4)", LabExperiment::Exp4),
    ] {
        let r = run_experiment(exp, VendorProfile::CISCO_IOS);
        lab_rows.push(vec![
            name.to_string(),
            r.y1_to_x1.len().to_string(),
            r.at_collector.len().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["lab strategy (Cisco IOS)", "msgs Y1→X1", "msgs at collector"], &lab_rows)
    );

    let mut cmp = Comparison::new();
    let none = totals[0].1;
    let egress = totals[1].1;
    let ingress = totals[2].1;
    cmp.add(
        "no cleaning maximizes nc traffic",
        "nc highest",
        &format!("{} vs {} vs {}", none.nc, egress.nc, ingress.nc),
        none.nc >= egress.nc && none.nc >= ingress.nc,
    );
    cmp.add(
        "egress cleaning removes nc but keeps duplicates",
        "nc→0, nn>0",
        &format!("nc={} nn={}", egress.nc, egress.nn),
        egress.nc == 0,
    );
    cmp.add(
        "ingress cleaning minimizes total announcements",
        "lowest total",
        &format!(
            "{} vs {} vs {}",
            none.announcement_total(),
            egress.announcement_total(),
            ingress.announcement_total()
        ),
        ingress.announcement_total() <= none.announcement_total()
            && ingress.announcement_total() <= egress.announcement_total(),
    );
    println!("{}", cmp.render());
}
