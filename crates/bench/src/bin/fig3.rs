//! Fig. 3: announcement types per BGP session for one beacon prefix.
//!
//! Runs the *simulated* beacon day (mid-scale Internet, RIS beacon
//! schedule, vendor mix) and shows, per collector session, the type
//! distribution for prefix 84.205.64.0/24 — reproducing the paper's
//! observation that session counts differ widely and every session shows
//! a *diverse* mix of types.

use kcc_bench::{run_beacon_day, Args, BeaconDayConfig, Comparison};
use kcc_core::classify_archive;
use kcc_core::sessions::{render_distribution, render_stacked_bars, session_type_distribution};

fn main() {
    let args = Args::from_env();
    let mut cfg = BeaconDayConfig { seed: args.seed, ..Default::default() };
    if args.quick {
        cfg.n_transit = 8;
        cfg.n_stub = 12;
        cfg.stub_peers = 4;
    }
    println!(
        "== Fig. 3: types per session, beacon 84.205.64.0/24, collector rrc00 (simulated) ==\n"
    );

    let out = run_beacon_day(&cfg);
    let classified = classify_archive(&out.archive);
    let rows = session_type_distribution(&classified, &out.beacon_prefix, Some("rrc00"));

    println!("{}", render_distribution(&rows));
    println!("{}", render_stacked_bars(&rows, 16));

    let mut cmp = Comparison::new();
    cmp.add(
        "multiple sessions observe the beacon",
        ">10 sessions",
        &format!("{} sessions", rows.len()),
        rows.len() > 3,
    );
    let volumes: Vec<u64> = rows.iter().map(|(_, c)| c.announcement_total()).collect();
    let diverse_volume =
        volumes.first().copied().unwrap_or(0) > 2 * volumes.last().copied().unwrap_or(0).max(1);
    cmp.add(
        "session volumes differ widely",
        "max >> min",
        &format!("{:?}…{:?}", volumes.first(), volumes.last()),
        diverse_volume || volumes.len() < 2,
    );
    // Diversity weighted by volume, matching the figure's visual claim:
    // the bulk of the traffic sits in sessions mixing several types.
    let diverse_volume_sum: u64 = rows
        .iter()
        .filter(|(_, c)| {
            let kinds = [c.pc, c.pn, c.nc, c.nn].iter().filter(|&&n| n > 0).count();
            kinds >= 2
        })
        .map(|(_, c)| c.announcement_total())
        .sum();
    let total_volume: u64 = rows.iter().map(|(_, c)| c.announcement_total()).sum();
    cmp.add(
        "traffic concentrates in sessions with diverse type mixes",
        "majority of announcements",
        &format!("{diverse_volume_sum}/{total_volume} announcements"),
        diverse_volume_sum * 2 >= total_volume,
    );
    println!("{}", cmp.render());
}
