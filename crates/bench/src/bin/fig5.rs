//! Fig. 5: cumulative announcement types for a session whose peer
//! *cleans communities on egress* — the duplicate (`nn`) case.
//!
//! The paper's example: replacing the peer with one that removes all
//! communities turns the withdrawal-phase `nc` bursts into `pn` + `nn`
//! series ("cleaning at egress generates nn announcements"), matching the
//! lab's Exp3.

use std::collections::HashMap;

use kcc_bench::{run_beacon_day, Args, BeaconDayConfig, Comparison};
use kcc_bgp_types::AsPath;
use kcc_collector::{BeaconPhase, BeaconSchedule, SessionKey};
use kcc_core::beacon_phase::DAY_US;
use kcc_core::cumsum::path_timeline;
use kcc_core::stream::EventKind;
use kcc_core::{classify_archive, AnnouncementType, TypeCounts};
use kcc_topology::Tier;

fn main() {
    let args = Args::from_env();
    let mut cfg = BeaconDayConfig { seed: args.seed, ..Default::default() };
    if args.quick {
        cfg.n_transit = 8;
        cfg.n_stub = 12;
        cfg.stub_peers = 4;
    }
    println!("== Fig. 5: egress cleaning generates nn (simulated) ==\n");

    let out = run_beacon_day(&cfg);
    let classified = classify_archive(&out.archive);

    // Peers that clean on egress, from the topology's behavior table.
    let cleaning_peers: Vec<_> = out
        .topo
        .nodes()
        .filter(|n| n.tier != Tier::Stub && n.behavior.cleans_egress)
        .map(|n| n.asn)
        .collect();
    println!("egress-cleaning transit peers in topology: {cleaning_peers:?}");

    // Jointly select the (cleaning session, AS path) with the most nn
    // traffic, preferring never-best paths whose every appearance falls
    // in a withdrawal phase (the paper's Fig. 5 path
    // `20811 3356 174 12654` is of this kind).
    let schedule = BeaconSchedule::default();
    let mut by_stream: HashMap<(SessionKey, String), (u32, bool)> = HashMap::new();
    for (key, events) in &classified.per_session {
        if !cleaning_peers.contains(&key.peer_asn) {
            continue;
        }
        for e in events {
            if e.prefix != out.beacon_prefix {
                continue;
            }
            let Some(attrs) = &e.attrs else { continue };
            let in_withdrawal =
                matches!(schedule.phase_of(e.time_us % DAY_US), BeaconPhase::Withdrawal(_));
            let entry =
                by_stream.entry((key.clone(), attrs.as_path.to_string())).or_insert((0, true));
            if matches!(e.kind, EventKind::Classified { atype: AnnouncementType::Nn, .. }) {
                entry.0 += 1;
            }
            entry.1 &= in_withdrawal;
        }
    }
    let Some(((session, path_str), (nn_count, _))) = by_stream
        .into_iter()
        .filter(|(_, (nn, _))| *nn > 0)
        .max_by_key(|(_, (nn, withdrawal_only))| (*withdrawal_only, *nn))
    else {
        println!("no egress-cleaning collector session found — re-run with another --seed");
        return;
    };
    let counts: TypeCounts = classified.stream_counts(&session, &out.beacon_prefix);
    println!("selected session: {session}");
    println!("selected AS path: {path_str}  ({nn_count} nn announcements)");
    println!(
        "session counts: pc={} pn={} nc={} nn={} withdrawals={}\n",
        counts.pc, counts.pn, counts.nc, counts.nn, counts.withdrawals
    );
    let path: AsPath = path_str.parse().expect("rendered path parses");
    let timeline = path_timeline(&classified, &session, &out.beacon_prefix, Some(&path));
    println!("{}", timeline.to_csv());

    let mut cmp = Comparison::new();
    cmp.add(
        "cleaned session shows no nc traffic",
        "0 nc",
        &format!("{} nc", counts.nc),
        counts.nc == 0,
    );
    cmp.add(
        "duplicates (nn) present despite cleaning (paper: 25 of 31)",
        "nn > 0",
        &format!("{} nn", counts.nn),
        counts.nn > 0,
    );
    let in_withdraw = timeline
        .points
        .iter()
        .filter(|p| matches!(schedule.phase_of(p.time_us % DAY_US), BeaconPhase::Withdrawal(_)))
        .count();
    cmp.add(
        "activity concentrated in withdrawal phases",
        "all",
        &format!("{in_withdraw}/{}", timeline.points.len()),
        timeline.points.is_empty() || in_withdraw * 10 >= timeline.points.len() * 7,
    );
    let nn_timeline = timeline.count_of(AnnouncementType::Nn);
    cmp.add(
        "phases begin with path change, then nn series",
        "pn then nn*",
        &format!("pn={} nn={nn_timeline}", timeline.count_of(AnnouncementType::Pn)),
        timeline.count_of(AnnouncementType::Pn) > 0 || nn_timeline > 0,
    );
    println!("{}", cmp.render());
}
