//! CommunityWatch throughput measurement with machine-readable output —
//! the perf anchor for the always-on detection service.
//!
//! Measures, per workload size: streaming a generated MRT day through a
//! [`WatchSink`] (path + rate + outage checks), and the same with a
//! trained [`CommunityProfiler`] attached (adds the §7 point checks and
//! per-stream burst windows). Also times one pass over the labeled
//! fault-library eval. Emits `BENCH_watch.json` (or `--out <path>`) so
//! CI can gate updates/s run over run.
//!
//! ```sh
//! cargo run --release -p kcc_bench --bin bench_watch -- \
//!     --sizes 10000,100000 --out BENCH_watch.json
//! ```

use std::time::Instant;

use kcc_bench::eval_library;
use kcc_bench::mrtgen::{generate_mrt_day, MrtDay};
use kcc_collector::UpdateArchive;
use kcc_core::{run_pipeline, CommunityProfiler, MrtSource, WatchConfig, WatchSink};
use kcc_tracegen::Mar20Config;
use std::sync::Arc;

struct Measurement {
    seconds: f64,
    updates_per_sec: f64,
}

fn measure<F: FnOnce() -> u64>(f: F) -> Measurement {
    let start = Instant::now();
    let updates = f();
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    Measurement { seconds, updates_per_sec: updates as f64 / seconds }
}

fn json_measurement(m: &Measurement) -> String {
    format!("{{\"seconds\":{:.6},\"updates_per_sec\":{:.0}}}", m.seconds, m.updates_per_sec)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sizes: Vec<u64> = vec![10_000, 100_000];
    let mut out_path = String::from("BENCH_watch.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sizes" => {
                if let Some(v) = it.next() {
                    sizes = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
                }
            }
            "--out" => {
                if let Some(v) = it.next() {
                    out_path = v.clone();
                }
            }
            _ => {}
        }
    }

    let mut rows = Vec::new();
    for &target in &sizes {
        let cfg = Mar20Config { target_announcements: target, ..Default::default() };
        println!("== generating ~{target} announcements to MRT bytes ==");
        let MrtDay { bytes, updates, route_servers, .. } = generate_mrt_day(&cfg);
        println!("   {} updates, {:.1} MiB", updates, bytes.len() as f64 / (1024.0 * 1024.0));
        let open = || {
            MrtSource::new(&bytes[..], "rrc00", cfg.epoch_seconds)
                .with_route_servers(route_servers.clone())
        };

        let watch = measure(|| {
            let out = run_pipeline(open(), (), WatchSink::new(WatchConfig::default()))
                .expect("in-memory MRT cannot fail");
            let report = out.sink.finish();
            println!("   ({} alerts over the raw generated day)", report.alerts.len());
            out.stats.updates
        });
        println!(
            "   watch:          {:.3}s  ({:.0} updates/s)",
            watch.seconds, watch.updates_per_sec
        );

        // Train on the day itself — worst-case profile size for the
        // point checks, which is what we want to measure.
        let archive = UpdateArchive::from_source(&mut open(), cfg.epoch_seconds)
            .expect("in-memory MRT cannot fail");
        let mut profiler = CommunityProfiler::new();
        profiler.train(&archive);
        drop(archive);
        let profiler = Arc::new(profiler);

        let profiled = measure(|| {
            let sink = WatchSink::new(WatchConfig::default()).with_profile(Arc::clone(&profiler));
            let out = run_pipeline(open(), (), sink).expect("in-memory MRT cannot fail");
            let _ = out.sink.finish();
            out.stats.updates
        });
        println!(
            "   watch+profile:  {:.3}s  ({:.0} updates/s)",
            profiled.seconds, profiled.updates_per_sec
        );

        rows.push(format!(
            "{{\"target_announcements\":{target},\"updates\":{updates},\"mrt_bytes\":{},\
             \"watch\":{},\"watch_profiled\":{}}}",
            bytes.len(),
            json_measurement(&watch),
            json_measurement(&profiled),
        ));
    }

    // One pass over the labeled fault library: simulate + train + detect
    // ×4 — the eval gate's wall-clock cost.
    let start = Instant::now();
    let results = eval_library();
    let eval_seconds = start.elapsed().as_secs_f64();
    let passed = results.iter().filter(|r| r.pass).count();
    println!("eval library: {passed}/{} in {eval_seconds:.3}s", results.len());
    rows.push(format!(
        "{{\"eval\":{{\"seconds\":{eval_seconds:.6},\"scenarios\":{},\"passed\":{passed}}}}}",
        results.len(),
    ));

    let json = format!("{{\"bench\":\"watch\",\"results\":[{}]}}\n", rows.join(","));
    std::fs::write(&out_path, &json).expect("write BENCH_watch.json");
    println!("wrote {out_path}");
}
