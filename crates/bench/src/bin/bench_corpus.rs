//! Corpus-engine throughput measurement with machine-readable output —
//! the perf-trajectory anchor for the multi-collector scale step.
//!
//! For each requested collector count K, the same synthetic day is
//! split into K vantage MRT byte streams (what each collector would
//! publish) and run through `run_corpus`: one full per-collector
//! pipeline (cleaning + Table 1/2 + community-presence sinks) per
//! vantage, fanned across worker threads, merged in name order. The
//! binary asserts — in-binary, every run — that the combined corpus
//! result equals a single-pipeline pass over the unsplit day, then
//! emits `BENCH_corpus.json` with updates/s and peak pipeline state vs
//! collector count.
//!
//! ```sh
//! cargo run --release -p kcc_bench --bin bench_corpus -- \
//!     --collectors 1,2,4 --target 40000 --threads 4 --out BENCH_corpus.json
//! ```

use std::time::Instant;

use kcc_bench::mrtgen::{generate_mrt_day, generate_vantage_mrt, MrtDay};
use kcc_core::corpus::run_corpus_report;
use kcc_core::table::OverviewSink;
use kcc_core::{run_pipeline, CleaningConfig, CleaningStage, Corpus, CountsSink, MrtSource};
use kcc_tracegen::universe::UniverseConfig;
use kcc_tracegen::{vantage_names, Mar20Config, MultiVantageConfig};

fn vantage_cfg(collectors: usize, target: u64) -> MultiVantageConfig {
    MultiVantageConfig {
        base: Mar20Config {
            target_announcements: target,
            universe: UniverseConfig {
                n_collectors: collectors,
                // Sessions scale with the vantage count so every
                // collector stays populated.
                n_sessions: (collectors * 24).max(48),
                n_peers: (collectors * 10).max(24),
                ..Default::default()
            },
            ..Default::default()
        },
        force_second_granularity: Vec::new(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut collector_counts: Vec<usize> = vec![1, 2, 4];
    let mut target = 40_000u64;
    let mut threads = 4usize;
    let mut out_path = String::from("BENCH_corpus.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--collectors" => {
                if let Some(v) = it.next() {
                    collector_counts = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
                }
            }
            "--target" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    target = v;
                }
            }
            "--threads" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    threads = v;
                }
            }
            "--out" => {
                if let Some(v) = it.next() {
                    out_path = v.clone();
                }
            }
            _ => {}
        }
    }

    let mut rows = Vec::new();
    for &k in &collector_counts {
        let cfg = vantage_cfg(k, target);
        println!("== {k} collectors, ~{target} announcements ==");

        // Split the day into per-vantage MRT bytes (generation cost is
        // not part of the measured corpus run).
        let names = vantage_names(&cfg.base);
        let vantages: Vec<_> = names
            .iter()
            .map(|name| {
                let (bytes, updates, route_servers) = generate_vantage_mrt(&cfg, name);
                (name.clone(), bytes, updates, route_servers)
            })
            .collect();
        let total_updates: u64 = vantages.iter().map(|(_, _, n, _)| n).sum();
        let total_bytes: usize = vantages.iter().map(|(_, b, _, _)| b.len()).sum();
        println!(
            "   {total_updates} updates over {} vantages, {:.1} MiB MRT",
            vantages.len(),
            total_bytes as f64 / (1024.0 * 1024.0)
        );

        // The reference: one pipeline over the unsplit day's MRT bytes
        // (the same medium the vantages go through).
        let MrtDay { bytes: day_bytes, registry, route_servers: day_rs, .. } =
            generate_mrt_day(&cfg.base);
        let reference = run_pipeline(
            MrtSource::new(&day_bytes[..], "all", cfg.base.epoch_seconds)
                .with_route_servers(day_rs),
            CleaningStage::new(&registry, CleaningConfig::default()),
            (OverviewSink::default(), CountsSink::default()),
        )
        .expect("in-memory MRT cannot fail");

        // The measured corpus run.
        let start = Instant::now();
        let mut corpus = Corpus::new();
        for (name, bytes, _, route_servers) in &vantages {
            corpus
                .push(
                    name,
                    MrtSource::new(&bytes[..], name, cfg.base.epoch_seconds)
                        .with_route_servers(route_servers.clone()),
                )
                .expect("vantage names are unique");
        }
        let report = run_corpus_report(corpus, threads, &registry, CleaningConfig::default())
            .expect("in-memory corpus cannot fail");
        let seconds = start.elapsed().as_secs_f64().max(1e-9);
        let updates_per_sec = report.stats.updates as f64 / seconds;

        // Combined corpus result == single-pipeline reference, asserted
        // in-binary like bench_live does for live==offline.
        let (ref_overview, ref_counts) = reference.sink;
        assert_eq!(
            report.combined_counts,
            ref_counts.finish(),
            "{k}-collector corpus diverged from the single-pipeline day"
        );
        assert_eq!(report.combined_overview, ref_overview.finish());

        // A second run with a different thread count must be identical.
        let mut corpus2 = Corpus::new();
        for (name, bytes, _, route_servers) in vantages.iter().rev() {
            corpus2
                .push(
                    name,
                    MrtSource::new(&bytes[..], name, cfg.base.epoch_seconds)
                        .with_route_servers(route_servers.clone()),
                )
                .expect("vantage names are unique");
        }
        let report2 = run_corpus_report(corpus2, threads + 3, &registry, CleaningConfig::default())
            .expect("in-memory corpus cannot fail");
        assert_eq!(report.render(), report2.render(), "corpus run must be order-independent");

        println!(
            "   corpus×{threads}: {seconds:.3}s  ({updates_per_sec:.0} updates/s, peak state {} bytes)",
            report.stats.peak_state_bytes
        );
        rows.push(format!(
            "{{\"collectors\":{k},\"updates\":{},\"mrt_bytes\":{total_bytes},\
             \"threads\":{threads},\"seconds\":{seconds:.6},\
             \"updates_per_sec\":{updates_per_sec:.0},\"peak_state_bytes\":{}}}",
            report.stats.updates, report.stats.peak_state_bytes
        ));
    }

    let json = format!("{{\"bench\":\"corpus\",\"results\":[{}]}}\n", rows.join(","));
    std::fs::write(&out_path, &json).expect("write BENCH_corpus.json");
    println!("wrote {out_path}");
}
