//! Ablation: route-flap dampening vs. community-driven update traffic.
//!
//! The paper's §2 notes dampening and MRAI "may offer suboptimal
//! performance in reacting to routing events" and are selectively
//! deployed. This ablation measures both sides of that trade on the
//! simulated beacon day: how much update traffic dampening absorbs, and
//! how often it suppresses a *reachable* route (the collector losing a
//! prefix that is actually up).

use kcc_bench::{run_beacon_day, Args, BeaconDayConfig, Comparison};
use kcc_bgp_sim::DampeningConfig;
use kcc_core::classify_archive;
use kcc_core::report::render_table;

fn main() {
    let args = Args::from_env();
    println!("== Ablation: route-flap dampening on the beacon day ==\n");

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (name, dampening) in [
        ("off", None),
        ("RFC 2439 defaults", Some(DampeningConfig::default())),
        (
            "aggressive (suppress=1500)",
            Some(DampeningConfig { suppress_threshold: 1_500.0, ..Default::default() }),
        ),
    ] {
        let mut cfg = BeaconDayConfig { seed: args.seed, ..Default::default() };
        if args.quick {
            cfg.n_transit = 8;
            cfg.n_stub = 12;
            cfg.stub_peers = 4;
        }
        cfg.dampening = dampening;
        let out = run_beacon_day(&cfg);
        let counts = classify_archive(&out.archive).counts;
        let dampened: u64 = out.net.routers().map(|r| r.counters.dampened).sum();
        results.push((name, counts, dampened));
        rows.push(vec![
            name.to_string(),
            counts.announcement_total().to_string(),
            counts.nc.to_string(),
            counts.nn.to_string(),
            counts.withdrawals.to_string(),
            dampened.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["dampening", "announcements", "nc", "nn", "withdrawals", "flaps suppressed"],
            &rows
        )
    );

    let mut cmp = Comparison::new();
    let off = &results[0];
    let def = &results[1];
    let aggressive = &results[2];
    cmp.add(
        "dampening engages under beacon flapping",
        "suppressions > 0",
        &format!("{}", def.2),
        def.2 > 0,
    );
    cmp.add(
        "dampening reduces announcement volume",
        "default ≤ off",
        &format!("{} vs {}", def.1.announcement_total(), off.1.announcement_total()),
        def.1.announcement_total() <= off.1.announcement_total(),
    );
    cmp.add(
        "aggressive dampening suppresses more",
        "aggr ≥ default",
        &format!("{} vs {}", aggressive.2, def.2),
        aggressive.2 >= def.2,
    );
    println!("{}", cmp.render());
}
