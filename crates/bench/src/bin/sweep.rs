//! Parallel scenario sweep: vendor profile × cleaning placement × MRAI ×
//! topology size, fanned across worker threads.
//!
//! Each cell builds an independent simulated Internet (seeded, so the
//! topology dimension is held constant across the other dimensions), runs
//! the converge → flap → heal → reflap timeline, and classifies the
//! collector stream into the paper's announcement types. One table
//! compares all cells; the thread count changes only the wall clock.
//!
//! ```sh
//! sweep [--threads N] [--seed S] [--quick] [--speedup]
//! ```
//!
//! * `--threads N` — worker threads (default: 4, capped by the host).
//! * `--quick` — the ≤8-cell CI smoke matrix instead of the 36-cell one.
//! * `--speedup` — rerun the same matrix single-threaded afterwards,
//!   verify the results agree, and print the speedup.

use std::time::Instant;

use kcc_bench::sweep::{run_sweep, SweepConfig};
use kcc_bench::Args;
use kcc_core::report::render_table;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(argv.clone());
    let threads = argv
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get().min(4)).unwrap_or(1)
        });
    let want_speedup = argv.iter().any(|a| a == "--speedup");

    let cfg = if args.quick {
        SweepConfig::smoke(args.seed)
    } else {
        SweepConfig::paper_matrix(args.seed)
    };
    let cells = cfg.matrix();
    println!(
        "== Scenario sweep: {} cells, {} threads, seed {} ==\n",
        cells.len(),
        threads,
        cfg.seed
    );

    let t0 = Instant::now();
    let results = run_sweep(&cells, cfg.seed, threads);
    let wall = t0.elapsed();

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.cell.vendor.name.to_string(),
                r.cell.cleaning.label().to_string(),
                format!("{}s", r.cell.mrai.as_micros() / 1_000_000),
                r.cell.n_ases.to_string(),
                r.collector_messages.to_string(),
                r.counts.initial.to_string(),
                r.counts.pc.to_string(),
                r.counts.pn.to_string(),
                r.counts.nc.to_string(),
                r.counts.nn.to_string(),
                r.counts.xc.to_string(),
                r.counts.xn.to_string(),
                r.counts.withdrawals.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "vendor", "cleaning", "mrai", "ASes", "msgs", "initial", "pc", "pn", "nc", "nn",
                "xc", "xn", "wd"
            ],
            &rows
        )
    );
    println!(
        "wall clock: {:.3}s ({} cells / {} threads)",
        wall.as_secs_f64(),
        cells.len(),
        threads
    );

    if want_speedup {
        let t1 = Instant::now();
        let serial = run_sweep(&cells, cfg.seed, 1);
        let serial_wall = t1.elapsed();
        assert_eq!(serial, results, "parallel and serial sweeps must produce identical results");
        println!(
            "serial wall clock: {:.3}s — speedup at {} threads: {:.2}x",
            serial_wall.as_secs_f64(),
            threads,
            serial_wall.as_secs_f64() / wall.as_secs_f64().max(1e-9),
        );
    }
}
