//! Fig. 2: daily announcements per type across 2010–2020.
//!
//! Regenerates the longitudinal view: quarterly sampled days with session
//! counts doubling and community adoption rising over the decade. The
//! paper's observations to reproduce: total volume grows strongly, `pc`
//! and `nn` are the dominant and most variable types, and the *shares*
//! stay roughly stable despite growth.

use kcc_bench::{Args, Comparison};
use kcc_core::longitudinal::LongitudinalSeries;
use kcc_core::{classify_archive, clean_archive, AnnouncementType, CleaningConfig};
use kcc_tracegen::generate_mar20;
use kcc_tracegen::hist::{day_configs, HistConfig};

fn main() {
    let args = Args::from_env();
    let cfg = HistConfig {
        seed: args.seed,
        target_announcements_2020: args.sized(30_000),
        samples_per_year: if args.quick { 1 } else { 4 },
        ..Default::default()
    };
    println!("== Fig. 2: daily announcements per type, 2010–2020 (synthetic) ==\n");

    let mut series = LongitudinalSeries::default();
    for (label, day_cfg) in day_configs(&cfg) {
        let out = generate_mar20(&day_cfg);
        let mut archive = out.archive;
        clean_archive(&mut archive, &out.registry, &CleaningConfig::default());
        let classified = classify_archive(&archive);
        // At full scale the 15 beacon prefixes are a negligible sliver of
        // d_hist; at this model's scale they would dominate, so the Fig. 2
        // view excludes them (they are Fig. 6's subject instead).
        let counts = classified.counts_filtered(|p| !out.beacon_prefixes.contains(p));
        series.push(label, counts);
    }
    println!("{}", series.fig2_table());
    println!("CSV:\n{}", series.fig2_csv());

    let mut cmp = Comparison::new();
    let first = &series.points.first().expect("nonempty series").counts;
    let last = &series.points.last().expect("nonempty series").counts;
    let growth = last.announcement_total() as f64 / first.announcement_total().max(1) as f64;
    cmp.add("volume grows over the decade", "~2.5x", &format!("{growth:.1}x"), growth > 1.5);
    cmp.add(
        "pc and nn are leading types in 2020",
        "pc+nn > pn+nc",
        &format!("{} vs {}", last.pc + last.nn, last.pn + last.nc),
        last.pc + last.nn > last.pn + last.nc,
    );
    for t in [AnnouncementType::Pc, AnnouncementType::Nc, AnnouncementType::Nn] {
        cmp.add(
            &format!("{t} share stable across series (±12pp)"),
            "stable",
            if series.share_is_stable(t, 12.0) { "stable" } else { "drifts" },
            series.share_is_stable(t, 12.0),
        );
    }
    println!("{}", cmp.render());
}
