//! Ablation: MRAI pacing vs. exploration burst size.
//!
//! The paper notes MRAI timers and dampening "may offer suboptimal
//! performance" and are selectively deployed. This ablation runs the
//! simulated beacon day with every AS using the same MRAI (0 s / 5 s /
//! 30 s) and measures how pacing compresses the path/community
//! exploration bursts the collector sees.

use kcc_bench::{run_beacon_day, Args, BeaconDayConfig, Comparison};
use kcc_bgp_sim::{SimDuration, VendorProfile};
use kcc_core::classify_archive;
use kcc_core::report::render_table;

fn profile_with_mrai(secs: u64) -> VendorProfile {
    VendorProfile {
        name: match secs {
            0 => "synthetic mrai-0",
            5 => "synthetic mrai-5",
            _ => "synthetic mrai-30",
        },
        suppresses_duplicates: false,
        mrai_ebgp: SimDuration::from_secs(secs),
        mrai_ibgp: SimDuration::ZERO,
    }
}

fn main() {
    let args = Args::from_env();
    println!("== Ablation: MRAI vs. exploration burst size ==\n");

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for secs in [0u64, 5, 30] {
        let mut cfg = BeaconDayConfig {
            seed: args.seed,
            vendor_mix: vec![(profile_with_mrai(secs), 1.0)],
            ..Default::default()
        };
        if args.quick {
            cfg.n_transit = 8;
            cfg.n_stub = 12;
            cfg.stub_peers = 4;
        }
        let out = run_beacon_day(&cfg);
        let counts = classify_archive(&out.archive).counts;
        results.push((secs, counts));
        rows.push(vec![
            format!("{secs}s"),
            counts.announcement_total().to_string(),
            (counts.pc + counts.pn).to_string(),
            counts.nc.to_string(),
            counts.nn.to_string(),
            counts.withdrawals.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["MRAI", "announcements", "path changes", "nc", "nn", "withdrawals"], &rows)
    );

    let mut cmp = Comparison::new();
    let no_mrai = results[0].1.announcement_total();
    let mrai30 = results[2].1.announcement_total();
    cmp.add(
        "MRAI pacing reduces update volume",
        "30s < 0s",
        &format!("{mrai30} < {no_mrai}"),
        mrai30 <= no_mrai,
    );
    cmp.add(
        "withdrawals unaffected by MRAI (RFC 4271 exemption)",
        "equal counts",
        &format!("{} vs {}", results[0].1.withdrawals, results[2].1.withdrawals),
        results[0].1.withdrawals > 0 && results[2].1.withdrawals > 0,
    );
    println!("{}", cmp.render());
}
