//! `kcc-corpus` — cross-collector analysis of a set of MRT inputs.
//!
//! Point it at MRT files and/or directories of `*.mrt` files; every file
//! becomes one collector (named by its file stem) and the whole set is
//! analyzed as a multi-vantage corpus: per-collector §4 cleaning, one
//! full pipeline per collector fanned across threads, and the
//! cross-collector comparison report (Table 1 + Table 2 side by side,
//! community presence/agreement matrix, disagreement list) on stdout.
//!
//! ```sh
//! kcc-corpus rrc00.mrt rrc01.mrt dumps/      # files and directories mix
//! kcc-corpus --threads 8 --epoch 1584230400 dumps/
//! kcc-corpus --watch dumps/                  # + CommunityWatch alerts
//! ```
//!
//! With `--watch`, the same pass also runs the CommunityWatch detection
//! sink per collector and appends the merged alert list (path, rate and
//! outage checks; see `kcc-watch` for the full service CLI).
//!
//! Without `--epoch`, the day anchor is the earliest *first-record*
//! timestamp across the inputs, floored to midnight UTC. Records
//! timestamped before the epoch fail the run by default (they would
//! silently collapse onto the epoch and fabricate same-instant runs);
//! pass `--clamp` to accept and count them instead — useful when a dump
//! carries a few out-of-order records from the previous day.
//! Unallocated-ASN/prefix filtering needs an external allocation
//! registry the MRT bytes cannot carry, so only the
//! timestamp-normalization cleaning stage runs here; library users with
//! registry data use `run_corpus_report` directly.

use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use kcc_core::corpus::{run_corpus_report, run_corpus_watch};
use kcc_core::{AllocationRegistry, CleaningConfig, Corpus, MrtFileOptions, WatchConfig};

/// Reads the timestamp (first header field) of a file's first MRT record
/// — 4 bytes of I/O, never the file.
fn first_record_seconds(path: &Path) -> Option<u32> {
    let mut file = std::fs::File::open(path).ok()?;
    let mut buf = [0u8; 4];
    file.read_exact(&mut buf).ok()?;
    Some(u32::from_be_bytes(buf))
}

fn mrt_paths(inputs: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut paths = Vec::new();
    for input in inputs {
        if input.is_dir() {
            let entries = std::fs::read_dir(input)
                .map_err(|e| format!("read dir {}: {e}", input.display()))?;
            let mut found: Vec<PathBuf> = entries
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "mrt"))
                .collect();
            found.sort();
            if found.is_empty() {
                return Err(format!("no *.mrt files in {}", input.display()));
            }
            paths.extend(found);
        } else {
            paths.push(input.clone());
        }
    }
    Ok(paths)
}

fn main() -> ExitCode {
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut epoch: Option<u32> = None;
    let mut threads = 4usize;
    let mut clamp = false;
    let mut watch = false;
    let mut metrics_out: Option<PathBuf> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--epoch" => epoch = it.next().and_then(|s| s.parse().ok()),
            "--clamp" => clamp = true,
            "--watch" => watch = true,
            "--metrics-out" => metrics_out = it.next().map(PathBuf::from),
            "--threads" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    threads = v;
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: kcc-corpus [--epoch SECONDS] [--threads N] [--clamp] [--watch] \
                     [--metrics-out FILE] <file.mrt | dir>..."
                );
                return ExitCode::SUCCESS;
            }
            other => inputs.push(PathBuf::from(other)),
        }
    }
    if inputs.is_empty() {
        eprintln!("kcc-corpus: no inputs (see --help)");
        return ExitCode::FAILURE;
    }

    let paths = match mrt_paths(&inputs) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("kcc-corpus: {e}");
            return ExitCode::FAILURE;
        }
    };

    let epoch = epoch.or_else(|| {
        let earliest = paths.iter().filter_map(|p| first_record_seconds(p)).min()?;
        Some(earliest - earliest % 86_400) // floor to midnight UTC
    });
    let Some(epoch) = epoch else {
        eprintln!("kcc-corpus: could not derive an epoch (empty inputs?); pass --epoch");
        return ExitCode::FAILURE;
    };

    let mut corpus = Corpus::new();
    let options = MrtFileOptions { clamp_pre_epoch: clamp, ..Default::default() };
    for path in &paths {
        if let Err(e) = corpus.push_mrt_file_with(path, epoch, &options) {
            eprintln!("kcc-corpus: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "corpus: {} collectors, epoch {epoch} ({} threads)\n",
        corpus.len(),
        threads.clamp(1, corpus.len().max(1))
    );

    // MRT carries no allocation data: run the granularity normalization
    // only, against an empty registry.
    let registry = AllocationRegistry::new();
    let cleaning = CleaningConfig {
        filter_unallocated: false,
        insert_route_server_asn: false,
        normalize_timestamps: true,
    };
    let started = std::time::Instant::now();
    let result = if watch {
        run_corpus_watch(corpus, threads, &registry, cleaning, WatchConfig::default(), None)
            .map(|(report, watch_report)| (report, Some(watch_report)))
    } else {
        run_corpus_report(corpus, threads, &registry, cleaning).map(|report| (report, None))
    };
    let elapsed = started.elapsed();
    match result {
        Ok((report, watch_report)) => {
            if let Some(path) = &metrics_out {
                let metrics = kcc_obs::Registry::new();
                report.export_metrics(&metrics);
                if let Some(wr) = &watch_report {
                    wr.export_metrics(&metrics);
                }
                let secs = elapsed.as_secs_f64();
                if secs > 0.0 {
                    metrics
                        .gauge("kcc_corpus_updates_per_sec")
                        .set((report.stats.updates as f64 / secs) as i64);
                }
                if let Err(e) = std::fs::write(path, metrics.render()) {
                    eprintln!("kcc-corpus: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("metrics written to {}\n", path.display());
            }
            print!("{}", report.render());
            println!(
                "\npipeline: {} sessions, {} streams, peak state {} bytes",
                report.stats.sessions, report.stats.streams, report.stats.peak_state_bytes
            );
            if let Some(wr) = watch_report {
                println!();
                for alert in &wr.alerts {
                    println!("{}", alert.to_line());
                }
                let kinds: Vec<String> =
                    wr.kind_counts().iter().map(|(k, n)| format!("{k} x{n}")).collect();
                println!(
                    "watch: {} alerts over {} windows{}",
                    wr.alerts.len(),
                    wr.windows,
                    if kinds.is_empty() {
                        String::new()
                    } else {
                        format!(" ({})", kinds.join(", "))
                    }
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("kcc-corpus: {e}");
            if !clamp && e.to_string().contains("precedes the stream epoch") {
                eprintln!(
                    "kcc-corpus: (records before the epoch fail the run by default; \
                     re-run with --clamp to accept and count them, or pass an earlier --epoch)"
                );
            }
            ExitCode::FAILURE
        }
    }
}
