//! `kccd` — the live BGP collector daemon.
//!
//! Accepts BGP sessions from any number of peers, runs the RFC 4271 FSM
//! per session, streams every received UPDATE through the one-pass
//! analysis pipeline (Table 1 overview + Table 2 type shares), and
//! optionally tees the feed into rotating MRT dumps so the capture
//! re-analyzes offline.
//!
//! ```sh
//! kccd --listen 127.0.0.1:1790 --collector rrc00 --asn 3333 \
//!      --mrt-dir ./dumps --mrt-rotate 100000 --duration 60
//! ```
//!
//! `--duration 0` (default) runs until the process is killed; with a
//! positive duration the daemon shuts down gracefully after that many
//! seconds — Cease to every peer, feed drained, tables printed.
//!
//! `--watch` adds the CommunityWatch detection sink to the live
//! pipeline; the shutdown summary then ends with the typed alert list
//! (path, rate and outage checks over the whole capture).
//!
//! Sessions run on the event-driven reactor: `--workers N` sets the
//! shard-thread count (a handful of workers carries thousands of
//! sessions) and `--poller epoll|poll` pins the readiness backend.
//! `--control ADDR` opens the line-protocol control socket — peers,
//! listeners, stamping, MRT rotation and trace levels are then
//! hot-reloadable (`echo "set stamp arrival" | nc ...; echo commit | …`).
//! `--trace TARGET=LEVEL` (repeatable) and `--trace-default LEVEL` seed
//! the runtime trace filter.
//!
//! The daemon keeps one `kcc_obs::Registry` of Prometheus-style metrics
//! (reactor session/frame counters, ingest throughput, watch alerts).
//! Scrape it live with the control command `metrics`; the shutdown
//! summary ends with the same rendered snapshot. `--profile-every N`
//! additionally wall-clocks every N-th update through each pipeline
//! phase and folds the histograms into the registry.

use std::net::IpAddr;
use std::time::Duration;

use kcc_bgp_types::Asn;
use kcc_core::pipeline::PipelineBuilder;
use kcc_core::table::{OverviewSink, TypeShares};
use kcc_core::{CountsSink, WatchConfig, WatchReport, WatchSink};
use kcc_peer::{
    Collector, CollectorConfig, ControlServer, PollerKind, RotateConfig, StampMode, TraceLevel,
};

struct Options {
    listen: String,
    cfg: CollectorConfig,
    duration_secs: u64,
    watch: bool,
    control: Option<String>,
    trace_default: Option<TraceLevel>,
    trace_targets: Vec<(String, TraceLevel)>,
    profile_every: Option<u64>,
}

fn parse_args() -> Options {
    let mut listen = String::from("127.0.0.1:1790");
    let mut cfg = CollectorConfig::new("rrc00", Asn(3333), "198.51.100.1".parse().unwrap());
    let mut duration_secs = 0u64;
    let mut mrt_dir: Option<String> = None;
    let mut mrt_rotate = 100_000u64;
    let mut watch = false;
    let mut control: Option<String> = None;
    let mut trace_default: Option<TraceLevel> = None;
    let mut trace_targets: Vec<(String, TraceLevel)> = Vec::new();
    let mut profile_every: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => listen = it.next().cloned().unwrap_or(listen),
            "--collector" => {
                if let Some(v) = it.next() {
                    cfg.collector = v.clone();
                }
            }
            "--asn" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    cfg.local_asn = Asn(v);
                }
            }
            "--bgp-id" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    cfg.bgp_id = v;
                }
            }
            "--hold" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    cfg.hold_time = v;
                }
            }
            "--epoch" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    cfg.epoch_seconds = v;
                }
            }
            "--stamp" => match it.next().map(String::as_str) {
                Some("arrival") => cfg.stamp = StampMode::Arrival,
                Some(s) if s.starts_with("logical") => {
                    let spacing =
                        s.split_once(':').and_then(|(_, v)| v.parse().ok()).unwrap_or(1_000);
                    cfg.stamp = StampMode::logical(spacing);
                }
                other => {
                    eprintln!(
                        "kccd: --stamp wants 'arrival' or 'logical[:SPACING_US]', got {other:?}"
                    );
                    std::process::exit(2);
                }
            },
            "--route-server" => {
                // ASN@IP, repeatable.
                if let Some((asn, ip)) = it.next().and_then(|v| v.split_once('@')) {
                    if let (Ok(asn), Ok(ip)) = (asn.parse::<u32>(), ip.parse::<IpAddr>()) {
                        cfg.route_servers.push((Asn(asn), ip));
                    }
                }
            }
            "--mrt-dir" => mrt_dir = it.next().cloned(),
            "--mrt-rotate" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    mrt_rotate = v;
                }
            }
            "--duration" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    duration_secs = v;
                }
            }
            "--watch" => watch = true,
            "--workers" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    cfg.reactor.workers = v;
                }
            }
            "--poller" => match it.next().map(String::as_str) {
                Some("epoll") => cfg.reactor.poller = PollerKind::Epoll,
                Some("poll") => cfg.reactor.poller = PollerKind::Poll,
                Some("auto") => cfg.reactor.poller = PollerKind::Auto,
                other => {
                    eprintln!("kccd: --poller wants 'epoll', 'poll' or 'auto', got {other:?}");
                    std::process::exit(2);
                }
            },
            "--control" => control = it.next().cloned(),
            "--profile-every" => {
                profile_every = it.next().and_then(|s| s.parse().ok());
                if profile_every.is_none() {
                    eprintln!("kccd: --profile-every wants a positive sample interval");
                    std::process::exit(2);
                }
            }
            "--trace-default" => {
                trace_default = it.next().and_then(|s| TraceLevel::parse(s));
                if trace_default.is_none() {
                    eprintln!("kccd: --trace-default wants off|error|info|debug|trace");
                    std::process::exit(2);
                }
            }
            "--trace" => {
                // TARGET=LEVEL, repeatable.
                let parsed =
                    it.next().and_then(|v| v.split_once('=')).and_then(|(target, level)| {
                        TraceLevel::parse(level).map(|l| (target.to_owned(), l))
                    });
                match parsed {
                    Some(pair) => trace_targets.push(pair),
                    None => {
                        eprintln!(
                            "kccd: --trace wants TARGET=LEVEL (level: off|error|info|debug|trace)"
                        );
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("kccd: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    if let Some(dir) = mrt_dir {
        cfg.mrt = Some(RotateConfig::new(dir, mrt_rotate));
    }
    Options {
        listen,
        cfg,
        duration_secs,
        watch,
        control,
        trace_default,
        trace_targets,
        profile_every,
    }
}

fn main() {
    let opts = parse_args();
    let mut collector = match Collector::bind(&opts.listen, opts.cfg.clone()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("kccd: cannot bind {}: {e}", opts.listen);
            std::process::exit(1);
        }
    };
    let source = collector.take_source();
    let stop = source.shutdown_flag();
    println!(
        "kccd: collector {} (AS{}) listening on {}",
        opts.cfg.collector,
        opts.cfg.local_asn,
        collector.local_addr()
    );

    // Seed the runtime trace filter from the CLI (one commit before any
    // peer dials in).
    let store = collector.config_store();
    if opts.trace_default.is_some() || !opts.trace_targets.is_empty() {
        store.edit(|c| {
            if let Some(level) = opts.trace_default {
                c.trace.default = level;
            }
            for (target, level) in &opts.trace_targets {
                c.trace.targets.insert(target.clone(), *level);
            }
        });
        store.commit();
    }

    // The control socket shares the daemon's shutdown flag, so it exits
    // with the collector.
    let control = opts.control.as_ref().map(|addr| {
        let server =
            ControlServer::bind(addr, store, collector.shutdown_handle()).unwrap_or_else(|e| {
                eprintln!("kccd: cannot bind control socket {addr}: {e}");
                std::process::exit(1);
            });
        println!("kccd: control socket on {}", server.local_addr());
        server
    });

    if opts.duration_secs > 0 {
        // Trigger the *daemon* shutdown, not the source flag: sessions
        // then drain what they already received, Cease, and the feed
        // closes — so `run_live` below finishes with every in-flight
        // update ingested instead of cutting the pipeline off early.
        let handle = collector.shutdown_handle();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs(opts.duration_secs));
            handle.trigger();
        });
        println!("kccd: will shut down after {} s", opts.duration_secs);
    }

    // The pipeline runs on the main thread until shutdown; the daemon's
    // accept/session/ingest threads feed it. Everything records into the
    // one daemon registry the control `metrics` command renders.
    let metrics = collector.metrics();
    let (counts, overview, watch_report, pipe_stats, profile) = if opts.watch {
        let mut builder = PipelineBuilder::new(source)
            .sink((
                CountsSink::default(),
                OverviewSink::default(),
                WatchSink::new(WatchConfig::default())
                    .with_metrics(std::sync::Arc::clone(&metrics)),
            ))
            .shutdown(&stop);
        if let Some(every) = opts.profile_every {
            builder = builder.profile(every);
        }
        let out = builder.run().expect("live sources do not fail");
        let (counts, overview, watch) = out.sink;
        (counts, overview, Some(watch.finish()), out.stats, out.profile)
    } else {
        let mut builder = PipelineBuilder::new(source)
            .sink((CountsSink::default(), OverviewSink::default()))
            .shutdown(&stop);
        if let Some(every) = opts.profile_every {
            builder = builder.profile(every);
        }
        let out = builder.run().expect("live sources do not fail");
        let (counts, overview) = out.sink;
        (counts, overview, None, out.stats, out.profile)
    };
    if let Some(profile) = &profile {
        profile.export(&metrics, &[]);
    }

    // Shutdown: Cease every session, join every thread, then report.
    collector.shutdown();
    let stats = collector.join();
    if let Some(server) = control {
        server.join();
    }

    println!();
    println!("{}", overview.finish().render("Table 1 — live capture"));
    println!();
    println!("{}", TypeShares::new(vec![("live".into(), counts.finish())]).render());
    println!();
    println!(
        "sessions: {} accepted, {} established ({} peak concurrent), {} distinct, {} closed",
        stats.accepted, stats.established, stats.peak_established, stats.sessions, stats.closed
    );
    println!(
        "updates: {} ingested ({} kept by pipeline, {} streams, peak state {} B)",
        stats.updates, pipe_stats.kept, pipe_stats.streams, pipe_stats.peak_state_bytes
    );
    if !stats.mrt_files.is_empty() {
        println!("mrt: {} records over {} dump file(s)", stats.mrt_records, stats.mrt_files.len());
        for f in &stats.mrt_files {
            println!("  {}", f.display());
        }
    }
    if let Some(report) = watch_report {
        println!();
        print_watch(&report);
    }

    // Final metrics snapshot, rendered by the same code path as the
    // control socket's `metrics` command — what a scrape would have seen
    // at the instant the daemon exited.
    println!();
    println!("metrics:");
    print!("{}", metrics.render());
}

/// The CommunityWatch section of the shutdown summary: every typed
/// alert on its stable serialized line, then the per-kind totals.
fn print_watch(report: &WatchReport) {
    for alert in &report.alerts {
        println!("{}", alert.to_line());
    }
    if report.alerts.is_empty() {
        println!("watch: no alerts over {} windows", report.windows);
    } else {
        let kinds: Vec<String> =
            report.kind_counts().iter().map(|(k, n)| format!("{k} x{n}")).collect();
        println!(
            "watch: {} alerts over {} windows ({})",
            report.alerts.len(),
            report.windows,
            kinds.join(", ")
        );
    }
}
