//! Throughput regression gate: compares a freshly measured `BENCH_*.json`
//! against the committed baseline and fails on drift beyond a tolerance.
//!
//! Every `"updates_per_sec":N` value is extracted from both files in
//! order; the gate fails if the counts differ (the bench shape changed
//! without updating the baseline) or any pair deviates by more than the
//! tolerance in either direction — a slowdown is a regression, and a
//! large speedup means the committed numbers are stale.
//!
//! ```sh
//! bench_gate BENCH_pipeline.json /tmp/fresh/BENCH_pipeline.json
//! bench_gate --tolerance 0.25 baseline.json measured.json
//! ```

use std::process::ExitCode;

/// All `"updates_per_sec":<number>` values, in file order.
fn extract_rates(json: &str) -> Vec<f64> {
    const NEEDLE: &str = "\"updates_per_sec\":";
    let mut rates = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find(NEEDLE) {
        rest = &rest[pos + NEEDLE.len()..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(rest.len());
        if let Ok(v) = rest[..end].parse::<f64>() {
            rates.push(v);
        }
        rest = &rest[end..];
    }
    rates
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.25f64;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    tolerance = v;
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_gate [--tolerance FRACTION] <baseline.json> <measured.json>"
                );
                return ExitCode::SUCCESS;
            }
            other => files.push(other.to_owned()),
        }
    }
    let [baseline_path, measured_path] = files.as_slice() else {
        eprintln!("bench_gate: expected exactly two files (baseline, measured); see --help");
        return ExitCode::FAILURE;
    };

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_gate: read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(measured)) = (read(baseline_path), read(measured_path)) else {
        return ExitCode::FAILURE;
    };

    let base_rates = extract_rates(&baseline);
    let meas_rates = extract_rates(&measured);
    if base_rates.is_empty() {
        eprintln!("bench_gate: no updates_per_sec values in {baseline_path}");
        return ExitCode::FAILURE;
    }
    if base_rates.len() != meas_rates.len() {
        eprintln!(
            "bench_gate: shape mismatch — {} rates in {baseline_path}, {} in {measured_path} \
             (bench changed? regenerate the committed baseline)",
            base_rates.len(),
            meas_rates.len()
        );
        return ExitCode::FAILURE;
    }

    let mut ok = true;
    for (i, (b, m)) in base_rates.iter().zip(&meas_rates).enumerate() {
        let ratio = m / b;
        let within = ratio >= 1.0 - tolerance && ratio <= 1.0 + tolerance;
        println!(
            "rate[{i}]: baseline {b:.0}/s, measured {m:.0}/s, ratio {ratio:.2} {}",
            if within { "ok" } else { "OUT OF RANGE" }
        );
        ok &= within;
    }
    if ok {
        println!(
            "bench_gate: {} rates within ±{:.0}% of {baseline_path}",
            base_rates.len(),
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_gate: throughput drifted beyond ±{:.0}% — investigate, or regenerate the \
             committed baseline if the change is intended",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    }
}
