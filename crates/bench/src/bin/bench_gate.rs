//! Throughput regression gate: compares a freshly measured `BENCH_*.json`
//! against the committed baseline and fails on drift beyond a tolerance.
//!
//! Both files are parsed **structurally** (a small recursive-descent JSON
//! parser — no string scanning): every leaf is addressed by its path
//! (`results[0].streaming.updates_per_sec`), so a renamed, moved or
//! dropped key is a hard failure, not a silently re-paired comparison.
//! Rates are matched baseline-path → fresh-path; any baseline key absent
//! from the fresh run fails the gate.
//!
//! Each `updates_per_sec` pair is printed as a per-figure delta row
//! (baseline, fresh, % change, verdict); `--summary FILE` additionally
//! writes the table as markdown for CI artifacts.
//!
//! ```sh
//! bench_gate BENCH_pipeline.json /tmp/fresh/BENCH_pipeline.json
//! bench_gate --tolerance 0.25 --summary deltas.md baseline.json measured.json
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;

// ---------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser (no dependencies).
// ---------------------------------------------------------------------

/// A parsed JSON value. Object member order is preserved so report rows
/// come out in file order.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    Number(f64),
    String(String),
    Bool(bool),
    Null,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser::new(text);
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing data after JSON value"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Bench files are ASCII; surrogate pairs are out
                            // of scope — map unpaired surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                        self.pos += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.error("invalid UTF-8 in string"))?,
                    );
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| self.error("invalid number"))
    }
}

// ---------------------------------------------------------------------
// Path flattening and comparison.
// ---------------------------------------------------------------------

/// Flattens a JSON tree into `(path, leaf)` pairs in file order, with
/// paths like `results[0].streaming.updates_per_sec`.
fn flatten(value: &Json, prefix: &str, out: &mut Vec<(String, Json)>) {
    match value {
        Json::Object(members) => {
            for (key, v) in members {
                let path = if prefix.is_empty() { key.clone() } else { format!("{prefix}.{key}") };
                flatten(v, &path, out);
            }
        }
        Json::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(v, &format!("{prefix}[{i}]"), out);
            }
        }
        leaf => out.push((prefix.to_owned(), leaf.clone())),
    }
}

/// One compared throughput figure.
struct Delta {
    path: String,
    baseline: f64,
    measured: f64,
}

impl Delta {
    fn ratio(&self) -> f64 {
        self.measured / self.baseline
    }

    fn percent(&self) -> f64 {
        (self.ratio() - 1.0) * 100.0
    }
}

/// The gate's verdict over two parsed files.
struct Comparison {
    deltas: Vec<Delta>,
    /// `overhead_percent` figures, gated absolutely against the cap (a
    /// cost ceiling, not a drift band — the committed baseline being
    /// small must not excuse a fresh run that blows the budget).
    overheads: Vec<Delta>,
    /// Baseline leaf paths with no counterpart in the fresh run.
    missing: Vec<String>,
}

fn compare(baseline: &Json, measured: &Json) -> Comparison {
    let mut base_leaves = Vec::new();
    let mut meas_leaves = Vec::new();
    flatten(baseline, "", &mut base_leaves);
    flatten(measured, "", &mut meas_leaves);

    let mut missing = Vec::new();
    let mut deltas = Vec::new();
    let mut overheads = Vec::new();
    for (path, value) in &base_leaves {
        let Some((_, fresh)) = meas_leaves.iter().find(|(p, _)| p == path) else {
            missing.push(path.clone());
            continue;
        };
        if let (true, Json::Number(b), Json::Number(m)) =
            (path.ends_with("updates_per_sec"), value, fresh)
        {
            deltas.push(Delta { path: path.clone(), baseline: *b, measured: *m });
        }
        if let (true, Json::Number(b), Json::Number(m)) =
            (path.ends_with("overhead_percent"), value, fresh)
        {
            overheads.push(Delta { path: path.clone(), baseline: *b, measured: *m });
        }
    }
    Comparison { deltas, overheads, missing }
}

/// Renders the per-figure delta table (markdown — readable in job logs
/// and as an uploaded artifact).
fn render_summary(deltas: &[Delta], tolerance: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| figure | baseline /s | fresh /s | delta | verdict |");
    let _ = writeln!(out, "|---|---:|---:|---:|---|");
    for d in deltas {
        let within = (d.ratio() - 1.0).abs() <= tolerance;
        let _ = writeln!(
            out,
            "| {} | {:.0} | {:.0} | {:+.1}% | {} |",
            d.path.trim_end_matches(".updates_per_sec"),
            d.baseline,
            d.measured,
            d.percent(),
            if within { "ok" } else { "OUT OF RANGE" }
        );
    }
    out
}

/// Renders the overhead-cap table: each `overhead_percent` figure's
/// fresh value against the absolute cap.
fn render_overheads(overheads: &[Delta], cap: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| figure | baseline % | fresh % | cap % | verdict |");
    let _ = writeln!(out, "|---|---:|---:|---:|---|");
    for d in overheads {
        let _ = writeln!(
            out,
            "| {} | {:+.2} | {:+.2} | {:.2} | {} |",
            d.path.trim_end_matches(".overhead_percent"),
            d.baseline,
            d.measured,
            cap,
            if d.measured <= cap { "ok" } else { "OVER CAP" }
        );
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.25f64;
    let mut overhead_cap = 2.0f64;
    let mut summary_path: Option<String> = None;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    tolerance = v;
                }
            }
            "--overhead-cap" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    overhead_cap = v;
                }
            }
            "--summary" => summary_path = it.next().cloned(),
            "--help" | "-h" => {
                println!(
                    "usage: bench_gate [--tolerance FRACTION] [--overhead-cap PERCENT] \
                     [--summary FILE] <baseline.json> <measured.json>"
                );
                return ExitCode::SUCCESS;
            }
            other => files.push(other.to_owned()),
        }
    }
    let [baseline_path, measured_path] = files.as_slice() else {
        eprintln!("bench_gate: expected exactly two files (baseline, measured); see --help");
        return ExitCode::FAILURE;
    };

    let read_parse = |path: &str| -> Option<Json> {
        let text = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench_gate: read {path}: {e}");
                return None;
            }
        };
        match Parser::parse(&text) {
            Ok(v) => Some(v),
            Err(e) => {
                eprintln!("bench_gate: parse {path}: {e}");
                None
            }
        }
    };
    let (Some(baseline), Some(measured)) = (read_parse(baseline_path), read_parse(measured_path))
    else {
        return ExitCode::FAILURE;
    };

    let cmp = compare(&baseline, &measured);
    if !cmp.missing.is_empty() {
        for path in &cmp.missing {
            eprintln!("bench_gate: baseline key `{path}` missing from {measured_path}");
        }
        eprintln!(
            "bench_gate: {} baseline key(s) absent from the fresh run — the bench shape \
             changed; regenerate the committed baseline",
            cmp.missing.len()
        );
        return ExitCode::FAILURE;
    }
    if cmp.deltas.is_empty() {
        eprintln!("bench_gate: no updates_per_sec figures in {baseline_path}");
        return ExitCode::FAILURE;
    }

    let mut summary = render_summary(&cmp.deltas, tolerance);
    if !cmp.overheads.is_empty() {
        summary.push('\n');
        summary.push_str(&render_overheads(&cmp.overheads, overhead_cap));
    }
    print!("{summary}");
    if let Some(path) = summary_path {
        if let Err(e) = std::fs::write(&path, &summary) {
            eprintln!("bench_gate: write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let rates_ok = cmp.deltas.iter().all(|d| (d.ratio() - 1.0).abs() <= tolerance);
    let overheads_ok = cmp.overheads.iter().all(|d| d.measured <= overhead_cap);
    if !rates_ok {
        eprintln!(
            "bench_gate: throughput drifted beyond ±{:.0}% — investigate, or regenerate the \
             committed baseline if the change is intended",
            tolerance * 100.0
        );
    }
    if !overheads_ok {
        eprintln!(
            "bench_gate: metrics instrumentation overhead exceeds the {overhead_cap:.1}% cap — \
             the sampled-profiling cost regressed"
        );
    }
    if rates_ok && overheads_ok {
        println!(
            "bench_gate: {} figures within ±{:.0}% of {baseline_path}{}",
            cmp.deltas.len(),
            tolerance * 100.0,
            if cmp.overheads.is_empty() {
                String::new()
            } else {
                format!(
                    ", {} overhead figure(s) under the {overhead_cap:.1}% cap",
                    cmp.overheads.len()
                )
            }
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(v: f64) -> Json {
        Json::Number(v)
    }

    #[test]
    fn parses_bench_shaped_json() {
        let text = r#"{"bench":"pipeline","results":[{"updates":32130,
            "streaming":{"seconds":0.06,"updates_per_sec":508458},
            "ok":true,"note":null,"name":"a\nb"}]}"#;
        let v = Parser::parse(text).unwrap();
        let mut leaves = Vec::new();
        flatten(&v, "", &mut leaves);
        let find = |p: &str| leaves.iter().find(|(q, _)| q == p).map(|(_, v)| v.clone());
        assert_eq!(find("bench"), Some(Json::String("pipeline".into())));
        assert_eq!(find("results[0].streaming.updates_per_sec"), Some(num(508458.0)));
        assert_eq!(find("results[0].ok"), Some(Json::Bool(true)));
        assert_eq!(find("results[0].note"), Some(Json::Null));
        assert_eq!(find("results[0].name"), Some(Json::String("a\nb".into())));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(Parser::parse("{\"a\":").is_err());
        assert!(Parser::parse("[1,2,]").is_err());
        assert!(Parser::parse("{} trailing").is_err());
        assert!(Parser::parse("\"unterminated").is_err());
    }

    #[test]
    fn matched_rates_compare_by_path() {
        let base = Parser::parse(
            r#"{"results":[{"streaming":{"updates_per_sec":100}},
                           {"streaming":{"updates_per_sec":200}}]}"#,
        )
        .unwrap();
        let meas = Parser::parse(
            r#"{"results":[{"streaming":{"updates_per_sec":110}},
                           {"streaming":{"updates_per_sec":150}}]}"#,
        )
        .unwrap();
        let cmp = compare(&base, &meas);
        assert!(cmp.missing.is_empty());
        assert_eq!(cmp.deltas.len(), 2);
        assert!((cmp.deltas[0].ratio() - 1.1).abs() < 1e-9);
        assert!((cmp.deltas[1].ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn renamed_key_is_reported_missing() {
        // The old string-scanning gate paired these two rates silently;
        // structurally, the rename is a missing baseline key.
        let base = Parser::parse(
            r#"{"streaming":{"updates_per_sec":100},"batch":{"updates_per_sec":90}}"#,
        )
        .unwrap();
        let meas =
            Parser::parse(r#"{"serial":{"updates_per_sec":100},"batch":{"updates_per_sec":90}}"#)
                .unwrap();
        let cmp = compare(&base, &meas);
        assert_eq!(cmp.missing, vec!["streaming.updates_per_sec".to_string()]);
        assert_eq!(cmp.deltas.len(), 1, "the surviving key still compares");
    }

    #[test]
    fn dropped_array_entry_is_reported_missing() {
        let base =
            Parser::parse(r#"{"results":[{"updates_per_sec":100},{"updates_per_sec":200}]}"#)
                .unwrap();
        let meas = Parser::parse(r#"{"results":[{"updates_per_sec":100}]}"#).unwrap();
        let cmp = compare(&base, &meas);
        assert_eq!(cmp.missing, vec!["results[1].updates_per_sec".to_string()]);
    }

    #[test]
    fn live_scaling_sweep_shape_gates_every_point() {
        // The exact shape bench_live emits: one array entry per peer
        // count. Every point's rate must pair by path, and a vanished
        // point (say the 5000-session one regressing out of the sweep)
        // must fail the gate as a missing key, not pass silently.
        let base = Parser::parse(
            r#"{"bench":"live","results":[
                {"peers":4,"updates":100000,"seconds":0.9,"updates_per_sec":110000},
                {"peers":64,"updates":100000,"seconds":0.8,"updates_per_sec":126000},
                {"peers":1000,"updates":100000,"seconds":0.9,"updates_per_sec":111000},
                {"peers":5000,"updates":100000,"seconds":1.2,"updates_per_sec":80000}]}"#,
        )
        .unwrap();
        let full = compare(&base, &base);
        assert!(full.missing.is_empty());
        assert_eq!(full.deltas.len(), 4, "one gated rate per sweep point");
        assert!(full.deltas.iter().all(|d| d.path.starts_with("results[")));

        let truncated = Parser::parse(
            r#"{"bench":"live","results":[
                {"peers":4,"updates":100000,"seconds":0.9,"updates_per_sec":110000}]}"#,
        )
        .unwrap();
        let cmp = compare(&base, &truncated);
        for point in 1..4 {
            let key = format!("results[{point}].updates_per_sec");
            assert!(cmp.missing.contains(&key), "{key} must fail the gate: {:?}", cmp.missing);
        }
    }

    #[test]
    fn overhead_figures_are_collected_and_capped_absolutely() {
        let base = Parser::parse(
            r#"{"results":[{"instrumented":{"profile_every":64,
                "result":{"updates_per_sec":100000},"overhead_percent":0.40}}]}"#,
        )
        .unwrap();
        let meas = Parser::parse(
            r#"{"results":[{"instrumented":{"profile_every":64,
                "result":{"updates_per_sec":99000},"overhead_percent":3.10}}]}"#,
        )
        .unwrap();
        let cmp = compare(&base, &meas);
        assert_eq!(cmp.overheads.len(), 1);
        let d = &cmp.overheads[0];
        assert_eq!(d.path, "results[0].instrumented.overhead_percent");
        // A small baseline never excuses a fresh run over the cap.
        assert!(d.measured > 2.0, "fresh overhead must be gated, not its drift");
        let table = render_overheads(&cmp.overheads, 2.0);
        assert!(table.contains("OVER CAP"), "{table}");
        let ok = render_overheads(
            &[Delta { path: "x.overhead_percent".into(), baseline: 0.4, measured: 1.9 }],
            2.0,
        );
        assert!(ok.contains("| ok |"), "{ok}");
    }

    #[test]
    fn summary_marks_out_of_range_rows() {
        let deltas = vec![
            Delta { path: "a.updates_per_sec".into(), baseline: 100.0, measured: 120.0 },
            Delta { path: "b.updates_per_sec".into(), baseline: 100.0, measured: 60.0 },
        ];
        let text = render_summary(&deltas, 0.25);
        assert!(text.contains("| a | 100 | 120 | +20.0% | ok |"), "{text}");
        assert!(text.contains("| b | 100 | 60 | -40.0% | OUT OF RANGE |"), "{text}");
    }
}
