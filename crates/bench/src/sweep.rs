//! Parallel scenario sweeps: a matrix of declarative scenarios fanned
//! across worker threads.
//!
//! The ROADMAP's north star is running "as many scenarios as you can
//! imagine ... as fast as the hardware allows". This module supplies the
//! mechanism: a [`SweepConfig`] expands a **vendor profile × cleaning
//! placement × MRAI × topology size** matrix into [`SweepCell`]s, each
//! cell compiles (via [`SweepCell::spec`]) into an independent
//! [`ScenarioSpec`] over a [`kcc_topology::gen`]-generated Internet, and
//! [`run_sweep`] executes the cells on `std::thread` workers — one
//! [`kcc_bgp_sim::Network`] per cell, zero shared mutable simulation
//! state, so cells parallelize embarrassingly and deterministically (the
//! thread count never changes any cell's result, only the wall clock).
//!
//! Every cell runs the same protocol the paper's beacon analysis uses:
//! converge a full table, then flap the dual-homed beacon origin's
//! primary provider link down → up → down, and classify the stream a
//! route collector records into the paper's `pc/pn/nc/nn/xc/xn`
//! announcement types. The per-cell [`CellResult`]s aggregate into one
//! comparison table (see the `sweep` binary).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use kcc_bgp_sim::scenario::{
    self, CollectorDecl, Phase, ScenarioAction, ScenarioEvent, ScenarioSpec, TopologyTemplate,
};
use kcc_bgp_sim::{Capture, SimConfig, SimDuration, SimTime, VendorProfile};
use kcc_bgp_types::Asn;
use kcc_core::{classify_archive, TypeCounts};
use kcc_topology::gen::BEACON_ORIGIN_ASN;
use kcc_topology::{BehaviorMix, InternetConfig, RouterId, TopologyConfig};
use keep_communities_clean::adapter::capture_to_archive;

/// The collector AS attached to every sweep cell (RIS-style).
pub const COLLECTOR_ASN: Asn = Asn(3333);

/// Where community cleaning happens in a cell's topology — the paper's
/// §7 deployment question, as a sweep dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CleaningPlacement {
    /// Nobody cleans: communities propagate blindly.
    Blind,
    /// Half of the ASes clean on ingress (the paper's recommendation —
    /// Exp4: nothing leaks).
    Ingress,
    /// Half of the ASes clean on egress (Exp3: `nn` duplicates leak on
    /// non-suppressing vendors).
    Egress,
}

impl CleaningPlacement {
    /// All placements, in table order.
    pub const ALL: [CleaningPlacement; 3] =
        [CleaningPlacement::Blind, CleaningPlacement::Ingress, CleaningPlacement::Egress];

    /// Short table label.
    pub fn label(self) -> &'static str {
        match self {
            CleaningPlacement::Blind => "blind",
            CleaningPlacement::Ingress => "ingress",
            CleaningPlacement::Egress => "egress",
        }
    }

    /// The behavior mix realizing this placement: geo-tagging stays at
    /// the default rate so community churn exists to clean, and the
    /// chosen direction cleans at 50 % deployment.
    pub fn behavior_mix(self) -> BehaviorMix {
        let (egress, ingress) = match self {
            CleaningPlacement::Blind => (0.0, 0.0),
            CleaningPlacement::Ingress => (0.0, 0.5),
            CleaningPlacement::Egress => (0.5, 0.0),
        };
        BehaviorMix { transit_tags_geo: 0.5, cleans_egress: egress, cleans_ingress: ingress }
    }
}

/// One cell of the sweep matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Vendor profile every router runs (its duplicate behavior is the
    /// §3 vendor split).
    pub vendor: VendorProfile,
    /// Community cleaning placement.
    pub cleaning: CleaningPlacement,
    /// eBGP MRAI override applied to the vendor profile.
    pub mrai: SimDuration,
    /// Approximate AS count of the generated topology.
    pub n_ases: usize,
}

impl SweepCell {
    /// Table/scenario label, e.g. `Junos/ingress/mrai=30s/80as`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/mrai={}s/{}as",
            self.vendor.name,
            self.cleaning.label(),
            self.mrai.as_micros() / 1_000_000,
            self.n_ases
        )
    }

    /// Compiles the cell into a declarative scenario: a sized generated
    /// topology with a collector on the first two transits, full-table
    /// convergence, then a down → up → down flap of the beacon origin's
    /// primary provider link.
    pub fn spec(&self, seed: u64) -> ScenarioSpec {
        let config = TopologyConfig::sized(self.n_ases, seed)
            .with_behavior_mix(self.cleaning.behavior_mix());
        let vendor = VendorProfile { mrai_ebgp: self.mrai, ..self.vendor };
        let primary_transit = Asn(20_000);
        let flap = |down: bool| {
            let action = if down {
                ScenarioAction::InterAsLinkDown { a: BEACON_ORIGIN_ASN, b: primary_transit }
            } else {
                ScenarioAction::InterAsLinkUp { a: BEACON_ORIGIN_ASN, b: primary_transit }
            };
            vec![ScenarioEvent::after(SimDuration::from_secs(10), action)]
        };
        ScenarioSpec {
            name: self.label(),
            sim: SimConfig { seed, default_vendor: vendor, ..Default::default() },
            topology: TopologyTemplate::Generated {
                config,
                collector: Some(CollectorDecl {
                    asn: COLLECTOR_ASN,
                    peers: vec![
                        RouterId { asn: Asn(20_000), index: 0 },
                        RouterId { asn: Asn(20_001), index: 0 },
                    ],
                }),
            },
            monitors: vec![],
            watch: vec![],
            phases: vec![
                Phase::new(
                    "converge",
                    vec![ScenarioEvent::immediately(ScenarioAction::AnnounceAllOrigins)],
                ),
                Phase::new("flap", flap(true)),
                Phase::new("heal", flap(false)),
                Phase::new("reflap", flap(true)),
            ],
            expectations: vec![],
        }
    }
}

/// The sweep matrix definition.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Vendor dimension.
    pub vendors: Vec<VendorProfile>,
    /// Cleaning placement dimension.
    pub cleanings: Vec<CleaningPlacement>,
    /// MRAI dimension (overrides each vendor's eBGP MRAI).
    pub mrais: Vec<SimDuration>,
    /// Topology size dimension (approximate AS counts).
    pub sizes: Vec<usize>,
    /// Seed shared by every cell (topology + delays + behavior draws).
    pub seed: u64,
}

impl SweepConfig {
    /// The full comparison matrix: 3 vendors × 3 placements × 2 MRAIs ×
    /// 2 sizes = 36 cells.
    pub fn paper_matrix(seed: u64) -> Self {
        SweepConfig {
            vendors: vec![VendorProfile::CISCO_IOS, VendorProfile::JUNOS, VendorProfile::BIRD_2],
            cleanings: CleaningPlacement::ALL.to_vec(),
            mrais: vec![SimDuration::ZERO, SimDuration::from_secs(30)],
            sizes: vec![40, 80],
            seed,
        }
    }

    /// A ≤ 8-cell matrix for CI smoke runs: 2 vendors × 2 placements ×
    /// 1 MRAI × 1 size = 4 cells.
    pub fn smoke(seed: u64) -> Self {
        SweepConfig {
            vendors: vec![VendorProfile::BIRD_2, VendorProfile::JUNOS],
            cleanings: vec![CleaningPlacement::Blind, CleaningPlacement::Egress],
            mrais: vec![SimDuration::ZERO],
            sizes: vec![24],
            seed,
        }
    }

    /// Expands the dimensions into cells, sizes-major so neighboring
    /// cells differ in the cheapest dimension first.
    pub fn matrix(&self) -> Vec<SweepCell> {
        let mut cells = Vec::new();
        for &n_ases in &self.sizes {
            for &vendor in &self.vendors {
                for &cleaning in &self.cleanings {
                    for &mrai in &self.mrais {
                        cells.push(SweepCell { vendor, cleaning, mrai, n_ases });
                    }
                }
            }
        }
        cells
    }
}

/// What one cell measured.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell.
    pub cell: SweepCell,
    /// Announcement-type counts of the collector stream across all
    /// phases (`initial` counts the convergence announcements).
    pub counts: TypeCounts,
    /// Total messages the collector captured.
    pub collector_messages: usize,
    /// Messages the collector captured during the perturbation phases
    /// (everything after convergence) — the signal the sweep measures.
    pub perturbation_messages: usize,
    /// Time of the last processed event — the full timeline's length in
    /// simulated time.
    pub converged_at: SimTime,
}

/// Runs one cell: compile the spec, run the engine, classify the
/// collector stream.
pub fn run_cell(cell: &SweepCell, seed: u64) -> CellResult {
    let spec = cell.spec(seed);
    let outcome = scenario::run(&spec);
    let collector = RouterId { asn: COLLECTOR_ASN, index: 0 };
    let mut capture = Capture::new();
    let mut perturbation_messages = 0;
    for (i, phase) in outcome.phases.iter().enumerate() {
        if let Some(entries) = phase.collected.get(&collector) {
            if i > 0 {
                perturbation_messages += entries.len();
            }
            for entry in entries {
                capture.record(entry.clone());
            }
        }
    }
    let archive = capture_to_archive(&outcome.net, "sweep", &capture, 0);
    let classified = classify_archive(&archive);
    CellResult {
        cell: cell.clone(),
        counts: classified.counts,
        collector_messages: capture.len(),
        perturbation_messages,
        converged_at: outcome.phases.last().map(|p| p.quiesced).unwrap_or(SimTime::ZERO),
    }
}

/// An internet-scale measurement cell (see the `bench_sim` binary): a
/// power-law [`generate_internet`](kcc_topology::generate_internet)
/// topology at `n_ases`, run through the beacon flap protocol — converge
/// the beacon prefix across the whole graph, then flap the beacon
/// origin's primary provider link down → up → down while a collector on
/// the first two transits records the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct InternetCell {
    /// Vendor profile every router runs.
    pub vendor: VendorProfile,
    /// eBGP MRAI override applied to the vendor profile.
    pub mrai: SimDuration,
    /// Total AS count of the generated internet.
    pub n_ases: usize,
}

impl InternetCell {
    /// Table/scenario label, e.g. `internet/10000as`.
    pub fn label(&self) -> String {
        format!("internet/{}as", self.n_ases)
    }

    /// Compiles the cell into a declarative scenario over an
    /// internet-scale topology. Only the beacon prefix is announced —
    /// propagation across a 10k+-AS graph is the measured workload;
    /// announcing every stub's prefix would square it.
    pub fn spec(&self, seed: u64) -> ScenarioSpec {
        let config = InternetConfig::sized(self.n_ases, seed);
        let beacon_prefix = config.beacon_prefixes[0];
        let vendor = VendorProfile { mrai_ebgp: self.mrai, ..self.vendor };
        let beacon = RouterId { asn: BEACON_ORIGIN_ASN, index: 0 };
        let primary_transit = Asn(20_000);
        let flap = |down: bool| {
            let action = if down {
                ScenarioAction::InterAsLinkDown { a: BEACON_ORIGIN_ASN, b: primary_transit }
            } else {
                ScenarioAction::InterAsLinkUp { a: BEACON_ORIGIN_ASN, b: primary_transit }
            };
            vec![ScenarioEvent::after(SimDuration::from_secs(10), action)]
        };
        ScenarioSpec {
            name: self.label(),
            sim: SimConfig { seed, default_vendor: vendor, ..Default::default() },
            topology: TopologyTemplate::GeneratedInternet {
                config,
                collector: Some(CollectorDecl {
                    asn: COLLECTOR_ASN,
                    peers: vec![
                        RouterId { asn: Asn(20_000), index: 0 },
                        RouterId { asn: Asn(20_001), index: 0 },
                    ],
                }),
            },
            monitors: vec![],
            watch: vec![],
            phases: vec![
                Phase::new(
                    "converge",
                    vec![ScenarioEvent::immediately(ScenarioAction::Announce {
                        router: beacon,
                        prefix: beacon_prefix,
                    })],
                ),
                Phase::new("flap", flap(true)),
                Phase::new("heal", flap(false)),
                Phase::new("reflap", flap(true)),
            ],
            expectations: vec![],
        }
    }
}

/// What one internet-scale cell measured.
#[derive(Debug, Clone, PartialEq)]
pub struct InternetCellResult {
    /// Total AS count of the cell's topology.
    pub n_ases: usize,
    /// Routers in the compiled network (includes the collector).
    pub routers: usize,
    /// Sessions in the compiled network.
    pub sessions: usize,
    /// Announcement-type counts of the collector stream across all
    /// phases.
    pub counts: TypeCounts,
    /// Total messages the collector captured.
    pub collector_messages: usize,
    /// Simulator events processed across the whole timeline.
    pub events_processed: u64,
    /// Bytes retained by the interned path-attribute store at the end.
    pub interned_attr_bytes: usize,
    /// Time of the last processed event in simulated time.
    pub converged_at: SimTime,
}

/// Runs one internet-scale cell: compile the spec, run the engine,
/// classify the collector stream.
pub fn run_internet_cell(cell: &InternetCell, seed: u64) -> InternetCellResult {
    let spec = cell.spec(seed);
    let outcome = scenario::run(&spec);
    let collector = RouterId { asn: COLLECTOR_ASN, index: 0 };
    let mut capture = Capture::new();
    for phase in &outcome.phases {
        if let Some(entries) = phase.collected.get(&collector) {
            for entry in entries {
                capture.record(entry.clone());
            }
        }
    }
    let archive = capture_to_archive(&outcome.net, "sim", &capture, 0);
    let classified = classify_archive(&archive);
    InternetCellResult {
        n_ases: cell.n_ases,
        routers: outcome.net.routers().count(),
        sessions: outcome.net.sessions().len(),
        counts: classified.counts,
        collector_messages: capture.len(),
        events_processed: outcome.net.stats.events_processed,
        interned_attr_bytes: outcome.net.attr_store().bytes(),
        converged_at: outcome.phases.last().map(|p| p.quiesced).unwrap_or(SimTime::ZERO),
    }
}

/// Runs every cell across `threads` workers over independent networks.
/// Results come back in cell order and are identical for any thread
/// count — parallelism only buys wall-clock time.
pub fn run_sweep(cells: &[SweepCell], seed: u64, threads: usize) -> Vec<CellResult> {
    let threads = threads.max(1).min(cells.len().max(1));
    if threads == 1 {
        return cells.iter().map(|c| run_cell(c, seed)).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, CellResult)>> = Mutex::new(Vec::with_capacity(cells.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let result = run_cell(&cells[i], seed);
                results.lock().expect("result sink poisoned").push((i, result));
            });
        }
    });
    let mut indexed = results.into_inner().expect("result sink poisoned");
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_expansion_covers_all_dimensions() {
        let cfg = SweepConfig::paper_matrix(42);
        let cells = cfg.matrix();
        assert_eq!(
            cells.len(),
            cfg.vendors.len() * cfg.cleanings.len() * cfg.mrais.len() * cfg.sizes.len()
        );
        assert!(cells.len() >= 24, "acceptance: a ≥24-cell matrix");
        // Every combination appears exactly once.
        let mut labels: Vec<String> = cells.iter().map(SweepCell::label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), cells.len());
    }

    #[test]
    fn smoke_matrix_is_ci_sized() {
        assert!(SweepConfig::smoke(42).matrix().len() <= 8);
    }

    #[test]
    fn cell_run_is_deterministic() {
        let cell = SweepCell {
            vendor: VendorProfile::BIRD_2,
            cleaning: CleaningPlacement::Blind,
            mrai: SimDuration::ZERO,
            n_ases: 15,
        };
        let a = run_cell(&cell, 7);
        let b = run_cell(&cell, 7);
        assert_eq!(a, b);
        assert!(
            a.perturbation_messages > 0,
            "the flap/heal/reflap phases themselves must reach the collector, \
             not just convergence"
        );
        assert!(a.collector_messages > a.perturbation_messages, "convergence traffic exists too");
    }

    #[test]
    fn parallel_equals_serial() {
        let cfg = SweepConfig {
            vendors: vec![VendorProfile::BIRD_2, VendorProfile::JUNOS],
            cleanings: vec![CleaningPlacement::Blind, CleaningPlacement::Egress],
            mrais: vec![SimDuration::ZERO],
            sizes: vec![15],
            seed: 5,
        };
        let cells = cfg.matrix();
        let serial = run_sweep(&cells, cfg.seed, 1);
        let parallel = run_sweep(&cells, cfg.seed, 4);
        assert_eq!(serial, parallel, "thread count must not change results");
    }

    #[test]
    fn junos_produces_fewer_duplicates_than_bird() {
        // The §3 vendor split must survive the full generated-topology
        // pipeline: with blind propagation, the Junos cell's collector
        // stream carries at most as many nn duplicates as BIRD's.
        let base = |vendor| SweepCell {
            vendor,
            cleaning: CleaningPlacement::Blind,
            mrai: SimDuration::ZERO,
            n_ases: 15,
        };
        let bird = run_cell(&base(VendorProfile::BIRD_2), 3);
        let junos = run_cell(&base(VendorProfile::JUNOS), 3);
        assert!(
            junos.counts.nn <= bird.counts.nn,
            "junos nn={} must not exceed bird nn={}",
            junos.counts.nn,
            bird.counts.nn
        );
    }
}
