//! Paper-vs-measured comparison rendering.
//!
//! Every harness binary ends with a comparison block: the value the paper
//! reports, the value this reproduction measured, and whether the *shape*
//! holds (within a stated band). Absolute magnitudes are expected to
//! differ — the substrate is a scaled synthetic workload, not the
//! authors' testbed.

use kcc_core::report::render_table;

/// One compared quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// What is being compared.
    pub name: String,
    /// The paper's value, as printed.
    pub paper: String,
    /// Our measured value, as printed.
    pub measured: String,
    /// Whether the shape criterion holds.
    pub ok: bool,
}

/// A block of comparisons.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    rows: Vec<ComparisonRow>,
}

impl Comparison {
    /// An empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a numeric comparison judged by relative band: ok when
    /// `measured` is within `band` (e.g. 0.35 = ±35 %) of `paper`.
    pub fn add_pct(&mut self, name: &str, paper: f64, measured: f64, band: f64) {
        let ok = if paper == 0.0 {
            measured.abs() < 1e-9 || measured.abs() <= band
        } else {
            (measured - paper).abs() / paper.abs() <= band
        };
        self.rows.push(ComparisonRow {
            name: name.to_string(),
            paper: format!("{paper:.1}"),
            measured: format!("{measured:.1}"),
            ok,
        });
    }

    /// Adds a free-form comparison with an explicit verdict.
    pub fn add(&mut self, name: &str, paper: &str, measured: &str, ok: bool) {
        self.rows.push(ComparisonRow {
            name: name.to_string(),
            paper: paper.to_string(),
            measured: measured.to_string(),
            ok,
        });
    }

    /// True when every row holds.
    pub fn all_ok(&self) -> bool {
        self.rows.iter().all(|r| r.ok)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the block.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.paper.clone(),
                    r.measured.clone(),
                    if r.ok { "ok".into() } else { "DEVIATES".into() },
                ]
            })
            .collect();
        format!(
            "paper vs measured (shape check)\n{}",
            render_table(&["quantity", "paper", "measured", "verdict"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_band_judgement() {
        let mut c = Comparison::new();
        c.add_pct("pc share", 33.7, 35.0, 0.15);
        c.add_pct("nn share", 25.7, 50.0, 0.15);
        assert_eq!(c.len(), 2);
        assert!(!c.all_ok());
        let text = c.render();
        assert!(text.contains("ok"));
        assert!(text.contains("DEVIATES"));
    }

    #[test]
    fn zero_paper_value() {
        let mut c = Comparison::new();
        c.add_pct("zero", 0.0, 0.0, 0.1);
        assert!(c.all_ok());
    }

    #[test]
    fn freeform_rows() {
        let mut c = Comparison::new();
        c.add("junos", "suppresses", "suppresses", true);
        assert!(c.all_ok());
        assert!(!c.is_empty());
    }
}
