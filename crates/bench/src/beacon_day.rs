//! The simulated beacon day: a mid-scale Internet, one RIS-style beacon,
//! 24 hours of announce/withdraw cycles, captured at a collector.
//!
//! This is the substrate for Figs. 3–5: path exploration and community
//! exploration *emerge* from the simulator's mechanics (multi-router
//! transit ASes geo-tagging at ingress, parallel interconnections at
//! different cities, vendors that forward duplicates).

use kcc_bgp_sim::{Network, SimConfig, SimDuration, SimTime, VendorProfile};
use kcc_bgp_types::{Asn, Prefix};
use kcc_collector::{BeaconEvent, BeaconSchedule, UpdateArchive};
use kcc_topology::{generate, RouterId, Tier, Topology, TopologyConfig};
use keep_communities_clean::adapter::capture_to_archive;

/// Configuration of the simulated beacon day.
#[derive(Debug, Clone)]
pub struct BeaconDayConfig {
    /// Seed for topology and simulator.
    pub seed: u64,
    /// Tier-1 count.
    pub n_tier1: usize,
    /// Transit count.
    pub n_transit: usize,
    /// Stub count.
    pub n_stub: usize,
    /// How many stub peers (besides all transits) peer with the collector.
    pub stub_peers: usize,
    /// Vendor mix across ASes.
    pub vendor_mix: Vec<(VendorProfile, f64)>,
    /// Optional route-flap dampening applied network-wide.
    pub dampening: Option<kcc_bgp_sim::DampeningConfig>,
}

impl Default for BeaconDayConfig {
    fn default() -> Self {
        BeaconDayConfig {
            seed: 42,
            n_tier1: 4,
            n_transit: 16,
            n_stub: 40,
            stub_peers: 8,
            vendor_mix: vec![
                (VendorProfile::CISCO_IOS, 0.35),
                (VendorProfile::CISCO_IOS_XR, 0.15),
                (VendorProfile::JUNOS, 0.25),
                (VendorProfile::BIRD_2, 0.25),
            ],
            dampening: None,
        }
    }
}

/// What the beacon day produced.
#[derive(Debug)]
pub struct BeaconDayOutput {
    /// The collector archive, times rebased to day start.
    pub archive: UpdateArchive,
    /// The beacon prefix.
    pub beacon_prefix: Prefix,
    /// The collector router.
    pub collector: RouterId,
    /// The network after the run (for counters/inspection).
    pub net: Network,
    /// The topology.
    pub topo: Topology,
}

/// Runs a full simulated beacon day and returns the rebased archive.
pub fn run_beacon_day(cfg: &BeaconDayConfig) -> BeaconDayOutput {
    let beacon_prefix: Prefix = "84.205.64.0/24".parse().expect("literal prefix");
    let topo = generate(&TopologyConfig {
        seed: cfg.seed,
        n_tier1: cfg.n_tier1,
        n_transit: cfg.n_transit,
        n_stub: cfg.n_stub,
        with_beacon_origin: true,
        beacon_prefixes: vec![beacon_prefix],
        // Denser multi-city interconnection than the global default: the
        // beacon study needs room for ingress shifts (community
        // exploration) to unfold.
        routers_transit: (3, 5),
        parallel_link_prob: 0.55,
        transit_peering_prob: 0.4,
        ..Default::default()
    });
    // The paper's Fig. 5 deliberately selects a peer that removes all
    // communities; guarantee such peers exist regardless of the random
    // behavior mix by converting every fifth transit into an egress
    // cleaner.
    let mut topo = topo;
    let cleaner_asns: Vec<_> =
        topo.nodes().filter(|n| n.tier == Tier::Transit).map(|n| n.asn).step_by(5).collect();
    for asn in cleaner_asns {
        if let Some(node) = topo.node_mut(asn) {
            node.behavior.cleans_egress = true;
            node.behavior.cleans_ingress = false;
        }
    }
    let mut net = Network::from_topology(
        &topo,
        SimConfig {
            seed: cfg.seed,
            vendor_mix: cfg.vendor_mix.clone(),
            dampening: cfg.dampening,
            // Wide per-session delay stagger desynchronizes propagation,
            // letting exploration pass through more transient states (as
            // heterogeneous real-world pacing does).
            delay_spread: kcc_bgp_sim::SimDuration::from_millis(40),
            ..Default::default()
        },
    );

    // Collector peers: every transit's router 0 plus some stubs.
    let mut peers: Vec<RouterId> =
        topo.nodes().filter(|n| n.tier == Tier::Transit).map(|n| n.router_id(0)).collect();
    peers.extend(
        topo.nodes().filter(|n| n.tier == Tier::Stub).take(cfg.stub_peers).map(|n| n.router_id(0)),
    );
    let (collector, _) = net.attach_collector(Asn(3333), &peers);

    // Converge the whole table, then withdraw the beacon (its state at
    // 00:00 of a real day: withdrawn since 22:00 the previous evening).
    let beacon_router = RouterId { asn: Asn(12_654), index: 0 };
    net.announce_all_origins(&topo, SimTime::ZERO);
    net.run_until_quiet();
    let t_wd = net.now() + SimDuration::from_secs(10);
    net.schedule_withdraw(t_wd, beacon_router, beacon_prefix);
    net.run_until_quiet();
    net.clear_captures();

    // The simulated day starts on a fresh minute boundary.
    let day_start = SimTime(((net.now().0 / 60_000_000) + 2) * 60_000_000);
    let schedule = BeaconSchedule::default();
    for (offset, event) in schedule.day_events() {
        let at = SimTime(day_start.0 + offset);
        match event {
            BeaconEvent::Announce => net.schedule_announce(at, beacon_router, beacon_prefix),
            BeaconEvent::Withdraw => net.schedule_withdraw(at, beacon_router, beacon_prefix),
        }
    }
    net.run_until_quiet();

    // Rebase capture times to the day origin.
    let capture = net.capture(collector).expect("collector capture").clone();
    let mut archive = capture_to_archive(&net, "rrc00", &capture, 1_584_230_400);
    for (_, rec) in archive.sessions_mut() {
        for u in &mut rec.updates {
            u.time_us = u.time_us.saturating_sub(day_start.0);
        }
    }

    BeaconDayOutput { archive, beacon_prefix, collector, net, topo }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_collector::BeaconPhase;
    use kcc_core::{classify_archive, AnnouncementType};

    fn quick_config() -> BeaconDayConfig {
        BeaconDayConfig {
            n_tier1: 3,
            n_transit: 8,
            n_stub: 12,
            stub_peers: 4,
            ..Default::default()
        }
    }

    #[test]
    fn beacon_day_produces_phased_traffic() {
        let out = run_beacon_day(&quick_config());
        assert!(out.archive.update_count() > 0, "collector saw nothing");
        // Withdrawals arrive in (or near) withdrawal phases.
        let schedule = BeaconSchedule::default();
        let mut in_withdraw_phase = 0usize;
        let mut withdrawals = 0usize;
        for (_, rec) in out.archive.sessions() {
            for u in &rec.updates {
                if u.is_withdrawal() {
                    withdrawals += 1;
                    if matches!(
                        schedule.phase_of(u.time_us % (24 * 3600 * 1_000_000)),
                        BeaconPhase::Withdrawal(_)
                    ) {
                        in_withdraw_phase += 1;
                    }
                }
            }
        }
        assert!(withdrawals >= 6, "expected ≥6 withdrawals, saw {withdrawals}");
        assert!(
            in_withdraw_phase * 10 >= withdrawals * 9,
            "withdrawals should arrive in their phases ({in_withdraw_phase}/{withdrawals})"
        );
    }

    #[test]
    fn community_exploration_emerges() {
        // The headline emergent behavior: nc announcements (community-only
        // changes) appear at the collector during the beacon day.
        let out = run_beacon_day(&quick_config());
        let classified = classify_archive(&out.archive);
        assert!(
            classified.counts.get(AnnouncementType::Nc) > 0,
            "no community exploration emerged: {:?}",
            classified.counts
        );
    }
}
