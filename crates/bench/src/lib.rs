//! # kcc-bench — experiment harnesses
//!
//! One binary per paper table/figure (see `src/bin/`), Criterion
//! micro-benchmarks (see `benches/`), and this shared harness library:
//! argument parsing, the simulated beacon-day driver, and paper-vs-measured
//! comparison rendering.
//!
//! | binary | regenerates |
//! |---|---|
//! | `exp_lab` | §3 Exp1–Exp4 across all vendor profiles |
//! | `sweep` | parallel scenario sweep: vendor × cleaning × MRAI × size |
//! | `table1` | Table 1 (*d_mar20* overview) |
//! | `table2` | Table 2 (type shares, *d_mar20* and *d_beacon*) |
//! | `fig2` | Fig. 2 (daily announcements per type, 2010–2020) |
//! | `fig3` | Fig. 3 (types per session, one beacon prefix, simulated) |
//! | `fig4` | Fig. 4 (cumulative types, geo-tagging path) |
//! | `fig5` | Fig. 5 (cumulative types, egress-cleaning path) |
//! | `fig6` | Fig. 6 (revealed community attributes over time) |
//! | `ablation_cleaning` | cleaning-strategy ablation (§7 recommendation) |
//! | `ablation_mrai` | MRAI pacing vs. exploration burst ablation |
//! | `bench_pipeline` | streaming vs. batch pipeline throughput → `BENCH_pipeline.json` |
//! | `kccd` | the live BGP collector daemon (TCP sessions → pipeline → MRT dumps) |
//! | `bench_live` | loopback TCP BGP ingest throughput → `BENCH_live.json` |
//! | `bench_corpus` | multi-collector corpus throughput → `BENCH_corpus.json` |
//! | `kcc-corpus` | multi-collector corpus CLI (per-collector + combined reports) |
//! | `kcc-watch` | the CommunityWatch service CLI (+ `--eval` / `--soak` gates) |
//! | `bench_watch` | watch-sink throughput + eval timing → `BENCH_watch.json` |
//! | `bench_gate` | ±tolerance updates/s regression gate over two BENCH files |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod beacon_day;
pub mod compare;
pub mod mrtgen;
pub mod sweep;
pub mod watch_eval;

pub use args::Args;
pub use beacon_day::{run_beacon_day, BeaconDayConfig, BeaconDayOutput};
pub use compare::Comparison;
pub use mrtgen::{generate_mrt_day, mrt_day, MrtDay};
pub use sweep::{run_cell, run_sweep, CellResult, CleaningPlacement, SweepCell, SweepConfig};
pub use watch_eval::{eval_library, eval_scenario, EvalResult, EVAL_WINDOW_US};
