//! Shared harness helper: generate a Mar'20-style collector day straight
//! to in-memory MRT bytes (session-at-a-time, never materializing the
//! archive), for the pipeline benchmarks.

use kcc_bgp_types::Asn;
use kcc_collector::archive::mrt_record_for;
use kcc_collector::{SourceItem, UpdateSource};
use kcc_core::AllocationRegistry;
use kcc_mrt::MrtWriter;
use kcc_tracegen::{Mar20Config, Mar20Source};

/// A generated day as the bytes a collector would publish, plus the
/// side-band metadata the cleaning stage needs.
#[derive(Debug)]
pub struct MrtDay {
    /// RFC 6396 MRT bytes.
    pub bytes: Vec<u8>,
    /// Updates written.
    pub updates: u64,
    /// The allocation registry covering the generated universe.
    pub registry: AllocationRegistry,
    /// Route-server session endpoints (metadata MRT cannot carry).
    pub route_servers: Vec<(Asn, std::net::IpAddr)>,
}

/// Streams a generated day into MRT bytes.
pub fn generate_mrt_day(cfg: &Mar20Config) -> MrtDay {
    let mut source = Mar20Source::new(cfg);
    let registry = source.registry().clone();
    let route_servers = source.route_server_peers();
    let mut writer = MrtWriter::new(Vec::new());
    let mut updates = 0u64;
    while let Some(item) = source.next_item().expect("generated sources cannot fail") {
        if let SourceItem::Update(meta, update) = item {
            writer
                .write_record(&mrt_record_for(&meta, cfg.epoch_seconds, &update))
                .expect("in-memory write cannot fail");
            updates += 1;
        }
    }
    MrtDay { bytes: writer.into_inner(), updates, registry, route_servers }
}

/// Convenience for benches: just the bytes and the update count.
pub fn mrt_day(cfg: &Mar20Config) -> (Vec<u8>, u64) {
    let day = generate_mrt_day(cfg);
    (day.bytes, day.updates)
}

/// One vantage of a multi-vantage day as MRT bytes — what that collector
/// would publish. Returns the bytes, the update count and the vantage's
/// route-server endpoints (side-band metadata MRT cannot carry).
pub fn generate_vantage_mrt(
    cfg: &kcc_tracegen::MultiVantageConfig,
    collector: &str,
) -> (Vec<u8>, u64, Vec<(Asn, std::net::IpAddr)>) {
    let mut bytes = Vec::new();
    let (updates, route_servers) = kcc_tracegen::write_vantage_mrt(cfg, collector, &mut bytes)
        .expect("in-memory write cannot fail");
    (bytes, updates, route_servers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_collector::{MrtSource, UpdateArchive};
    use kcc_tracegen::generate_mar20;

    #[test]
    fn streamed_bytes_match_batch_generation() {
        let cfg = Mar20Config {
            target_announcements: 5_000,
            universe: kcc_tracegen::universe::UniverseConfig {
                n_collectors: 2,
                n_peers: 6,
                n_sessions: 10,
                n_prefixes_v4: 100,
                n_prefixes_v6: 10,
                ..Default::default()
            },
            ..Default::default()
        };
        let day = generate_mrt_day(&cfg);
        let batch = generate_mar20(&cfg);
        assert_eq!(day.updates, batch.archive.update_count() as u64);

        // Reading the streamed bytes back gives the same per-session
        // streams the batch archive holds (collector names collapse to
        // one, but the generated universe keys sessions by peer).
        let mut source = MrtSource::new(&day.bytes[..], "rrc00", cfg.epoch_seconds);
        let parsed = UpdateArchive::from_source(&mut source, cfg.epoch_seconds).unwrap();
        assert_eq!(parsed.update_count(), batch.archive.update_count());
    }
}
