//! Minimal command-line argument parsing for the harness binaries.

/// Parsed common arguments: `--seed N`, `--scale F`, `--quick`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Args {
    /// RNG seed (default 42).
    pub seed: u64,
    /// Scale multiplier on default workload sizes (default 1.0).
    pub scale: f64,
    /// Quick mode: shrink workloads for smoke runs.
    pub quick: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args { seed: 42, scale: 1.0, quick: false }
    }
}

impl Args {
    /// Parses from an iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        out.seed = v;
                    }
                }
                "--scale" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        out.scale = v;
                    }
                }
                "--quick" => out.quick = true,
                _ => {}
            }
        }
        out
    }

    /// Parses from the process environment.
    pub fn from_env() -> Args {
        Self::parse(std::env::args().skip(1))
    }

    /// A workload size scaled by `--scale` (and `/10` under `--quick`).
    pub fn sized(&self, base: u64) -> u64 {
        let scaled = (base as f64 * self.scale) as u64;
        if self.quick {
            (scaled / 10).max(1)
        } else {
            scaled.max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a, Args::default());
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&["--seed", "7", "--scale", "0.5", "--quick"]);
        assert_eq!(a.seed, 7);
        assert!((a.scale - 0.5).abs() < 1e-12);
        assert!(a.quick);
    }

    #[test]
    fn ignores_unknown_and_bad_values() {
        let a = parse(&["--bogus", "--seed", "notanumber"]);
        assert_eq!(a.seed, 42);
    }

    #[test]
    fn sized_scaling() {
        let a = parse(&["--scale", "2"]);
        assert_eq!(a.sized(100), 200);
        let q = parse(&["--quick"]);
        assert_eq!(q.sized(100), 10);
        assert_eq!(q.sized(1), 1);
    }
}
