//! Scoring the CommunityWatch detector against the labeled fault library.
//!
//! [`kcc_bgp_sim::fault_library`] provides four scripted routing
//! incidents with ground-truth labels; this module replays each one
//! through [`kcc_core::watch::WatchSink`] and scores the outcome:
//! **pass** means the labeled alert kind fired and *no other kind did*
//! (zero false-positive kinds).
//!
//! Phase *k* of a scenario becomes detection window *k*: capture
//! timestamps are remapped onto a fixed [`EVAL_WINDOW_US`] grid
//! (`k * window + offset-within-phase`, clamped into the window), so
//! simulator quiescence and MRAI timing never leak into the detection
//! clock. The clean baseline phases train the [`CommunityProfiler`] —
//! exactly the "train on yesterday, detect on today" split the batch
//! detector uses — and double as the watch service's learning windows.

use std::sync::Arc;

use kcc_bgp_sim::scenario::{run, ScenarioOutcome};
use kcc_bgp_sim::{fault_library, FaultKind, FaultScenario};
use kcc_collector::{SessionKey, UpdateArchive};
use kcc_core::{
    run_pipeline, Alert, ArchiveSource, CommunityProfiler, WatchConfig, WatchReport, WatchSink,
};

/// The eval grid's window length: one scenario phase per window, roomy
/// enough that MRAI-delayed intra-phase events stay in their window.
pub const EVAL_WINDOW_US: u64 = 60_000_000;

/// How one fault scenario scored against the detector.
#[derive(Debug)]
pub struct EvalResult {
    /// Scenario name (`fault/…`).
    pub name: String,
    /// The injected — and therefore expected — fault.
    pub kind: FaultKind,
    /// The watch run's full report (alerts in canonical order).
    pub report: WatchReport,
    /// True iff the labeled kind fired and no other kind did.
    pub pass: bool,
}

impl EvalResult {
    /// Distinct alert-kind labels the run raised, in label order.
    pub fn detected_kinds(&self) -> Vec<&'static str> {
        self.report.kind_counts().into_iter().map(|(k, _)| k).collect()
    }

    /// One summary line: `PASS fault/prefix-hijack: prefix-hijack x1`.
    pub fn to_line(&self) -> String {
        let verdict = if self.pass { "PASS" } else { "FAIL" };
        let kinds: Vec<String> =
            self.report.kind_counts().into_iter().map(|(k, n)| format!("{k} x{n}")).collect();
        let detected = if kinds.is_empty() { "no alerts".to_owned() } else { kinds.join(", ") };
        format!("{verdict} {}: expected {}, got {detected}", self.name, self.kind.label())
    }
}

/// Converts a range of a scenario's phases into one analysis archive:
/// collector *i* (in [`FaultScenario::collectors`] order) becomes
/// `rrc0i`, sessions are keyed by the sending peer's AS and router IP
/// (the `adapter` convention), and each capture's timestamp is remapped
/// onto the eval window grid — phase *k* lands in window *k*.
pub fn phase_archive(
    outcome: &ScenarioOutcome,
    scenario: &FaultScenario,
    phases: std::ops::Range<usize>,
) -> UpdateArchive {
    let mut archive = UpdateArchive::new(0);
    for k in phases {
        let obs = &outcome.phases[k];
        let phase_start = obs.started.as_micros();
        for (i, collector) in scenario.collectors.iter().enumerate() {
            let name = format!("rrc{i:02}");
            let Some(entries) = obs.collected.get(collector) else { continue };
            for entry in entries {
                let peer_ip = outcome
                    .net
                    .router(entry.from)
                    .map(|r| r.ip)
                    .unwrap_or(std::net::IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED));
                let key = SessionKey::new(&name, entry.from.asn, peer_ip);
                let mut update = entry.to_route_update();
                let offset = update.time_us.saturating_sub(phase_start).min(EVAL_WINDOW_US - 1);
                update.time_us = (k as u64) * EVAL_WINDOW_US + offset;
                archive.record(&key, update);
            }
        }
    }
    archive
}

/// The watch configuration the eval (and the `kcc-watch --eval` gate)
/// runs with: the eval window grid, everything else at defaults.
pub fn eval_config() -> WatchConfig {
    WatchConfig { window_us: EVAL_WINDOW_US, ..WatchConfig::default() }
}

/// Runs one labeled scenario end to end: simulate, split
/// baseline/detection, train the profiler on the baseline, stream the
/// whole timeline through the watch sink, score the alert kinds.
pub fn eval_scenario(scenario: &FaultScenario) -> EvalResult {
    let outcome = run(&scenario.spec);
    let train = phase_archive(&outcome, scenario, 0..scenario.fault_phase);
    let full = phase_archive(&outcome, scenario, 0..scenario.spec.phases.len());

    let mut profiler = CommunityProfiler::new();
    profiler.train(&train);

    let sink = WatchSink::new(eval_config()).with_profile(Arc::new(profiler));
    let report = run_pipeline(ArchiveSource::new(&full), (), sink)
        .expect("archive sources cannot fail")
        .sink
        .finish();

    let detected: Vec<&'static str> = report.kind_counts().into_iter().map(|(k, _)| k).collect();
    let pass = detected == [scenario.kind.label()];
    EvalResult { name: scenario.spec.name.clone(), kind: scenario.kind, report, pass }
}

/// Scores the whole fault library, in library order.
pub fn eval_library() -> Vec<EvalResult> {
    fault_library().iter().map(eval_scenario).collect()
}

/// The alert lines of a report — the stable serialization the
/// determinism tests and the `--eval` output use.
pub fn alert_lines(report: &WatchReport) -> Vec<String> {
    report.alerts.iter().map(Alert::to_line).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_detects_every_fault_with_no_false_kinds() {
        let results = eval_library();
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(
                r.pass,
                "{}: expected exactly [{}], got {:?}\nalerts:\n{}",
                r.name,
                r.kind.label(),
                r.detected_kinds(),
                alert_lines(&r.report).join("\n"),
            );
            assert!(!r.report.alerts.is_empty());
        }
    }

    #[test]
    fn baseline_portion_alone_raises_no_alerts() {
        for scenario in &fault_library() {
            let outcome = run(&scenario.spec);
            let train = phase_archive(&outcome, scenario, 0..scenario.fault_phase);
            let mut profiler = CommunityProfiler::new();
            profiler.train(&train);
            let sink = WatchSink::new(eval_config()).with_profile(Arc::new(profiler));
            let report = run_pipeline(ArchiveSource::new(&train), (), sink)
                .expect("archive sources cannot fail")
                .sink
                .finish();
            assert!(
                report.alerts.is_empty(),
                "{}: clean baseline must be alert-free, got:\n{}",
                scenario.spec.name,
                alert_lines(&report).join("\n"),
            );
        }
    }

    #[test]
    fn eval_is_deterministic() {
        let a = eval_library();
        let b = eval_library();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(alert_lines(&x.report), alert_lines(&y.report), "{}", x.name);
            assert_eq!(x.to_line(), y.to_line());
        }
    }

    #[test]
    fn phase_archive_lands_each_phase_in_its_window() {
        let lib = fault_library();
        let scenario = &lib[0];
        let outcome = run(&scenario.spec);
        let full = phase_archive(&outcome, scenario, 0..scenario.spec.phases.len());
        assert!(full.update_count() > 0);
        for (_, rec) in full.sessions() {
            for u in &rec.updates {
                let w = u.time_us / EVAL_WINDOW_US;
                assert!((w as usize) < scenario.spec.phases.len());
            }
        }
        // The fault phase itself must have produced captures somewhere.
        let fault_window = scenario.fault_phase as u64;
        let in_fault_window = full
            .all_updates()
            .into_iter()
            .filter(|(_, u)| u.time_us / EVAL_WINDOW_US == fault_window)
            .count();
        assert!(in_fault_window > 0, "fault phase produced no captures");
    }
}
