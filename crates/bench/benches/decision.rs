//! BGP decision process micro-benchmark.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kcc_bgp_sim::decision::best;
use kcc_bgp_sim::route::RibEntry;
use kcc_bgp_sim::session::SessionId;
use kcc_bgp_types::{Asn, PathAttributes};
use kcc_topology::{IgpMap, RouteSource, RouterId};

fn candidates(n: usize) -> Vec<RibEntry> {
    (0..n)
        .map(|i| RibEntry {
            attrs: std::sync::Arc::new(PathAttributes {
                as_path: format!("{} 3356 12654", 20_000 + i).parse().unwrap(),
                local_pref: Some(100 + (i % 3) as u32 * 100),
                med: Some((i % 7) as u32),
                ..Default::default()
            }),
            source: RouteSource::Peer,
            from_session: Some(SessionId(i)),
            egress: RouterId { asn: Asn(100), index: (i % 4) as u16 },
        })
        .collect()
}

fn bench_decision(c: &mut Criterion) {
    let me = RouterId { asn: Asn(100), index: 0 };
    let igp = IgpMap::ring(4);
    let mut group = c.benchmark_group("decision");
    for n in [2usize, 8, 32] {
        let cands = candidates(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("best_of_{n}"), |b| {
            b.iter(|| best(std::hint::black_box(&cands).iter(), me, &igp))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decision);
criterion_main!(benches);
