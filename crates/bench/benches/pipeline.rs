//! Streaming-pipeline throughput: classify updates/sec from MRT bytes at
//! 10k / 100k / 1M announcements, with batch-vs-streaming comparison.
//!
//! The batch comparison stops at 100k — at 1M the materialized archive is
//! exactly the memory footprint the streaming redesign exists to avoid
//! (the `stream-scale` CI job pins that with a hard address-space cap).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kcc_bench::mrt_day;
use kcc_collector::UpdateArchive;
use kcc_core::{classify_archive, run_pipeline, CountsSink, MrtSource};
use kcc_tracegen::Mar20Config;

fn stream_counts(bytes: &[u8], epoch: u32) -> kcc_core::TypeCounts {
    let source = MrtSource::new(bytes, "rrc00", epoch);
    run_pipeline(source, (), CountsSink::default())
        .expect("in-memory MRT cannot fail")
        .sink
        .finish()
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");

    for &(label, target, samples, with_batch) in &[
        ("10k", 10_000u64, 20usize, true),
        ("100k", 100_000, 10, true),
        ("1M", 1_000_000, 2, false),
    ] {
        let cfg = Mar20Config { target_announcements: target, ..Default::default() };
        let (bytes, updates) = mrt_day(&cfg);
        group.throughput(Throughput::Elements(updates));
        group.sample_size(samples);
        group.bench_function(format!("streaming_classify_{label}"), |b| {
            b.iter(|| stream_counts(std::hint::black_box(&bytes), cfg.epoch_seconds))
        });
        if with_batch {
            let mut source = MrtSource::new(&bytes[..], "rrc00", cfg.epoch_seconds);
            let archive = UpdateArchive::from_source(&mut source, cfg.epoch_seconds)
                .expect("in-memory MRT cannot fail");
            group.bench_function(format!("batch_classify_{label}"), |b| {
                b.iter(|| classify_archive(std::hint::black_box(&archive)).counts)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
