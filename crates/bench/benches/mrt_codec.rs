//! MRT archive read/write throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kcc_bgp_types::{Community, PathAttributes, RouteUpdate};
use kcc_collector::{SessionKey, UpdateArchive};
use kcc_mrt::MrtReader;

fn sample_archive(n: usize) -> UpdateArchive {
    let mut archive = UpdateArchive::new(1_584_230_400);
    let key = SessionKey::new("rrc00", kcc_bgp_types::Asn(20_205), "192.0.2.9".parse().unwrap());
    for i in 0..n {
        let mut attrs = PathAttributes {
            as_path: "20205 3356 174 12654".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        attrs.communities.insert(Community::from_parts(3356, 2500 + (i % 100) as u16));
        archive.record(
            &key,
            RouteUpdate::announce(i as u64 * 1_000, "84.205.64.0/24".parse().unwrap(), attrs),
        );
    }
    archive
}

fn bench_mrt(c: &mut Criterion) {
    const N: usize = 2_000;
    let archive = sample_archive(N);
    let mut raw = Vec::new();
    archive.write_mrt(&mut raw).unwrap();

    let mut group = c.benchmark_group("mrt_codec");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("write_2k_records", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(raw.len());
            archive.write_mrt(&mut buf).unwrap();
            buf
        })
    });
    group.bench_function("read_2k_records", |b| {
        b.iter(|| {
            let reader = MrtReader::new(&raw[..]);
            reader.map(|r| r.expect("valid record")).fold(0usize, |n, _| n + 1)
        })
    });
    group.bench_function("archive_roundtrip_2k", |b| {
        b.iter(|| UpdateArchive::read_mrt(&raw[..], "rrc00", 1_584_230_400).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_mrt);
criterion_main!(benches);
