//! RFC 4271 codec throughput: UPDATE encode and decode.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kcc_bgp_types::{Community, LargeCommunity, PathAttributes};
use kcc_bgp_wire::{decode_message, encode_message, Message, SessionConfig, UpdatePacket};

fn sample_update() -> Message {
    let mut attrs = PathAttributes {
        as_path: "20205 3356 174 12654".parse().unwrap(),
        next_hop: "192.0.2.1".parse().unwrap(),
        med: Some(100),
        ..Default::default()
    };
    for v in 0..8u16 {
        attrs.communities.insert(Community::from_parts(3356, 2500 + v));
    }
    attrs.communities.insert_large(LargeCommunity::new(206_924, 1, 44));
    Message::Update(UpdatePacket::announce("84.205.64.0/24".parse().unwrap(), attrs))
}

fn bench_wire(c: &mut Criterion) {
    let cfg = SessionConfig::default();
    let msg = sample_update();
    let mut encoded = BytesMut::new();
    encode_message(&msg, &cfg, &mut encoded);
    let encoded = encoded.freeze();

    let mut group = c.benchmark_group("wire_codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_update", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(256);
            encode_message(std::hint::black_box(&msg), &cfg, &mut buf);
            buf
        })
    });
    group.bench_function("decode_update", |b| {
        b.iter(|| {
            let mut cursor = encoded.clone();
            decode_message(&mut cursor, &cfg).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
