//! Announcement-type classifier throughput over a generated archive.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kcc_core::{classify_archive, clean_archive, CleaningConfig};
use kcc_tracegen::{generate_mar20, Mar20Config};

fn bench_classifier(c: &mut Criterion) {
    let cfg = Mar20Config { target_announcements: 50_000, ..Default::default() };
    let out = generate_mar20(&cfg);
    let mut cleaned = out.archive.clone();
    clean_archive(&mut cleaned, &out.registry, &CleaningConfig::default());
    let n = cleaned.update_count() as u64;

    let mut group = c.benchmark_group("classifier");
    group.throughput(Throughput::Elements(n));
    group.sample_size(20);
    group.bench_function("classify_50k_updates", |b| {
        b.iter(|| classify_archive(std::hint::black_box(&cleaned)))
    });
    group.bench_function("clean_50k_updates", |b| {
        b.iter(|| {
            let mut archive = out.archive.clone();
            clean_archive(&mut archive, &out.registry, &CleaningConfig::default())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_classifier);
criterion_main!(benches);
