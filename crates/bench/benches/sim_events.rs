//! Simulator event throughput: lab convergence and topology convergence.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kcc_bgp_sim::lab::{run_experiment, LabExperiment};
use kcc_bgp_sim::{Network, SimConfig, SimTime, VendorProfile};
use kcc_topology::{generate, TopologyConfig};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_events");
    group.sample_size(20);
    group.bench_function("lab_exp2_full_run", |b| {
        b.iter(|| run_experiment(LabExperiment::Exp2, VendorProfile::CISCO_IOS))
    });

    let topo =
        generate(&TopologyConfig { n_tier1: 3, n_transit: 8, n_stub: 16, ..Default::default() });
    // Measure events processed during a full convergence for throughput.
    let mut probe = Network::from_topology(&topo, SimConfig::default());
    probe.announce_all_origins(&topo, SimTime::ZERO);
    probe.run_until_quiet();
    group.throughput(Throughput::Elements(probe.stats.events_processed));
    group.bench_function("converge_27_as_topology", |b| {
        b.iter(|| {
            let mut net = Network::from_topology(&topo, SimConfig::default());
            net.announce_all_origins(&topo, SimTime::ZERO);
            net.run_until_quiet();
            net.stats.events_processed
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
