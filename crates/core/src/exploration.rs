//! Community exploration detection (paper §6, Fig. 4).
//!
//! "Analogously to path exploration, we refer to this behavior as
//! *community exploration*: instead of multiple paths being announced,
//! multiple communities for a single path are announced." The detector
//! finds, per `(session, prefix)` stream and per withdrawal phase, the
//! bursts of `nc` announcements and decodes the geo locations their
//! changing communities reveal.

use std::collections::BTreeMap;

use kcc_bgp_types::geo::{decode_geo, GeoScope};
use kcc_bgp_types::Prefix;
use kcc_collector::{BeaconPhase, BeaconSchedule, SessionKey};

use crate::beacon_phase::DAY_US;
use crate::classify::AnnouncementType;
use crate::pipeline::{feed_classified, AnalysisSink, Merge};
use crate::stream::{ClassifiedArchive, ClassifiedEvent, EventKind};

/// One detected community-exploration episode: a withdrawal phase of one
/// `(session, prefix)` stream containing `nc` traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationEvent {
    /// The session.
    pub session: SessionKey,
    /// The beacon prefix.
    pub prefix: Prefix,
    /// Day index (0-based) and withdrawal phase index within the day.
    pub day: u32,
    /// Withdrawal phase index (0–5 for the RIS schedule).
    pub phase: u8,
    /// Announcements of each type inside the phase.
    pub pc_count: u32,
    /// `nc` announcements inside the phase.
    pub nc_count: u32,
    /// `nn` announcements inside the phase.
    pub nn_count: u32,
    /// Distinct geo locations decoded from the phase's community
    /// attributes, as `(tagging ASN high half, scope, id)`.
    pub locations: Vec<(u16, GeoScope, u16)>,
}

impl ExplorationEvent {
    /// True if this phase shows community exploration (more than one
    /// distinct location revealed, with nc traffic).
    pub fn is_exploration(&self) -> bool {
        self.nc_count > 0 && self.locations.len() > 1
    }
}

/// Detects community-exploration episodes incrementally from classified
/// events. State is one counter set per *active episode* — bounded by
/// beacon streams × phases, not by update volume.
#[derive(Debug, Clone)]
pub struct ExplorationSink {
    schedule: BeaconSchedule,
    beacon_prefixes: Vec<Prefix>,
    episodes: BTreeMap<(SessionKey, Prefix, u32, u8), ExplorationEvent>,
}

impl ExplorationSink {
    /// A detector over `schedule` for the given beacon prefixes.
    pub fn new(schedule: BeaconSchedule, beacon_prefixes: &[Prefix]) -> Self {
        ExplorationSink {
            schedule,
            beacon_prefixes: beacon_prefixes.to_vec(),
            episodes: BTreeMap::new(),
        }
    }

    /// The detected episodes, in canonical (session, prefix, day, phase)
    /// order.
    pub fn finish(self) -> Vec<ExplorationEvent> {
        self.episodes.into_values().collect()
    }
}

impl AnalysisSink for ExplorationSink {
    fn on_event(&mut self, key: &SessionKey, e: &ClassifiedEvent) {
        if !self.beacon_prefixes.contains(&e.prefix) {
            return;
        }
        let day = (e.time_us / DAY_US) as u32;
        let BeaconPhase::Withdrawal(phase) = self.schedule.phase_of(e.time_us % DAY_US) else {
            return;
        };
        let EventKind::Classified { atype, .. } = &e.kind else {
            return;
        };
        let episode =
            self.episodes.entry((key.clone(), e.prefix, day, phase)).or_insert_with(|| {
                ExplorationEvent {
                    session: key.clone(),
                    prefix: e.prefix,
                    day,
                    phase,
                    pc_count: 0,
                    nc_count: 0,
                    nn_count: 0,
                    locations: Vec::new(),
                }
            });
        match atype {
            AnnouncementType::Pc | AnnouncementType::Xc => episode.pc_count += 1,
            AnnouncementType::Nc => episode.nc_count += 1,
            AnnouncementType::Nn => episode.nn_count += 1,
            _ => {}
        }
        if let Some(attrs) = &e.attrs {
            for c in attrs.communities.iter_classic() {
                if let Some((scope, id)) = decode_geo(*c) {
                    let loc = (c.asn_part(), scope, id);
                    if !episode.locations.contains(&loc) {
                        episode.locations.push(loc);
                    }
                }
            }
        }
    }
}

impl Merge for ExplorationSink {
    fn merge(&mut self, other: Self) {
        // Episode keys start with the session, and sessions are disjoint
        // across shards.
        self.episodes.extend(other.episodes);
    }
}

/// Scans a classified archive for exploration episodes on the given
/// beacon prefixes — the batch wrapper over [`ExplorationSink`].
pub fn detect(
    classified: &ClassifiedArchive,
    schedule: &BeaconSchedule,
    beacon_prefixes: &[Prefix],
) -> Vec<ExplorationEvent> {
    let mut sink = ExplorationSink::new(*schedule, beacon_prefixes);
    feed_classified(classified, &mut sink);
    sink.finish()
}

/// Summary over all episodes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExplorationSummary {
    /// Episodes with any classified announcement in a withdrawal phase.
    pub episodes: u64,
    /// Episodes qualifying as community exploration.
    pub exploration_episodes: u64,
    /// Total `nc` announcements inside withdrawal phases.
    pub total_nc: u64,
    /// Total distinct locations revealed (summed per episode).
    pub total_locations: u64,
}

/// Summarizes detected episodes.
pub fn summarize(events: &[ExplorationEvent]) -> ExplorationSummary {
    let mut s = ExplorationSummary { episodes: events.len() as u64, ..Default::default() };
    for e in events {
        if e.is_exploration() {
            s.exploration_episodes += 1;
        }
        s.total_nc += e.nc_count as u64;
        s.total_locations += e.locations.len() as u64;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::classify_session;
    use kcc_bgp_types::{Asn, GeoTag, PathAttributes, RouteUpdate};
    use kcc_collector::UpdateArchive;

    const HOUR_US: u64 = 3600 * 1_000_000;

    /// Builds the Fig. 4 situation: during the 02:00 withdrawal phase, a
    /// pc announcement followed by nc announcements with rotating geo
    /// communities from AS3356.
    fn fig4_archive() -> (UpdateArchive, Prefix, SessionKey) {
        let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
        let k = SessionKey::new("rrc00", Asn(20_205), "10.0.0.1".parse().unwrap());
        let mut a = UpdateArchive::new(0);

        let base = |city: u16| {
            let mut attrs = PathAttributes {
                as_path: "20205 3356 174 12654".parse().unwrap(),
                ..Default::default()
            };
            GeoTag::new(4, 10, city).tag(3356, &mut attrs.communities);
            attrs
        };
        // Steady state at 01:00 via the all-time best path.
        let best = PathAttributes {
            as_path: "20205 6939 50304 12654".parse().unwrap(),
            ..Default::default()
        };
        a.record(&k, RouteUpdate::announce(HOUR_US, prefix, best));
        // Withdrawal phase 02:00–02:15: path exploration reveals the
        // alternative path with three different ingress cities.
        let t0 = 2 * HOUR_US;
        a.record(&k, RouteUpdate::announce(t0 + 60_000_000, prefix, base(100))); // pc
        a.record(&k, RouteUpdate::announce(t0 + 120_000_000, prefix, base(101))); // nc
        a.record(&k, RouteUpdate::announce(t0 + 180_000_000, prefix, base(102))); // nc
        a.record(&k, RouteUpdate::withdraw(t0 + 240_000_000, prefix));
        (a, prefix, k)
    }

    #[test]
    fn detects_fig4_exploration() {
        let (a, prefix, k) = fig4_archive();
        let mut classified = ClassifiedArchive::default();
        let events = classify_session(&a.session(&k).unwrap().updates);
        classified.per_session.insert(k.clone(), events);

        let episodes = detect(&classified, &BeaconSchedule::default(), &[prefix]);
        assert_eq!(episodes.len(), 1);
        let e = &episodes[0];
        assert_eq!(e.phase, 0);
        assert_eq!(e.pc_count, 1);
        assert_eq!(e.nc_count, 2);
        assert!(e.is_exploration());
        // 3 cities + 1 country + 1 continent from AS3356.
        let cities: Vec<_> = e.locations.iter().filter(|(_, s, _)| *s == GeoScope::City).collect();
        assert_eq!(cities.len(), 3);
        assert!(e.locations.iter().all(|(asn, _, _)| *asn == 3356));
    }

    #[test]
    fn quiet_streams_produce_no_episodes() {
        let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
        let k = SessionKey::new("rrc00", Asn(1), "10.0.0.1".parse().unwrap());
        let mut a = UpdateArchive::new(0);
        // Single announcement at 01:00, outside any withdrawal phase.
        a.record(&k, RouteUpdate::announce(HOUR_US, prefix, PathAttributes::default()));
        let mut classified = ClassifiedArchive::default();
        classified.per_session.insert(k.clone(), classify_session(&a.session(&k).unwrap().updates));
        let episodes = detect(&classified, &BeaconSchedule::default(), &[prefix]);
        assert!(episodes.is_empty());
    }

    #[test]
    fn summary_aggregates() {
        let (a, prefix, k) = fig4_archive();
        let mut classified = ClassifiedArchive::default();
        classified.per_session.insert(k.clone(), classify_session(&a.session(&k).unwrap().updates));
        let episodes = detect(&classified, &BeaconSchedule::default(), &[prefix]);
        let s = summarize(&episodes);
        assert_eq!(s.episodes, 1);
        assert_eq!(s.exploration_episodes, 1);
        assert_eq!(s.total_nc, 2);
        assert_eq!(s.total_locations, 5);
    }
}
