//! Interconnection inference (the paper's §7 information-leak finding).
//!
//! "The updates we observe often allow us to remotely infer the number of
//! interconnections between two ASes and the location where they peer."
//!
//! Mechanism: when AS `T` geo-tags at ingress, a route `… X T …` carries
//! the city where `X`'s traffic enters `T`. Observing several distinct
//! `T`-owned city tags on `X T`-adjacent routes over time reveals that
//! `X` and `T` interconnect at (at least) that many places — and names
//! them.

use std::collections::{BTreeMap, BTreeSet};

use kcc_bgp_types::geo::{decode_geo, GeoScope};
use kcc_bgp_types::{Asn, MessageKind, RouteUpdate};
use kcc_collector::{ArchiveSource, SessionKey, UpdateArchive};

use crate::pipeline::{run_pipeline, AnalysisSink, Merge};

/// What was learned about one ordered AS adjacency `(customer side,
/// tagger side)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterconnectEstimate {
    /// Distinct city ids revealed by the tagger's communities.
    pub cities: BTreeSet<u16>,
    /// Distinct country ids revealed.
    pub countries: BTreeSet<u16>,
    /// Announcements contributing evidence.
    pub samples: u64,
}

impl InterconnectEstimate {
    /// The inferred lower bound on interconnection count: distinct
    /// ingress cities observed.
    pub fn min_interconnections(&self) -> usize {
        self.cities.len().max(usize::from(self.samples > 0))
    }
}

/// Collects revealed interconnection locations incrementally. State is
/// one estimate per observed `(neighbor, tagger)` adjacency — bounded by
/// the AS graph, not update volume.
#[derive(Debug, Clone, Default)]
pub struct InterconnectSink {
    out: BTreeMap<(Asn, Asn), InterconnectEstimate>,
}

impl InterconnectSink {
    /// The accumulated estimates.
    pub fn finish(self) -> BTreeMap<(Asn, Asn), InterconnectEstimate> {
        self.out
    }
}

impl AnalysisSink for InterconnectSink {
    fn on_update(&mut self, _session: &SessionKey, u: &RouteUpdate) {
        let MessageKind::Announcement(attrs) = &u.kind else { return };
        let path: Vec<Asn> = attrs.as_path.asns().collect();
        for w in path.windows(2) {
            let (neighbor, tagger) = (w[0], w[1]);
            if neighbor == tagger || !tagger.is_16bit() {
                continue;
            }
            let tagger16 = tagger.value() as u16;
            let mut touched = false;
            let mut entry_cities: Vec<u16> = Vec::new();
            let mut entry_countries: Vec<u16> = Vec::new();
            for c in attrs.communities.iter_classic() {
                if c.asn_part() != tagger16 {
                    continue;
                }
                match decode_geo(*c) {
                    Some((GeoScope::City, id)) => {
                        entry_cities.push(id);
                        touched = true;
                    }
                    Some((GeoScope::Country, id)) => {
                        entry_countries.push(id);
                        touched = true;
                    }
                    _ => {}
                }
            }
            if touched {
                let e = self.out.entry((neighbor, tagger)).or_default();
                e.cities.extend(entry_cities);
                e.countries.extend(entry_countries);
                e.samples += 1;
            }
        }
    }

    fn wants_events(&self) -> bool {
        false
    }
}

impl Merge for InterconnectSink {
    fn merge(&mut self, other: Self) {
        for (pair, est) in other.out {
            let e = self.out.entry(pair).or_default();
            e.cities.extend(est.cities);
            e.countries.extend(est.countries);
            e.samples += est.samples;
        }
    }
}

/// Scans an archive for tagger adjacencies and collects the locations
/// revealed per `(neighbor, tagger)` pair — the batch wrapper over
/// [`InterconnectSink`].
pub fn infer_interconnections(
    archive: &UpdateArchive,
) -> BTreeMap<(Asn, Asn), InterconnectEstimate> {
    run_pipeline(ArchiveSource::new(archive), (), InterconnectSink::default())
        .expect("archive sources cannot fail")
        .sink
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{GeoTag, PathAttributes, Prefix, RouteUpdate};
    use kcc_collector::SessionKey;

    fn announce(path: &str, tagger: u16, city: u16) -> RouteUpdate {
        let mut attrs = PathAttributes { as_path: path.parse().unwrap(), ..Default::default() };
        GeoTag::new(4, (city / 8) % 400, city).tag(tagger, &mut attrs.communities);
        RouteUpdate::announce(1, "84.205.64.0/24".parse::<Prefix>().unwrap(), attrs)
    }

    #[test]
    fn distinct_cities_reveal_parallel_links() {
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new("rrc00", Asn(100), "10.0.0.1".parse().unwrap());
        // AS100 enters AS3356 at three different cities over the day.
        for city in [80u16, 160, 240] {
            a.record(&k, announce("100 3356 900", 3356, city));
        }
        // And a second sample of one of them.
        a.record(&k, announce("100 3356 900", 3356, 80));
        let inferred = infer_interconnections(&a);
        let e = &inferred[&(Asn(100), Asn(3356))];
        assert_eq!(e.min_interconnections(), 3);
        assert_eq!(e.samples, 4);
        assert!(e.cities.contains(&80) && e.cities.contains(&240));
    }

    #[test]
    fn adjacency_is_directional_and_specific() {
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new("rrc00", Asn(100), "10.0.0.1".parse().unwrap());
        a.record(&k, announce("100 3356 900", 3356, 80));
        let inferred = infer_interconnections(&a);
        // (100, 3356) is known; (3356, 900) carries no 900-owned tags.
        assert!(inferred.contains_key(&(Asn(100), Asn(3356))));
        assert!(!inferred.contains_key(&(Asn(3356), Asn(900))));
        assert!(!inferred.contains_key(&(Asn(3356), Asn(100))));
    }

    #[test]
    fn non_geo_communities_reveal_nothing() {
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new("rrc00", Asn(100), "10.0.0.1".parse().unwrap());
        let mut attrs =
            PathAttributes { as_path: "100 3356 900".parse().unwrap(), ..Default::default() };
        attrs.communities.insert(kcc_bgp_types::Community::from_parts(3356, 70)); // not geo
        a.record(&k, RouteUpdate::announce(1, "84.205.64.0/24".parse::<Prefix>().unwrap(), attrs));
        assert!(infer_interconnections(&a).is_empty());
    }

    #[test]
    fn prepended_paths_do_not_self_pair() {
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new("rrc00", Asn(100), "10.0.0.1".parse().unwrap());
        a.record(&k, announce("100 100 3356 900", 3356, 80));
        let inferred = infer_interconnections(&a);
        assert!(!inferred.contains_key(&(Asn(100), Asn(100))));
        assert!(inferred.contains_key(&(Asn(100), Asn(3356))));
    }
}
