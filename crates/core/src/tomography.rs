//! Per-AS community behavior inference (the paper's §7 future work).
//!
//! "From observing updates and lack of updates at multiple points in the
//! network, we can make rough guesses as to the way different ASes handle
//! communities. Using more sophisticated network tomography techniques,
//! we plan to classify per-AS community behavior, for instance those that
//! tag, filter, and ignore."
//!
//! This module implements that classification from nothing but observed
//! update streams:
//!
//! * **Taggers** announce many distinct community values under their own
//!   16-bit namespace on routes that traverse them, mostly geo-decodable
//!   and varying over time.
//! * **Filters (cleaners)** sit between a known tagger and the collector
//!   on paths whose announcements are missing the tagger's communities.
//!   Since any AS between the tagger and the collector could have
//!   cleaned, blame is apportioned fractionally (noisy-OR style) and
//!   accumulated over many streams; an AS consistently on community-less
//!   tagged paths converges to a high filter score.
//! * **Propagators (ignore)** appear between a tagger and the collector
//!   on paths where the tagger's communities *are* present — direct
//!   evidence of pass-through.

use std::collections::{BTreeMap, HashSet};

use kcc_bgp_types::geo::decode_geo;
use kcc_bgp_types::{Asn, Community, MessageKind, RouteUpdate};
use kcc_collector::{ArchiveSource, SessionKey, UpdateArchive};

use crate::pipeline::{run_pipeline, AnalysisSink, Merge};

/// Accumulated per-AS evidence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BehaviorEvidence {
    /// Distinct community values seen under this AS's namespace.
    pub own_values: HashSet<u16>,
    /// How many of those are geo-decodable.
    pub own_geo_values: u64,
    /// Announcements where an upstream tagger's communities passed
    /// through this AS.
    pub passed: f64,
    /// Fractional blame for announcements where an upstream tagger's
    /// communities were missing.
    pub cleaned_blame: f64,
    /// Announcements in which this AS sat between a tagger and the
    /// collector (the denominator for both scores).
    pub samples: f64,
}

/// The three classes the paper names, plus the undecidable remainder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferredClass {
    /// Adds (geo) communities under its own namespace.
    Tagger,
    /// Removes communities in transit.
    Filter,
    /// Passes communities through untouched.
    Propagator,
    /// Not enough evidence.
    Unknown,
}

/// Inference result for one AS.
#[derive(Debug, Clone, PartialEq)]
pub struct InferredBehavior {
    /// The AS.
    pub asn: Asn,
    /// Raw evidence.
    pub evidence: BehaviorEvidence,
    /// Classification.
    pub class: InferredClass,
    /// Filter score in `[0, 1]`: blame per traversal sample.
    pub filter_score: f64,
    /// Propagation score in `[0, 1]`.
    pub propagate_score: f64,
}

/// Inference tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TomographyConfig {
    /// Minimum distinct own-namespace values to call an AS a tagger.
    pub min_tagger_values: usize,
    /// Minimum traversal samples before classifying filter/propagator.
    pub min_samples: f64,
    /// Filter score above which an AS is a filter.
    pub filter_threshold: f64,
    /// Propagation score above which an AS is a propagator.
    pub propagate_threshold: f64,
}

impl Default for TomographyConfig {
    fn default() -> Self {
        TomographyConfig {
            // A single geo tag already contributes three values (city,
            // country, continent); demand evidence of at least two
            // distinct locations.
            min_tagger_values: 5,
            min_samples: 5.0,
            filter_threshold: 0.7,
            propagate_threshold: 0.5,
        }
    }
}

/// Traversal evidence conditional on one *candidate* tagger: integer
/// counters so merging shard partials is exact (no float-order drift).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct PairEvidence {
    /// Announcements where the candidate was upstream of this AS.
    samples: u64,
    /// ... and the candidate's communities were present.
    passed: u64,
    /// Blame events keyed by the between-set size `k` (each worth `1/k`).
    blame: BTreeMap<u32, u64>,
}

impl PairEvidence {
    fn merge(&mut self, other: &PairEvidence) {
        self.samples += other.samples;
        self.passed += other.passed;
        for (&k, &n) in &other.blame {
            *self.blame.entry(k).or_insert(0) += n;
        }
    }

    fn blame_sum(&self) -> f64 {
        // Ascending-k iteration keeps the float summation order
        // deterministic across runs and shard counts.
        self.blame.iter().map(|(&k, &n)| n as f64 / k as f64).sum()
    }
}

/// Single-pass behavior inference. The batch version needed two passes
/// (find taggers, then attribute traversals to them); the sink instead
/// accumulates traversal evidence *conditionally on every candidate
/// tagger* — a `(candidate, between-AS)`-keyed table bounded by AS
/// adjacency, not update volume — and resolves which candidates really
/// are taggers at [`TomographySink::finish`].
#[derive(Debug, Clone)]
pub struct TomographySink {
    cfg: TomographyConfig,
    own_values: BTreeMap<u16, HashSet<u16>>,
    pairs: BTreeMap<(u16, u16), PairEvidence>,
}

impl TomographySink {
    /// An inference sink with the given thresholds.
    pub fn new(cfg: TomographyConfig) -> Self {
        TomographySink { cfg, own_values: BTreeMap::new(), pairs: BTreeMap::new() }
    }

    /// Resolves taggers and folds the conditional evidence into the
    /// final per-AS classification.
    pub fn finish(self) -> BTreeMap<Asn, InferredBehavior> {
        let taggers: HashSet<u16> = self
            .own_values
            .iter()
            .filter(|(_, values)| values.len() >= self.cfg.min_tagger_values)
            .map(|(&asn, _)| asn)
            .collect();

        let mut evidence: BTreeMap<u16, BehaviorEvidence> = BTreeMap::new();
        for (owner, values) in self.own_values {
            let e = evidence.entry(owner).or_default();
            e.own_geo_values = values
                .iter()
                .filter(|&&v| decode_geo(Community::from_parts(owner, v)).is_some())
                .count() as u64;
            e.own_values = values;
        }
        for ((tagger, between), pair) in &self.pairs {
            if !taggers.contains(tagger) {
                continue;
            }
            let e = evidence.entry(*between).or_default();
            e.samples += pair.samples as f64;
            e.passed += pair.passed as f64;
            e.cleaned_blame += pair.blame_sum();
        }

        evidence
            .into_iter()
            .map(|(asn16, e)| {
                let filter_score = if e.samples > 0.0 { e.cleaned_blame / e.samples } else { 0.0 };
                let propagate_score = if e.samples > 0.0 { e.passed / e.samples } else { 0.0 };
                let is_tagger = e.own_values.len() >= self.cfg.min_tagger_values;
                let class = if is_tagger {
                    InferredClass::Tagger
                } else if e.samples >= self.cfg.min_samples
                    && filter_score >= self.cfg.filter_threshold
                {
                    InferredClass::Filter
                } else if e.samples >= self.cfg.min_samples
                    && propagate_score >= self.cfg.propagate_threshold
                {
                    InferredClass::Propagator
                } else {
                    InferredClass::Unknown
                };
                (
                    Asn(asn16 as u32),
                    InferredBehavior {
                        asn: Asn(asn16 as u32),
                        evidence: e,
                        class,
                        filter_score,
                        propagate_score,
                    },
                )
            })
            .collect()
    }
}

impl AnalysisSink for TomographySink {
    fn on_update(&mut self, _session: &SessionKey, u: &RouteUpdate) {
        let MessageKind::Announcement(attrs) = &u.kind else { return };
        let path: Vec<u16> =
            attrs.as_path.asns().filter(|a| a.is_16bit()).map(|a| a.value() as u16).collect();
        let on_path: HashSet<u16> = path.iter().copied().collect();

        // Own-namespace evidence: only communities plausibly *added by an
        // on-path AS* count toward taggerhood.
        for c in attrs.communities.iter_classic() {
            let owner = c.asn_part();
            if on_path.contains(&owner) {
                self.own_values.entry(owner).or_default().insert(c.value_part());
            }
        }

        // Conditional traversal evidence for every candidate tagger on
        // the path: the ASes strictly between the candidate and the
        // collector either passed its communities or share the blame for
        // their absence (resolved at finish once taggers are known).
        // The deduped peer-side prefix grows incrementally and community
        // owners are set-indexed once, keeping this hot loop O(path).
        let owners: HashSet<u16> = attrs.communities.iter_classic().map(|c| c.asn_part()).collect();
        let mut seen: HashSet<u16> = HashSet::new();
        let mut uniq: Vec<u16> = Vec::new();
        for (i, &t) in path.iter().enumerate() {
            if i > 0 {
                // `uniq` now holds path[..i] deduped, nearest first.
                let t_present = owners.contains(&t);
                let k = uniq.len() as u32;
                for &a in &uniq {
                    let pair = self.pairs.entry((t, a)).or_default();
                    pair.samples += 1;
                    if t_present {
                        pair.passed += 1;
                    } else {
                        *pair.blame.entry(k).or_insert(0) += 1;
                    }
                }
            }
            if seen.insert(t) {
                uniq.push(t);
            }
        }
    }

    fn wants_events(&self) -> bool {
        false
    }
}

impl Merge for TomographySink {
    fn merge(&mut self, other: Self) {
        for (owner, values) in other.own_values {
            self.own_values.entry(owner).or_default().extend(values);
        }
        for (key, pair) in other.pairs {
            self.pairs.entry(key).or_default().merge(&pair);
        }
    }
}

/// Runs the full inference over an archive — the batch wrapper over
/// [`TomographySink`].
pub fn infer_behaviors(
    archive: &UpdateArchive,
    cfg: &TomographyConfig,
) -> BTreeMap<Asn, InferredBehavior> {
    run_pipeline(ArchiveSource::new(archive), (), TomographySink::new(*cfg))
        .expect("archive sources cannot fail")
        .sink
        .finish()
}

/// Convenience view: the ASes inferred per class.
pub fn classify_ases(inferred: &BTreeMap<Asn, InferredBehavior>) -> (Vec<Asn>, Vec<Asn>, Vec<Asn>) {
    let mut taggers = Vec::new();
    let mut filters = Vec::new();
    let mut propagators = Vec::new();
    for (asn, b) in inferred {
        match b.class {
            InferredClass::Tagger => taggers.push(*asn),
            InferredClass::Filter => filters.push(*asn),
            InferredClass::Propagator => propagators.push(*asn),
            InferredClass::Unknown => {}
        }
    }
    (taggers, filters, propagators)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{GeoTag, PathAttributes, Prefix, RouteUpdate};
    use kcc_collector::SessionKey;

    fn announce(path: &str, tagger: Option<(u16, u16)>) -> RouteUpdate {
        let mut attrs = PathAttributes { as_path: path.parse().unwrap(), ..Default::default() };
        if let Some((asn, city)) = tagger {
            GeoTag::new(4, 10, city).tag(asn, &mut attrs.communities);
        }
        let p: Prefix = "84.205.64.0/24".parse().unwrap();
        RouteUpdate::announce(1, p, attrs)
    }

    /// Peer 100 propagates AS200's tags; peer 300 strips them.
    fn build_archive() -> UpdateArchive {
        let mut a = UpdateArchive::new(0);
        let k1 = SessionKey::new("rrc00", Asn(100), "10.0.0.1".parse().unwrap());
        let k2 = SessionKey::new("rrc00", Asn(300), "10.0.0.2".parse().unwrap());
        for city in 0..8u16 {
            a.record(&k1, announce("100 200 900", Some((200, city))));
            a.record(&k2, announce("300 200 900", None));
        }
        a
    }

    #[test]
    fn tagger_detected() {
        let inferred = infer_behaviors(&build_archive(), &TomographyConfig::default());
        assert_eq!(inferred[&Asn(200)].class, InferredClass::Tagger);
        assert!(inferred[&Asn(200)].evidence.own_values.len() >= 8);
    }

    #[test]
    fn propagator_and_filter_separated() {
        let inferred = infer_behaviors(&build_archive(), &TomographyConfig::default());
        assert_eq!(inferred[&Asn(100)].class, InferredClass::Propagator);
        assert!(inferred[&Asn(100)].propagate_score > 0.9);
        assert_eq!(inferred[&Asn(300)].class, InferredClass::Filter);
        assert!(inferred[&Asn(300)].filter_score > 0.9);
    }

    #[test]
    fn blame_is_shared_between_candidates() {
        // Two ASes between the tagger and the collector: each gets half
        // the blame, neither crosses the 0.7 filter threshold.
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new("rrc00", Asn(100), "10.0.0.1".parse().unwrap());
        for city in 0..8u16 {
            a.record(&k, announce("100 150 200 900", Some((200, city))));
        }
        for _ in 0..8 {
            a.record(&k, announce("100 150 200 900", None));
        }
        let inferred = infer_behaviors(&a, &TomographyConfig::default());
        let f100 = inferred[&Asn(100)].filter_score;
        let f150 = inferred[&Asn(150)].filter_score;
        assert!((f100 - 0.25).abs() < 0.01, "blame 0.5 over half the samples: {f100}");
        assert!((f150 - 0.25).abs() < 0.01);
        assert_ne!(inferred[&Asn(100)].class, InferredClass::Filter);
    }

    #[test]
    fn foreign_communities_do_not_make_taggers() {
        // Communities owned by an AS *not on the path* (action signals
        // sent by the origin, say) must not count as tagging evidence.
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new("rrc00", Asn(100), "10.0.0.1".parse().unwrap());
        for city in 0..8u16 {
            // Owner 555 never appears on the path.
            a.record(&k, announce("100 200 900", Some((555, city))));
        }
        let inferred = infer_behaviors(&a, &TomographyConfig::default());
        assert!(
            !inferred.contains_key(&Asn(555)) || inferred[&Asn(555)].class != InferredClass::Tagger
        );
    }

    #[test]
    fn sparse_evidence_stays_unknown() {
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new("rrc00", Asn(100), "10.0.0.1".parse().unwrap());
        a.record(&k, announce("100 200 900", Some((200, 1))));
        let inferred = infer_behaviors(&a, &TomographyConfig::default());
        // One sample, one value: nobody is classified beyond Unknown.
        for b in inferred.values() {
            assert_eq!(b.class, InferredClass::Unknown, "{:?}", b);
        }
    }

    #[test]
    fn classify_ases_partitions() {
        let inferred = infer_behaviors(&build_archive(), &TomographyConfig::default());
        let (taggers, filters, propagators) = classify_ases(&inferred);
        assert_eq!(taggers, vec![Asn(200)]);
        assert_eq!(filters, vec![Asn(300)]);
        assert_eq!(propagators, vec![Asn(100)]);
    }
}
