//! Per-AS community behavior inference (the paper's §7 future work).
//!
//! "From observing updates and lack of updates at multiple points in the
//! network, we can make rough guesses as to the way different ASes handle
//! communities. Using more sophisticated network tomography techniques,
//! we plan to classify per-AS community behavior, for instance those that
//! tag, filter, and ignore."
//!
//! This module implements that classification from nothing but observed
//! update streams:
//!
//! * **Taggers** announce many distinct community values under their own
//!   16-bit namespace on routes that traverse them, mostly geo-decodable
//!   and varying over time.
//! * **Filters (cleaners)** sit between a known tagger and the collector
//!   on paths whose announcements are missing the tagger's communities.
//!   Since any AS between the tagger and the collector could have
//!   cleaned, blame is apportioned fractionally (noisy-OR style) and
//!   accumulated over many streams; an AS consistently on community-less
//!   tagged paths converges to a high filter score.
//! * **Propagators (ignore)** appear between a tagger and the collector
//!   on paths where the tagger's communities *are* present — direct
//!   evidence of pass-through.

use std::collections::{BTreeMap, HashSet};

use kcc_bgp_types::geo::decode_geo;
use kcc_bgp_types::{Asn, MessageKind};
use kcc_collector::UpdateArchive;

/// Accumulated per-AS evidence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BehaviorEvidence {
    /// Distinct community values seen under this AS's namespace.
    pub own_values: HashSet<u16>,
    /// How many of those are geo-decodable.
    pub own_geo_values: u64,
    /// Announcements where an upstream tagger's communities passed
    /// through this AS.
    pub passed: f64,
    /// Fractional blame for announcements where an upstream tagger's
    /// communities were missing.
    pub cleaned_blame: f64,
    /// Announcements in which this AS sat between a tagger and the
    /// collector (the denominator for both scores).
    pub samples: f64,
}

/// The three classes the paper names, plus the undecidable remainder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferredClass {
    /// Adds (geo) communities under its own namespace.
    Tagger,
    /// Removes communities in transit.
    Filter,
    /// Passes communities through untouched.
    Propagator,
    /// Not enough evidence.
    Unknown,
}

/// Inference result for one AS.
#[derive(Debug, Clone, PartialEq)]
pub struct InferredBehavior {
    /// The AS.
    pub asn: Asn,
    /// Raw evidence.
    pub evidence: BehaviorEvidence,
    /// Classification.
    pub class: InferredClass,
    /// Filter score in `[0, 1]`: blame per traversal sample.
    pub filter_score: f64,
    /// Propagation score in `[0, 1]`.
    pub propagate_score: f64,
}

/// Inference tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TomographyConfig {
    /// Minimum distinct own-namespace values to call an AS a tagger.
    pub min_tagger_values: usize,
    /// Minimum traversal samples before classifying filter/propagator.
    pub min_samples: f64,
    /// Filter score above which an AS is a filter.
    pub filter_threshold: f64,
    /// Propagation score above which an AS is a propagator.
    pub propagate_threshold: f64,
}

impl Default for TomographyConfig {
    fn default() -> Self {
        TomographyConfig {
            // A single geo tag already contributes three values (city,
            // country, continent); demand evidence of at least two
            // distinct locations.
            min_tagger_values: 5,
            min_samples: 5.0,
            filter_threshold: 0.7,
            propagate_threshold: 0.5,
        }
    }
}

/// Pass 1: find taggers — ASes whose namespace carries several distinct,
/// mostly geo-decodable values on paths containing them.
fn collect_own_namespace(archive: &UpdateArchive) -> BTreeMap<u16, BehaviorEvidence> {
    let mut evidence: BTreeMap<u16, BehaviorEvidence> = BTreeMap::new();
    for (_, rec) in archive.sessions() {
        for u in &rec.updates {
            let MessageKind::Announcement(attrs) = &u.kind else { continue };
            let on_path: HashSet<u16> =
                attrs.as_path.asns().filter(|a| a.is_16bit()).map(|a| a.value() as u16).collect();
            for c in attrs.communities.iter_classic() {
                let owner = c.asn_part();
                // Only communities plausibly *added by an on-path AS*
                // count as tagging evidence.
                if !on_path.contains(&owner) {
                    continue;
                }
                let e = evidence.entry(owner).or_default();
                if e.own_values.insert(c.value_part()) && decode_geo(*c).is_some() {
                    e.own_geo_values += 1;
                }
            }
        }
    }
    evidence
}

/// Runs the full inference over an archive.
pub fn infer_behaviors(
    archive: &UpdateArchive,
    cfg: &TomographyConfig,
) -> BTreeMap<Asn, InferredBehavior> {
    let mut evidence = collect_own_namespace(archive);
    let taggers: HashSet<u16> = evidence
        .iter()
        .filter(|(_, e)| e.own_values.len() >= cfg.min_tagger_values)
        .map(|(&asn, _)| asn)
        .collect();

    // Pass 2: traversal evidence. For each announcement and each known
    // tagger T on its path, the ASes strictly between T and the collector
    // either passed T's communities or share the blame for their absence.
    for (_, rec) in archive.sessions() {
        for u in &rec.updates {
            let MessageKind::Announcement(attrs) = &u.kind else { continue };
            let path: Vec<u16> =
                attrs.as_path.asns().filter(|a| a.is_16bit()).map(|a| a.value() as u16).collect();
            // Find the deepest (origin-most) tagger on the path.
            for (i, &t) in path.iter().enumerate() {
                if !taggers.contains(&t) || i == 0 {
                    continue;
                }
                let between = &path[..i]; // peer-side ASes, nearest first
                if between.is_empty() {
                    continue;
                }
                let t_present = attrs.communities.iter_classic().any(|c| c.asn_part() == t);
                // Dedup consecutive prepends.
                let mut seen: HashSet<u16> = HashSet::new();
                let uniq: Vec<u16> = between.iter().copied().filter(|a| seen.insert(*a)).collect();
                let share = 1.0 / uniq.len() as f64;
                for a in uniq {
                    let e = evidence.entry(a).or_default();
                    e.samples += 1.0;
                    if t_present {
                        e.passed += 1.0;
                    } else {
                        e.cleaned_blame += share;
                    }
                }
            }
        }
    }

    evidence
        .into_iter()
        .map(|(asn16, e)| {
            let filter_score = if e.samples > 0.0 { e.cleaned_blame / e.samples } else { 0.0 };
            let propagate_score = if e.samples > 0.0 { e.passed / e.samples } else { 0.0 };
            let is_tagger = e.own_values.len() >= cfg.min_tagger_values;
            let class = if is_tagger {
                InferredClass::Tagger
            } else if e.samples >= cfg.min_samples && filter_score >= cfg.filter_threshold {
                InferredClass::Filter
            } else if e.samples >= cfg.min_samples && propagate_score >= cfg.propagate_threshold {
                InferredClass::Propagator
            } else {
                InferredClass::Unknown
            };
            (
                Asn(asn16 as u32),
                InferredBehavior {
                    asn: Asn(asn16 as u32),
                    evidence: e,
                    class,
                    filter_score,
                    propagate_score,
                },
            )
        })
        .collect()
}

/// Convenience view: the ASes inferred per class.
pub fn classify_ases(inferred: &BTreeMap<Asn, InferredBehavior>) -> (Vec<Asn>, Vec<Asn>, Vec<Asn>) {
    let mut taggers = Vec::new();
    let mut filters = Vec::new();
    let mut propagators = Vec::new();
    for (asn, b) in inferred {
        match b.class {
            InferredClass::Tagger => taggers.push(*asn),
            InferredClass::Filter => filters.push(*asn),
            InferredClass::Propagator => propagators.push(*asn),
            InferredClass::Unknown => {}
        }
    }
    (taggers, filters, propagators)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{GeoTag, PathAttributes, Prefix, RouteUpdate};
    use kcc_collector::SessionKey;

    fn announce(path: &str, tagger: Option<(u16, u16)>) -> RouteUpdate {
        let mut attrs = PathAttributes { as_path: path.parse().unwrap(), ..Default::default() };
        if let Some((asn, city)) = tagger {
            GeoTag::new(4, 10, city).tag(asn, &mut attrs.communities);
        }
        let p: Prefix = "84.205.64.0/24".parse().unwrap();
        RouteUpdate::announce(1, p, attrs)
    }

    /// Peer 100 propagates AS200's tags; peer 300 strips them.
    fn build_archive() -> UpdateArchive {
        let mut a = UpdateArchive::new(0);
        let k1 = SessionKey::new("rrc00", Asn(100), "10.0.0.1".parse().unwrap());
        let k2 = SessionKey::new("rrc00", Asn(300), "10.0.0.2".parse().unwrap());
        for city in 0..8u16 {
            a.record(&k1, announce("100 200 900", Some((200, city))));
            a.record(&k2, announce("300 200 900", None));
        }
        a
    }

    #[test]
    fn tagger_detected() {
        let inferred = infer_behaviors(&build_archive(), &TomographyConfig::default());
        assert_eq!(inferred[&Asn(200)].class, InferredClass::Tagger);
        assert!(inferred[&Asn(200)].evidence.own_values.len() >= 8);
    }

    #[test]
    fn propagator_and_filter_separated() {
        let inferred = infer_behaviors(&build_archive(), &TomographyConfig::default());
        assert_eq!(inferred[&Asn(100)].class, InferredClass::Propagator);
        assert!(inferred[&Asn(100)].propagate_score > 0.9);
        assert_eq!(inferred[&Asn(300)].class, InferredClass::Filter);
        assert!(inferred[&Asn(300)].filter_score > 0.9);
    }

    #[test]
    fn blame_is_shared_between_candidates() {
        // Two ASes between the tagger and the collector: each gets half
        // the blame, neither crosses the 0.7 filter threshold.
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new("rrc00", Asn(100), "10.0.0.1".parse().unwrap());
        for city in 0..8u16 {
            a.record(&k, announce("100 150 200 900", Some((200, city))));
        }
        for _ in 0..8 {
            a.record(&k, announce("100 150 200 900", None));
        }
        let inferred = infer_behaviors(&a, &TomographyConfig::default());
        let f100 = inferred[&Asn(100)].filter_score;
        let f150 = inferred[&Asn(150)].filter_score;
        assert!((f100 - 0.25).abs() < 0.01, "blame 0.5 over half the samples: {f100}");
        assert!((f150 - 0.25).abs() < 0.01);
        assert_ne!(inferred[&Asn(100)].class, InferredClass::Filter);
    }

    #[test]
    fn foreign_communities_do_not_make_taggers() {
        // Communities owned by an AS *not on the path* (action signals
        // sent by the origin, say) must not count as tagging evidence.
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new("rrc00", Asn(100), "10.0.0.1".parse().unwrap());
        for city in 0..8u16 {
            // Owner 555 never appears on the path.
            a.record(&k, announce("100 200 900", Some((555, city))));
        }
        let inferred = infer_behaviors(&a, &TomographyConfig::default());
        assert!(
            !inferred.contains_key(&Asn(555)) || inferred[&Asn(555)].class != InferredClass::Tagger
        );
    }

    #[test]
    fn sparse_evidence_stays_unknown() {
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new("rrc00", Asn(100), "10.0.0.1".parse().unwrap());
        a.record(&k, announce("100 200 900", Some((200, 1))));
        let inferred = infer_behaviors(&a, &TomographyConfig::default());
        // One sample, one value: nobody is classified beyond Unknown.
        for b in inferred.values() {
            assert_eq!(b.class, InferredClass::Unknown, "{:?}", b);
        }
    }

    #[test]
    fn classify_ases_partitions() {
        let inferred = infer_behaviors(&build_archive(), &TomographyConfig::default());
        let (taggers, filters, propagators) = classify_ases(&inferred);
        assert_eq!(taggers, vec![Asn(200)]);
        assert_eq!(filters, vec![Asn(300)]);
        assert_eq!(propagators, vec![Asn(100)]);
    }
}
