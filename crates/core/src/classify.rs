//! The six announcement types (paper §5).
//!
//! Two successive announcements for the same `(prefix, session)` stream
//! are compared on two axes: the AS path and the community attribute. The
//! first letter encodes the path axis — `p` (changed), `n` (unchanged),
//! `x` (changed by prepending only: the *set* of ASes is equal) — and the
//! second encodes the community axis — `c` (changed) or `n` (unchanged).

use std::fmt;

use kcc_bgp_types::PathAttributes;

/// The paper's announcement taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AnnouncementType {
    /// Path and community changed.
    Pc,
    /// Path changed only.
    Pn,
    /// Community changed only — the "community exploration" type.
    Nc,
    /// Nothing changed — a duplicate.
    Nn,
    /// Prepending and community changed.
    Xc,
    /// Prepending changed only.
    Xn,
}

impl AnnouncementType {
    /// All six, in the paper's table order.
    pub const ALL: [AnnouncementType; 6] = [
        AnnouncementType::Pc,
        AnnouncementType::Pn,
        AnnouncementType::Nc,
        AnnouncementType::Nn,
        AnnouncementType::Xc,
        AnnouncementType::Xn,
    ];

    /// The paper's two-letter label.
    pub fn label(self) -> &'static str {
        match self {
            AnnouncementType::Pc => "pc",
            AnnouncementType::Pn => "pn",
            AnnouncementType::Nc => "nc",
            AnnouncementType::Nn => "nn",
            AnnouncementType::Xc => "xc",
            AnnouncementType::Xn => "xn",
        }
    }

    /// True for the types with no real path change (`nc`, `nn`) — the
    /// "unnecessary update" candidates of §6.
    pub fn is_no_path_change(self) -> bool {
        matches!(self, AnnouncementType::Nc | AnnouncementType::Nn)
    }

    /// True if the community attribute changed.
    pub fn community_changed(self) -> bool {
        matches!(self, AnnouncementType::Pc | AnnouncementType::Nc | AnnouncementType::Xc)
    }
}

impl fmt::Display for AnnouncementType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Classifies one announcement against its predecessor in the stream.
pub fn classify_pair(prev: &PathAttributes, cur: &PathAttributes) -> AnnouncementType {
    let path_changed = prev.as_path != cur.as_path;
    let comm_changed = prev.communities != cur.communities;
    if path_changed {
        // Prepending-only change: the set of ASes is equal (paper §5).
        let prepend_only = prev.as_path.same_as_set(&cur.as_path);
        match (prepend_only, comm_changed) {
            (true, true) => AnnouncementType::Xc,
            (true, false) => AnnouncementType::Xn,
            (false, true) => AnnouncementType::Pc,
            (false, false) => AnnouncementType::Pn,
        }
    } else if comm_changed {
        AnnouncementType::Nc
    } else {
        AnnouncementType::Nn
    }
}

/// Counts per type, plus the stream events that fall outside the
/// six-way classification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TypeCounts {
    /// `pc` announcements.
    pub pc: u64,
    /// `pn` announcements.
    pub pn: u64,
    /// `nc` announcements.
    pub nc: u64,
    /// `nn` announcements.
    pub nn: u64,
    /// `xc` announcements.
    pub xc: u64,
    /// `xn` announcements.
    pub xn: u64,
    /// First announcement of a stream (no predecessor to compare with).
    pub initial: u64,
    /// Withdrawals (not classified; tracked for Table 1).
    pub withdrawals: u64,
    /// `nn` announcements where only the MED differs — the alternative
    /// explanation the paper checks before blaming communities.
    pub nn_med_only: u64,
}

impl TypeCounts {
    /// Adds one classified announcement.
    pub fn add(&mut self, t: AnnouncementType) {
        match t {
            AnnouncementType::Pc => self.pc += 1,
            AnnouncementType::Pn => self.pn += 1,
            AnnouncementType::Nc => self.nc += 1,
            AnnouncementType::Nn => self.nn += 1,
            AnnouncementType::Xc => self.xc += 1,
            AnnouncementType::Xn => self.xn += 1,
        }
    }

    /// The count for one type.
    pub fn get(&self, t: AnnouncementType) -> u64 {
        match t {
            AnnouncementType::Pc => self.pc,
            AnnouncementType::Pn => self.pn,
            AnnouncementType::Nc => self.nc,
            AnnouncementType::Nn => self.nn,
            AnnouncementType::Xc => self.xc,
            AnnouncementType::Xn => self.xn,
        }
    }

    /// Classified announcements (excludes initial and withdrawals).
    pub fn classified_total(&self) -> u64 {
        self.pc + self.pn + self.nc + self.nn + self.xc + self.xn
    }

    /// All announcements including stream-initial ones.
    pub fn announcement_total(&self) -> u64 {
        self.classified_total() + self.initial
    }

    /// Share of one type among classified announcements, in percent.
    pub fn share(&self, t: AnnouncementType) -> f64 {
        let total = self.classified_total();
        if total == 0 {
            return 0.0;
        }
        self.get(t) as f64 * 100.0 / total as f64
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &TypeCounts) {
        self.pc += other.pc;
        self.pn += other.pn;
        self.nc += other.nc;
        self.nn += other.nn;
        self.xc += other.xc;
        self.xn += other.xn;
        self.initial += other.initial;
        self.withdrawals += other.withdrawals;
        self.nn_med_only += other.nn_med_only;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{Community, CommunitySet};

    fn attrs(path: &str, comms: &[(u16, u16)]) -> PathAttributes {
        PathAttributes {
            as_path: path.parse().unwrap(),
            communities: CommunitySet::from_classic(
                comms.iter().map(|&(a, v)| Community::from_parts(a, v)),
            ),
            ..Default::default()
        }
    }

    #[test]
    fn pc_path_and_community() {
        let prev = attrs("20205 3356 12654", &[(3356, 2501)]);
        let cur = attrs("20205 6939 12654", &[(6939, 2502)]);
        assert_eq!(classify_pair(&prev, &cur), AnnouncementType::Pc);
    }

    #[test]
    fn pn_path_only() {
        let prev = attrs("20205 3356 12654", &[(3356, 2501)]);
        let cur = attrs("20205 6939 12654", &[(3356, 2501)]);
        assert_eq!(classify_pair(&prev, &cur), AnnouncementType::Pn);
    }

    #[test]
    fn nc_community_only() {
        // The paper's Exp2/Fig 4 signature: same path, new geo tag.
        let prev = attrs("20205 3356 174 12654", &[(3356, 2501)]);
        let cur = attrs("20205 3356 174 12654", &[(3356, 2502)]);
        assert_eq!(classify_pair(&prev, &cur), AnnouncementType::Nc);
    }

    #[test]
    fn nn_no_change() {
        let prev = attrs("20205 3356 12654", &[(3356, 2501)]);
        assert_eq!(classify_pair(&prev, &prev.clone()), AnnouncementType::Nn);
    }

    #[test]
    fn nn_empty_communities_twice() {
        // "nn announcements also include two empty community attributes
        // in succession."
        let prev = attrs("20205 3356 12654", &[]);
        assert_eq!(classify_pair(&prev, &prev.clone()), AnnouncementType::Nn);
    }

    #[test]
    fn xn_prepend_only() {
        let prev = attrs("20205 3356 12654", &[]);
        let cur = attrs("20205 3356 3356 3356 12654", &[]);
        assert_eq!(classify_pair(&prev, &cur), AnnouncementType::Xn);
    }

    #[test]
    fn xc_prepend_and_community() {
        let prev = attrs("20205 3356 12654", &[(3356, 2501)]);
        let cur = attrs("20205 3356 3356 12654", &[(3356, 2502)]);
        assert_eq!(classify_pair(&prev, &cur), AnnouncementType::Xc);
    }

    #[test]
    fn deprepending_is_x_type_too() {
        let prev = attrs("20205 3356 3356 12654", &[]);
        let cur = attrs("20205 3356 12654", &[]);
        assert_eq!(classify_pair(&prev, &cur), AnnouncementType::Xn);
    }

    #[test]
    fn med_change_is_nn_on_the_two_axes() {
        let prev = attrs("20205 3356 12654", &[]);
        let mut cur = prev.clone();
        cur.med = Some(50);
        // Path and communities unchanged → nn; MED attribution is a
        // separate check (differs_only_in_med).
        assert_eq!(classify_pair(&prev, &cur), AnnouncementType::Nn);
        assert!(prev.differs_only_in_med(&cur));
    }

    #[test]
    fn counts_accumulate_and_share() {
        let mut c = TypeCounts::default();
        c.add(AnnouncementType::Pc);
        c.add(AnnouncementType::Pc);
        c.add(AnnouncementType::Nc);
        c.add(AnnouncementType::Nn);
        assert_eq!(c.classified_total(), 4);
        assert!((c.share(AnnouncementType::Pc) - 50.0).abs() < 1e-9);
        assert!((c.share(AnnouncementType::Nc) - 25.0).abs() < 1e-9);
        assert_eq!(c.get(AnnouncementType::Xn), 0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = TypeCounts { pc: 1, withdrawals: 2, initial: 3, ..Default::default() };
        let b = TypeCounts { pc: 10, nn: 5, nn_med_only: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.pc, 11);
        assert_eq!(a.nn, 5);
        assert_eq!(a.withdrawals, 2);
        assert_eq!(a.initial, 3);
        assert_eq!(a.nn_med_only, 1);
    }

    #[test]
    fn no_path_change_predicate() {
        assert!(AnnouncementType::Nc.is_no_path_change());
        assert!(AnnouncementType::Nn.is_no_path_change());
        assert!(!AnnouncementType::Pc.is_no_path_change());
        assert!(!AnnouncementType::Xn.is_no_path_change());
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = AnnouncementType::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels, vec!["pc", "pn", "nc", "nn", "xc", "xn"]);
    }

    #[test]
    fn empty_counts_share_is_zero() {
        let c = TypeCounts::default();
        assert_eq!(c.share(AnnouncementType::Pc), 0.0);
    }
}
