//! Beacon phase labeling (paper §6, "Revealed Information").
//!
//! "We label all announcements ∈ d_beacon according to their appearances
//! in any of the predefined phases, or outside them. We consider all
//! announcements that appear within 15 minutes of the respective phase
//! begins."

use kcc_bgp_types::{Prefix, RouteUpdate};
use kcc_collector::{BeaconPhase, BeaconSchedule, SessionKey, UpdateArchive};

/// One update with its phase label.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedUpdate {
    /// The session it arrived on.
    pub session: SessionKey,
    /// The update.
    pub update: RouteUpdate,
    /// The phase it falls into.
    pub phase: BeaconPhase,
}

/// Microseconds in a day.
pub const DAY_US: u64 = 24 * 3600 * 1_000_000;

/// Labels every update for the given beacon prefixes with its phase.
/// Archive times are relative to day start, so time-of-day is `time_us`
/// modulo a day (multi-day archives wrap correctly).
pub fn label_archive(
    archive: &UpdateArchive,
    schedule: &BeaconSchedule,
    beacon_prefixes: &[Prefix],
) -> Vec<PhasedUpdate> {
    let mut out = Vec::new();
    for (key, rec) in archive.sessions() {
        for u in &rec.updates {
            if !beacon_prefixes.contains(&u.prefix) {
                continue;
            }
            let phase = schedule.phase_of(u.time_us % DAY_US);
            out.push(PhasedUpdate { session: key.clone(), update: u.clone(), phase });
        }
    }
    out
}

/// Per-phase counts of announcements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCounts {
    /// Announcements inside announcement phases.
    pub in_announcement: u64,
    /// Announcements inside withdrawal phases — the community-exploration
    /// population.
    pub in_withdrawal: u64,
    /// Announcements outside every phase.
    pub outside: u64,
    /// Withdrawals observed inside withdrawal phases.
    pub withdrawals_in_phase: u64,
}

/// Counts announcements per phase category.
pub fn phase_counts(labeled: &[PhasedUpdate]) -> PhaseCounts {
    let mut c = PhaseCounts::default();
    for pu in labeled {
        if pu.update.is_announcement() {
            match pu.phase {
                BeaconPhase::Announcement(_) => c.in_announcement += 1,
                BeaconPhase::Withdrawal(_) => c.in_withdrawal += 1,
                BeaconPhase::Outside => c.outside += 1,
            }
        } else if pu.phase.is_withdrawal() {
            c.withdrawals_in_phase += 1;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{Asn, PathAttributes};

    const HOUR_US: u64 = 3600 * 1_000_000;

    fn archive() -> (UpdateArchive, Prefix) {
        let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
        let other: Prefix = "10.0.0.0/8".parse().unwrap();
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new("rrc00", Asn(20_205), "10.0.0.1".parse().unwrap());
        let attrs = PathAttributes::default();
        // In the first announcement phase (00:05).
        a.record(&k, RouteUpdate::announce(5 * 60 * 1_000_000, prefix, attrs.clone()));
        // In the first withdrawal phase (02:10).
        a.record(
            &k,
            RouteUpdate::announce(2 * HOUR_US + 10 * 60 * 1_000_000, prefix, attrs.clone()),
        );
        a.record(&k, RouteUpdate::withdraw(2 * HOUR_US + 11 * 60 * 1_000_000, prefix));
        // Outside (03:00).
        a.record(&k, RouteUpdate::announce(3 * HOUR_US, prefix, attrs.clone()));
        // Non-beacon prefix: ignored.
        a.record(&k, RouteUpdate::announce(1, other, attrs));
        (a, prefix)
    }

    #[test]
    fn labels_phases_and_filters_prefixes() {
        let (a, prefix) = archive();
        let labeled = label_archive(&a, &BeaconSchedule::default(), &[prefix]);
        assert_eq!(labeled.len(), 4);
        assert_eq!(labeled[0].phase, BeaconPhase::Announcement(0));
        assert_eq!(labeled[1].phase, BeaconPhase::Withdrawal(0));
        assert_eq!(labeled[2].phase, BeaconPhase::Withdrawal(0));
        assert_eq!(labeled[3].phase, BeaconPhase::Outside);
    }

    #[test]
    fn counts_per_phase() {
        let (a, prefix) = archive();
        let labeled = label_archive(&a, &BeaconSchedule::default(), &[prefix]);
        let c = phase_counts(&labeled);
        assert_eq!(c.in_announcement, 1);
        assert_eq!(c.in_withdrawal, 1);
        assert_eq!(c.outside, 1);
        assert_eq!(c.withdrawals_in_phase, 1);
    }

    #[test]
    fn multi_day_times_wrap() {
        let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new("rrc00", Asn(1), "10.0.0.1".parse().unwrap());
        // Day 2, 02:05 — still a withdrawal phase.
        a.record(
            &k,
            RouteUpdate::announce(
                DAY_US + 2 * HOUR_US + 5 * 60 * 1_000_000,
                prefix,
                PathAttributes::default(),
            ),
        );
        let labeled = label_archive(&a, &BeaconSchedule::default(), &[prefix]);
        assert_eq!(labeled[0].phase, BeaconPhase::Withdrawal(0));
    }
}
