//! Beacon phase labeling (paper §6, "Revealed Information").
//!
//! "We label all announcements ∈ d_beacon according to their appearances
//! in any of the predefined phases, or outside them. We consider all
//! announcements that appear within 15 minutes of the respective phase
//! begins."

use kcc_bgp_types::{Prefix, RouteUpdate};
use kcc_collector::{ArchiveSource, BeaconPhase, BeaconSchedule, SessionKey, UpdateArchive};

use crate::pipeline::{run_pipeline, AnalysisSink, Merge};

/// One update with its phase label.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedUpdate {
    /// The session it arrived on.
    pub session: SessionKey,
    /// The update.
    pub update: RouteUpdate,
    /// The phase it falls into.
    pub phase: BeaconPhase,
}

/// Microseconds in a day.
pub const DAY_US: u64 = 24 * 3600 * 1_000_000;

/// Materializes phase-labeled beacon updates — [`label_archive`] as a
/// streaming sink. Memory grows with the *beacon* traffic it retains;
/// prefer [`PhaseCountSink`] when only the counts matter.
#[derive(Debug, Clone)]
pub struct LabelSink {
    schedule: BeaconSchedule,
    beacon_prefixes: Vec<Prefix>,
    labeled: Vec<PhasedUpdate>,
}

impl LabelSink {
    /// A sink labeling updates on `beacon_prefixes` against `schedule`.
    pub fn new(schedule: BeaconSchedule, beacon_prefixes: &[Prefix]) -> Self {
        LabelSink { schedule, beacon_prefixes: beacon_prefixes.to_vec(), labeled: Vec::new() }
    }

    /// The labeled updates, in arrival order per session.
    pub fn finish(self) -> Vec<PhasedUpdate> {
        self.labeled
    }
}

impl AnalysisSink for LabelSink {
    fn on_update(&mut self, session: &SessionKey, u: &RouteUpdate) {
        if !self.beacon_prefixes.contains(&u.prefix) {
            return;
        }
        let phase = self.schedule.phase_of(u.time_us % DAY_US);
        self.labeled.push(PhasedUpdate { session: session.clone(), update: u.clone(), phase });
    }

    fn wants_events(&self) -> bool {
        false
    }
}

impl Merge for LabelSink {
    fn merge(&mut self, mut other: Self) {
        self.labeled.append(&mut other.labeled);
    }
}

/// Labels every update for the given beacon prefixes with its phase —
/// the batch wrapper over [`LabelSink`]. Archive times are relative to
/// day start, so time-of-day is `time_us` modulo a day (multi-day
/// archives wrap correctly).
pub fn label_archive(
    archive: &UpdateArchive,
    schedule: &BeaconSchedule,
    beacon_prefixes: &[Prefix],
) -> Vec<PhasedUpdate> {
    run_pipeline(ArchiveSource::new(archive), (), LabelSink::new(*schedule, beacon_prefixes))
        .expect("archive sources cannot fail")
        .sink
        .finish()
}

/// Per-phase announcement counting as a constant-size streaming sink —
/// [`label_archive`] + [`phase_counts`] without materializing anything.
#[derive(Debug, Clone)]
pub struct PhaseCountSink {
    schedule: BeaconSchedule,
    beacon_prefixes: Vec<Prefix>,
    counts: PhaseCounts,
}

impl PhaseCountSink {
    /// A sink counting phases of updates on `beacon_prefixes`.
    pub fn new(schedule: BeaconSchedule, beacon_prefixes: &[Prefix]) -> Self {
        PhaseCountSink {
            schedule,
            beacon_prefixes: beacon_prefixes.to_vec(),
            counts: PhaseCounts::default(),
        }
    }

    /// The accumulated counts.
    pub fn finish(self) -> PhaseCounts {
        self.counts
    }
}

impl AnalysisSink for PhaseCountSink {
    fn on_update(&mut self, _session: &SessionKey, u: &RouteUpdate) {
        if !self.beacon_prefixes.contains(&u.prefix) {
            return;
        }
        let phase = self.schedule.phase_of(u.time_us % DAY_US);
        self.counts.observe(phase, u.is_announcement());
    }

    fn wants_events(&self) -> bool {
        false
    }
}

impl Merge for PhaseCountSink {
    fn merge(&mut self, other: Self) {
        self.counts.merge(other.counts);
    }
}

/// Per-phase counts of announcements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCounts {
    /// Announcements inside announcement phases.
    pub in_announcement: u64,
    /// Announcements inside withdrawal phases — the community-exploration
    /// population.
    pub in_withdrawal: u64,
    /// Announcements outside every phase.
    pub outside: u64,
    /// Withdrawals observed inside withdrawal phases.
    pub withdrawals_in_phase: u64,
}

impl PhaseCounts {
    /// Accounts one labeled update — the single source of truth for the
    /// phase-category counting rule (batch and streaming both use it).
    pub fn observe(&mut self, phase: BeaconPhase, is_announcement: bool) {
        if is_announcement {
            match phase {
                BeaconPhase::Announcement(_) => self.in_announcement += 1,
                BeaconPhase::Withdrawal(_) => self.in_withdrawal += 1,
                BeaconPhase::Outside => self.outside += 1,
            }
        } else if phase.is_withdrawal() {
            self.withdrawals_in_phase += 1;
        }
    }
}

impl Merge for PhaseCounts {
    fn merge(&mut self, other: Self) {
        self.in_announcement += other.in_announcement;
        self.in_withdrawal += other.in_withdrawal;
        self.outside += other.outside;
        self.withdrawals_in_phase += other.withdrawals_in_phase;
    }
}

/// Counts announcements per phase category.
pub fn phase_counts(labeled: &[PhasedUpdate]) -> PhaseCounts {
    let mut c = PhaseCounts::default();
    for pu in labeled {
        c.observe(pu.phase, pu.update.is_announcement());
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{Asn, PathAttributes};

    const HOUR_US: u64 = 3600 * 1_000_000;

    fn archive() -> (UpdateArchive, Prefix) {
        let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
        let other: Prefix = "10.0.0.0/8".parse().unwrap();
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new("rrc00", Asn(20_205), "10.0.0.1".parse().unwrap());
        let attrs = PathAttributes::default();
        // In the first announcement phase (00:05).
        a.record(&k, RouteUpdate::announce(5 * 60 * 1_000_000, prefix, attrs.clone()));
        // In the first withdrawal phase (02:10).
        a.record(
            &k,
            RouteUpdate::announce(2 * HOUR_US + 10 * 60 * 1_000_000, prefix, attrs.clone()),
        );
        a.record(&k, RouteUpdate::withdraw(2 * HOUR_US + 11 * 60 * 1_000_000, prefix));
        // Outside (03:00).
        a.record(&k, RouteUpdate::announce(3 * HOUR_US, prefix, attrs.clone()));
        // Non-beacon prefix: ignored.
        a.record(&k, RouteUpdate::announce(1, other, attrs));
        (a, prefix)
    }

    #[test]
    fn labels_phases_and_filters_prefixes() {
        let (a, prefix) = archive();
        let labeled = label_archive(&a, &BeaconSchedule::default(), &[prefix]);
        assert_eq!(labeled.len(), 4);
        assert_eq!(labeled[0].phase, BeaconPhase::Announcement(0));
        assert_eq!(labeled[1].phase, BeaconPhase::Withdrawal(0));
        assert_eq!(labeled[2].phase, BeaconPhase::Withdrawal(0));
        assert_eq!(labeled[3].phase, BeaconPhase::Outside);
    }

    #[test]
    fn counts_per_phase() {
        let (a, prefix) = archive();
        let labeled = label_archive(&a, &BeaconSchedule::default(), &[prefix]);
        let c = phase_counts(&labeled);
        assert_eq!(c.in_announcement, 1);
        assert_eq!(c.in_withdrawal, 1);
        assert_eq!(c.outside, 1);
        assert_eq!(c.withdrawals_in_phase, 1);
    }

    #[test]
    fn multi_day_times_wrap() {
        let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new("rrc00", Asn(1), "10.0.0.1".parse().unwrap());
        // Day 2, 02:05 — still a withdrawal phase.
        a.record(
            &k,
            RouteUpdate::announce(
                DAY_US + 2 * HOUR_US + 5 * 60 * 1_000_000,
                prefix,
                PathAttributes::default(),
            ),
        );
        let labeled = label_archive(&a, &BeaconSchedule::default(), &[prefix]);
        assert_eq!(labeled[0].phase, BeaconPhase::Withdrawal(0));
    }
}
