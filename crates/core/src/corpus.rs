//! Cross-collector comparison — the analysis side of a multi-vantage
//! corpus run.
//!
//! The paper's Tables 1–3 aggregate many RIPE RIS / RouteViews
//! collectors, and related work (AS-level community-usage
//! classification, CommunityWatch) treats *cross-collector agreement*
//! as a signal in itself: a community seen at every vantage point is
//! propagating globally, one seen at a single collector is scoped,
//! filtered, or anomalous. This module turns one
//! [`run_corpus`](crate::pipeline::run_corpus) pass into that
//! comparison:
//!
//! * per-collector Table 1 and Table 2 columns side by side,
//! * a per-community presence/agreement matrix over the collectors,
//! * a deterministic disagreement list (communities visible at some but
//!   not all vantage points),
//! * the combined all-vantage table the per-collector results merge
//!   into.
//!
//! Everything is derived from integer counters and ordered sets merged
//! in collector-name order, so the report is byte-identical for any
//! member order or thread count.

use std::collections::BTreeSet;

use kcc_bgp_types::{Community, MessageKind, RouteUpdate};
use kcc_collector::{Corpus, SessionKey, SourceError};

use crate::classify::TypeCounts;
use crate::clean::{CleaningConfig, CleaningReport, CleaningStage};
use crate::pipeline::{run_corpus, AnalysisSink, Merge, PipelineStats};
use crate::registry::AllocationRegistry;
use crate::report::{fmt_count, render_table};
use crate::stream::CountsSink;
use crate::table::{OverviewSink, OverviewStats, TypeShares};

/// Collects the set of distinct classic communities seen on a feed —
/// the per-collector half of the presence/agreement matrix. State grows
/// with the community *universe* (tens of thousands at internet scale),
/// never with update volume.
#[derive(Debug, Clone, Default)]
pub struct CommunitySetSink {
    seen: BTreeSet<Community>,
}

impl CommunitySetSink {
    /// The communities seen, in ascending order.
    pub fn finish(self) -> BTreeSet<Community> {
        self.seen
    }
}

impl AnalysisSink for CommunitySetSink {
    fn on_update(&mut self, _session: &SessionKey, u: &RouteUpdate) {
        if let MessageKind::Announcement(attrs) = &u.kind {
            self.seen.extend(attrs.communities.iter_classic().copied());
        }
    }

    fn wants_events(&self) -> bool {
        false
    }
}

impl Merge for CommunitySetSink {
    fn merge(&mut self, other: Self) {
        self.seen.extend(other.seen);
    }
}

/// The sink stack a corpus comparison runs per collector: Table 1,
/// Table 2 and the community-presence set.
pub type CorpusSink = (OverviewSink, CountsSink, CommunitySetSink);

/// A fresh [`CorpusSink`] (the factory `run_corpus` wants).
pub fn corpus_sink() -> CorpusSink {
    (OverviewSink::default(), CountsSink::default(), CommunitySetSink::default())
}

/// One collector's column of the comparison.
#[derive(Debug, Clone)]
pub struct CollectorColumn {
    /// Collector name.
    pub name: String,
    /// Its Table 1.
    pub overview: OverviewStats,
    /// Its Table 2 counts.
    pub counts: TypeCounts,
    /// What its §4 cleaning pass did.
    pub cleaning: CleaningReport,
    /// The distinct classic communities it observed.
    pub communities: BTreeSet<Community>,
    /// Its pipeline statistics.
    pub stats: PipelineStats,
}

/// The cross-collector comparison for one corpus run.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// Per-collector columns, sorted by collector name.
    pub collectors: Vec<CollectorColumn>,
    /// The combined all-vantage Table 1.
    pub combined_overview: OverviewStats,
    /// The combined all-vantage Table 2 counts.
    pub combined_counts: TypeCounts,
    /// Combined pipeline statistics (name-order merge of the columns).
    pub stats: PipelineStats,
}

/// How many disputed communities [`CorpusReport::render`] prints in the
/// presence matrix before eliding the tail (the count is always shown).
pub const MATRIX_RENDER_CAP: usize = 20;

/// Runs a corpus through per-collector §4 cleaning and the
/// [`CorpusSink`] stack, and folds the outputs into a [`CorpusReport`].
/// One registry covers all collectors (allocation is global); cleaning
/// state and reports stay per collector.
pub fn run_corpus_report(
    corpus: Corpus<'_>,
    threads: usize,
    registry: &AllocationRegistry,
    cleaning: CleaningConfig,
) -> Result<CorpusReport, SourceError> {
    let out =
        run_corpus(corpus, threads, |_| CleaningStage::new(registry, cleaning), |_| corpus_sink())?;
    let (combined_overview, combined_counts, _) = out.combined;
    let collectors = out
        .per_collector
        .into_iter()
        .map(|(name, o)| {
            let (overview, counts, communities) = o.sink;
            CollectorColumn {
                name,
                overview: overview.finish(),
                counts: counts.finish(),
                cleaning: o.stages.report(),
                communities: communities.finish(),
                stats: o.stats,
            }
        })
        .collect();
    Ok(CorpusReport {
        collectors,
        combined_overview: combined_overview.finish(),
        combined_counts: combined_counts.finish(),
        stats: out.stats,
    })
}

impl CorpusReport {
    /// Number of collectors.
    pub fn collector_count(&self) -> usize {
        self.collectors.len()
    }

    /// The presence matrix: every community seen anywhere, ascending,
    /// with one presence flag per collector (column order =
    /// `self.collectors` order, i.e. sorted names).
    pub fn presence(&self) -> Vec<(Community, Vec<bool>)> {
        let mut all: BTreeSet<Community> = BTreeSet::new();
        for c in &self.collectors {
            all.extend(c.communities.iter().copied());
        }
        all.into_iter()
            .map(|comm| {
                let flags = self.collectors.iter().map(|c| c.communities.contains(&comm)).collect();
                (comm, flags)
            })
            .collect()
    }

    /// A community row is disputed when some but not all collectors saw
    /// it. (Every `presence()` row has at least one flag set.)
    fn is_disputed(flags: &[bool]) -> bool {
        !flags.iter().all(|&f| f)
    }

    /// Communities seen by at least one but not every collector —
    /// the disagreement list, in ascending community order (total and
    /// deterministic).
    pub fn disagreements(&self) -> Vec<(Community, Vec<bool>)> {
        self.presence().into_iter().filter(|(_, flags)| Self::is_disputed(flags)).collect()
    }

    /// `(distinct communities, seen by every collector, disputed)` —
    /// `total = unanimous + disputed`.
    pub fn agreement_summary(&self) -> (usize, usize, usize) {
        Self::summarize(&self.presence())
    }

    fn summarize(presence: &[(Community, Vec<bool>)]) -> (usize, usize, usize) {
        let total = presence.len();
        let disputed = presence.iter().filter(|(_, flags)| Self::is_disputed(flags)).count();
        (total, total - disputed, disputed)
    }

    /// Renders the full comparison: per-collector Table 1 + Table 2 side
    /// by side (with the combined column), cleaning summary, agreement
    /// summary and the disputed-community presence matrix (capped at
    /// [`MATRIX_RENDER_CAP`] rows). Byte-identical for any member order
    /// or thread count.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let names: Vec<&str> = self.collectors.iter().map(|c| c.name.as_str()).collect();
        out.push_str(&format!(
            "Corpus: {} collectors ({}), {} updates\n\n",
            self.collectors.len(),
            names.join(", "),
            fmt_count(self.stats.updates),
        ));

        // Table 1, one column per collector plus the combined day.
        let mut headers: Vec<&str> = vec!["Table 1"];
        headers.extend(names.iter().copied());
        headers.push("all");
        type OverviewField = (&'static str, fn(&OverviewStats) -> u64);
        let field_rows: [OverviewField; 10] = [
            ("IPv4 prefixes", |s| s.ipv4_prefixes),
            ("IPv6 prefixes", |s| s.ipv6_prefixes),
            ("ASes", |s| s.ases),
            ("Sessions", |s| s.sessions),
            ("Peers", |s| s.peers),
            ("Announcements", |s| s.announcements),
            ("w/ communities", |s| s.with_communities),
            ("uniq. 16 bits", |s| s.uniq_16bit),
            ("uniq. AS paths", |s| s.uniq_as_paths),
            ("Withdrawals", |s| s.withdrawals),
        ];
        let rows: Vec<Vec<String>> = field_rows
            .iter()
            .map(|(label, get)| {
                let mut row = vec![label.to_string()];
                row.extend(self.collectors.iter().map(|c| fmt_count(get(&c.overview))));
                row.push(fmt_count(get(&self.combined_overview)));
                row
            })
            .collect();
        out.push_str(&render_table(&headers, &rows));
        out.push('\n');

        // §4 cleaning, per collector.
        let mut headers: Vec<&str> = vec!["Cleaning"];
        headers.extend(names.iter().copied());
        type CleaningField = (&'static str, fn(&CleaningReport) -> u64);
        let cleaning_rows: [CleaningField; 4] = [
            ("kept", |r| r.kept),
            ("bogon ASN drops", |r| r.removed_unallocated_asn),
            ("bogon prefix drops", |r| r.removed_unallocated_prefix),
            ("normalized sessions", |r| r.sessions_normalized),
        ];
        let rows: Vec<Vec<String>> = cleaning_rows
            .iter()
            .map(|(label, get)| {
                let mut row = vec![label.to_string()];
                row.extend(self.collectors.iter().map(|c| fmt_count(get(&c.cleaning))));
                row
            })
            .collect();
        out.push_str(&render_table(&headers, &rows));
        out.push('\n');

        // Table 2 side by side.
        let mut columns: Vec<(String, TypeCounts)> =
            self.collectors.iter().map(|c| (c.name.clone(), c.counts)).collect();
        columns.push(("all".into(), self.combined_counts));
        out.push_str(&TypeShares::new(columns).render());
        out.push('\n');

        // Community agreement (one presence-matrix pass feeds both the
        // summary and the disagreement rows).
        let presence = self.presence();
        let (total, unanimous, disputed) = Self::summarize(&presence);
        let share = if total == 0 { 0.0 } else { unanimous as f64 * 100.0 / total as f64 };
        out.push_str(&format!(
            "Community agreement: {total} distinct communities; {unanimous} \
             ({share:.1}%) seen at all {} collectors; {disputed} disputed\n",
            self.collectors.len(),
        ));
        let disagreements: Vec<&(Community, Vec<bool>)> =
            presence.iter().filter(|(_, flags)| Self::is_disputed(flags)).collect();
        if !disagreements.is_empty() {
            let mut headers: Vec<&str> = vec!["community"];
            headers.extend(names.iter().copied());
            let rows: Vec<Vec<String>> = disagreements
                .iter()
                .take(MATRIX_RENDER_CAP)
                .map(|(comm, flags)| {
                    let mut row = vec![comm.to_string()];
                    row.extend(flags.iter().map(|&f| (if f { "+" } else { "." }).to_string()));
                    row
                })
                .collect();
            out.push_str(&render_table(&headers, &rows));
            if disagreements.len() > MATRIX_RENDER_CAP {
                out.push_str(&format!(
                    "… and {} more disputed communities\n",
                    disagreements.len() - MATRIX_RENDER_CAP
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{Asn, CommunitySet, PathAttributes, Prefix};
    use kcc_collector::{ArchiveSource, UpdateArchive};

    fn announce(t: u64, comms: &[(u16, u16)]) -> RouteUpdate {
        let attrs = PathAttributes {
            as_path: "20205 3356 12654".parse().unwrap(),
            communities: CommunitySet::from_classic(
                comms.iter().map(|&(a, v)| Community::from_parts(a, v)),
            ),
            ..Default::default()
        };
        RouteUpdate::announce(t, "84.205.64.0/24".parse().unwrap(), attrs)
    }

    fn archive(collector: &str, comms: &[&[(u16, u16)]]) -> UpdateArchive {
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new(collector, Asn(20_205), "192.0.2.9".parse().unwrap());
        for (i, c) in comms.iter().enumerate() {
            a.record(&k, announce(i as u64, c));
        }
        a
    }

    fn registry() -> AllocationRegistry {
        let mut r = AllocationRegistry::new();
        for asn in [20_205u32, 3356, 12_654] {
            r.register_asn(Asn(asn), 0);
        }
        r.register_block("84.205.0.0/16".parse::<Prefix>().unwrap(), 0);
        r
    }

    fn report() -> CorpusReport {
        let a = archive("rrc00", &[&[(3356, 1)], &[(3356, 2)]]);
        let b = archive("rrc01", &[&[(3356, 1)], &[(3356, 3)]]);
        let corpus = Corpus::new()
            .with("rrc01", ArchiveSource::new(&b))
            .unwrap()
            .with("rrc00", ArchiveSource::new(&a))
            .unwrap();
        run_corpus_report(corpus, 2, &registry(), CleaningConfig::default()).unwrap()
    }

    #[test]
    fn presence_and_disagreements() {
        let r = report();
        assert_eq!(r.collectors[0].name, "rrc00", "columns sorted by name");
        let presence = r.presence();
        assert_eq!(presence.len(), 3, "3356:1, 3356:2, 3356:3");
        assert_eq!(presence[0], (Community::from_parts(3356, 1), vec![true, true]));
        let disputes = r.disagreements();
        assert_eq!(
            disputes,
            vec![
                (Community::from_parts(3356, 2), vec![true, false]),
                (Community::from_parts(3356, 3), vec![false, true]),
            ]
        );
        assert_eq!(r.agreement_summary(), (3, 1, 2));
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let r1 = report().render();
        let r2 = report().render();
        assert_eq!(r1, r2);
        assert!(r1.contains("Table 1"));
        assert!(r1.contains("rrc00"));
        assert!(r1.contains("rrc01"));
        assert!(r1.contains("all"));
        assert!(r1.contains("Community agreement: 3 distinct"));
        assert!(r1.contains("3356:2"));
    }

    #[test]
    fn combined_equals_merged_columns() {
        let r = report();
        assert_eq!(
            r.combined_overview.announcements,
            r.collectors.iter().map(|c| c.overview.announcements).sum::<u64>()
        );
        assert_eq!(r.stats.updates, 4);
    }
}
