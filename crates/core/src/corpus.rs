//! Cross-collector comparison — the analysis side of a multi-vantage
//! corpus run.
//!
//! The paper's Tables 1–3 aggregate many RIPE RIS / RouteViews
//! collectors, and related work (AS-level community-usage
//! classification, CommunityWatch) treats *cross-collector agreement*
//! as a signal in itself: a community seen at every vantage point is
//! propagating globally, one seen at a single collector is scoped,
//! filtered, or anomalous. This module turns one
//! [`run_corpus`](crate::pipeline::run_corpus) pass into that
//! comparison:
//!
//! * per-collector Table 1 and Table 2 columns side by side,
//! * a per-community presence/agreement matrix over the collectors,
//! * a deterministic disagreement list (communities visible at some but
//!   not all vantage points),
//! * the combined all-vantage table the per-collector results merge
//!   into.
//!
//! Everything is derived from integer counters and ordered sets merged
//! in collector-name order, so the report is byte-identical for any
//! member order or thread count.

use std::collections::{BTreeMap, BTreeSet};

use kcc_bgp_types::{Community, MessageKind, RouteUpdate};
use kcc_collector::{Corpus, SessionKey, SourceError};

use std::sync::Arc;

use crate::anomaly::CommunityProfiler;
use crate::classify::TypeCounts;
use crate::clean::{CleaningConfig, CleaningReport, CleaningStage};
use crate::pipeline::{AnalysisSink, CorpusOutput, Merge, PipelineBuilder, PipelineStats};
use crate::registry::AllocationRegistry;
use crate::report::{fmt_count, render_table};
use crate::stream::CountsSink;
use crate::table::{OverviewSink, OverviewStats, TypeShares};
use crate::watch::{WatchConfig, WatchReport, WatchSink};

/// Collects the set of distinct classic communities seen on a feed —
/// the per-collector half of the presence/agreement matrix. State grows
/// with the community *universe* (tens of thousands at internet scale),
/// never with update volume.
#[derive(Debug, Clone, Default)]
pub struct CommunitySetSink {
    seen: BTreeSet<Community>,
}

impl CommunitySetSink {
    /// The communities seen, in ascending order.
    pub fn finish(self) -> BTreeSet<Community> {
        self.seen
    }
}

impl AnalysisSink for CommunitySetSink {
    fn on_update(&mut self, _session: &SessionKey, u: &RouteUpdate) {
        if let MessageKind::Announcement(attrs) = &u.kind {
            self.seen.extend(attrs.communities.iter_classic().copied());
        }
    }

    fn wants_events(&self) -> bool {
        false
    }
}

impl Merge for CommunitySetSink {
    fn merge(&mut self, other: Self) {
        self.seen.extend(other.seen);
    }
}

/// The incremental cross-collector presence/agreement matrix: which
/// collectors have seen which communities, and in which detection
/// window each `(community, collector)` pair first appeared.
///
/// The batch corpus report builds one from the per-collector community
/// sets; the online watch service feeds it per window via [`observe`]
/// (every call is O(log n) — no whole-run recompute) and reads
/// per-window deltas back with [`window_delta`]. Shard and collector
/// merges take the earliest first-window per pair, so the matrix is
/// identical for any member order or thread count.
///
/// [`observe`]: AgreementMatrix::observe
/// [`window_delta`]: AgreementMatrix::window_delta
#[derive(Debug, Clone, Default)]
pub struct AgreementMatrix {
    /// All known collectors (columns), sorted by name.
    collectors: BTreeSet<String>,
    /// Per community: the collectors that saw it, with the window index
    /// of the first sighting.
    rows: BTreeMap<Community, BTreeMap<String, u64>>,
}

impl AgreementMatrix {
    /// An empty matrix; collectors register on first [`observe`] call.
    ///
    /// [`observe`]: AgreementMatrix::observe
    pub fn new() -> Self {
        Self::default()
    }

    /// A matrix with a fixed collector column set — use when some
    /// collectors may legitimately see nothing (their column must still
    /// exist for agreement to be judged against them).
    pub fn with_collectors<I: IntoIterator<Item = S>, S: Into<String>>(names: I) -> Self {
        AgreementMatrix {
            collectors: names.into_iter().map(Into::into).collect(),
            rows: BTreeMap::new(),
        }
    }

    /// Registers a collector column without observations.
    pub fn add_collector(&mut self, name: &str) {
        if !self.collectors.contains(name) {
            self.collectors.insert(name.to_owned());
        }
    }

    /// Records that `collector` saw `community` in detection window
    /// `window`. Returns `true` when this is the pair's first sighting
    /// (the per-window delta), `false` for a repeat. Earlier windows win
    /// if observations arrive out of order (merges replay shards).
    pub fn observe(&mut self, collector: &str, community: Community, window: u64) -> bool {
        self.add_collector(collector);
        let row = self.rows.entry(community).or_default();
        match row.get_mut(collector) {
            Some(first) => {
                if window < *first {
                    *first = window;
                }
                false
            }
            None => {
                row.insert(collector.to_owned(), window);
                true
            }
        }
    }

    /// Collector column names, sorted.
    pub fn collector_names(&self) -> impl Iterator<Item = &str> {
        self.collectors.iter().map(String::as_str)
    }

    /// Number of collector columns.
    pub fn collector_count(&self) -> usize {
        self.collectors.len()
    }

    /// Number of distinct communities seen anywhere.
    pub fn community_count(&self) -> usize {
        self.rows.len()
    }

    /// The presence matrix: every community, ascending, with one flag
    /// per collector (column order = sorted collector names).
    pub fn presence(&self) -> Vec<(Community, Vec<bool>)> {
        self.rows
            .iter()
            .map(|(comm, row)| {
                (*comm, self.collectors.iter().map(|c| row.contains_key(c)).collect())
            })
            .collect()
    }

    /// Communities seen by at least one but not every collector, with
    /// their presence flags, in ascending community order.
    pub fn disagreements(&self) -> Vec<(Community, Vec<bool>)> {
        self.presence().into_iter().filter(|(_, flags)| !flags.iter().all(|&f| f)).collect()
    }

    /// `(distinct communities, seen by every collector, disputed)`.
    pub fn summary(&self) -> (usize, usize, usize) {
        let total = self.rows.len();
        let n = self.collectors.len();
        let unanimous = self.rows.values().filter(|row| row.len() == n).count();
        (total, unanimous, total - unanimous)
    }

    /// The `(community, collector)` pairs first sighted in `window`, in
    /// ascending (community, collector) order — what changed in the
    /// matrix that window.
    pub fn window_delta(&self, window: u64) -> Vec<(Community, &str)> {
        self.rows
            .iter()
            .flat_map(|(comm, row)| {
                row.iter().filter(move |(_, &w)| w == window).map(|(c, _)| (*comm, c.as_str()))
            })
            .collect()
    }

    /// Folds another matrix in: collector columns union, first-window
    /// per pair takes the minimum. Order-independent.
    pub fn merge(&mut self, other: AgreementMatrix) {
        self.collectors.extend(other.collectors);
        for (comm, row) in other.rows {
            let mine = self.rows.entry(comm).or_default();
            for (collector, window) in row {
                mine.entry(collector)
                    .and_modify(|w| {
                        if window < *w {
                            *w = window;
                        }
                    })
                    .or_insert(window);
            }
        }
    }
}

/// The sink stack a corpus comparison runs per collector: Table 1,
/// Table 2 and the community-presence set.
pub type CorpusSink = (OverviewSink, CountsSink, CommunitySetSink);

/// A fresh [`CorpusSink`] (the factory `run_corpus` wants).
pub fn corpus_sink() -> CorpusSink {
    (OverviewSink::default(), CountsSink::default(), CommunitySetSink::default())
}

/// One collector's column of the comparison.
#[derive(Debug, Clone)]
pub struct CollectorColumn {
    /// Collector name.
    pub name: String,
    /// Its Table 1.
    pub overview: OverviewStats,
    /// Its Table 2 counts.
    pub counts: TypeCounts,
    /// What its §4 cleaning pass did.
    pub cleaning: CleaningReport,
    /// The distinct classic communities it observed.
    pub communities: BTreeSet<Community>,
    /// Its pipeline statistics.
    pub stats: PipelineStats,
}

/// The cross-collector comparison for one corpus run.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// Per-collector columns, sorted by collector name.
    pub collectors: Vec<CollectorColumn>,
    /// The combined all-vantage Table 1.
    pub combined_overview: OverviewStats,
    /// The combined all-vantage Table 2 counts.
    pub combined_counts: TypeCounts,
    /// The cross-collector presence/agreement matrix (built once from
    /// the per-collector community sets; [`presence`],
    /// [`disagreements`] and [`agreement_summary`] read it instead of
    /// recomputing the union per call).
    ///
    /// [`presence`]: CorpusReport::presence
    /// [`disagreements`]: CorpusReport::disagreements
    /// [`agreement_summary`]: CorpusReport::agreement_summary
    pub matrix: AgreementMatrix,
    /// Combined pipeline statistics (name-order merge of the columns).
    pub stats: PipelineStats,
}

/// How many disputed communities [`CorpusReport::render`] prints in the
/// presence matrix before eliding the tail (the count is always shown).
pub const MATRIX_RENDER_CAP: usize = 20;

/// Runs a corpus through per-collector §4 cleaning and the
/// [`CorpusSink`] stack, and folds the outputs into a [`CorpusReport`].
/// One registry covers all collectors (allocation is global); cleaning
/// state and reports stay per collector.
pub fn run_corpus_report(
    corpus: Corpus<'_>,
    threads: usize,
    registry: &AllocationRegistry,
    cleaning: CleaningConfig,
) -> Result<CorpusReport, SourceError> {
    let out = PipelineBuilder::collectors(corpus)
        .threads(threads)
        .stages_for(|_: &str| CleaningStage::new(registry, cleaning))
        .sinks_for(|_: &str| corpus_sink())
        .run()?;
    Ok(fold_report(out))
}

/// Runs the corpus through the report stack *and* a per-collector
/// [`WatchSink`] in the same pass: the batch comparison plus the
/// always-on detection service's merged [`WatchReport`] (typed
/// [`Alert`](crate::alert::Alert)s in canonical order). Attach a trained
/// profiler to enable the §7 point checks on top of the path/rate/outage
/// detections.
pub fn run_corpus_watch(
    corpus: Corpus<'_>,
    threads: usize,
    registry: &AllocationRegistry,
    cleaning: CleaningConfig,
    watch: WatchConfig,
    profiler: Option<Arc<CommunityProfiler>>,
) -> Result<(CorpusReport, WatchReport), SourceError> {
    let out = PipelineBuilder::collectors(corpus)
        .threads(threads)
        .stages_for(|_: &str| CleaningStage::new(registry, cleaning))
        .sinks_for(move |_: &str| {
            let sink = WatchSink::new(watch);
            let sink = match &profiler {
                Some(p) => sink.with_profile(Arc::clone(p)),
                None => sink,
            };
            (corpus_sink(), sink)
        })
        .run()?;
    let (combined_report, combined_watch) = out.combined;
    let per_collector = out
        .per_collector
        .into_iter()
        .map(|(name, o)| {
            let (report_sink, _watch) = o.sink;
            (
                name,
                crate::pipeline::PipelineOutput {
                    stages: o.stages,
                    sink: report_sink,
                    stats: o.stats,
                    profile: o.profile,
                },
            )
        })
        .collect();
    let report = fold_report(CorpusOutput {
        per_collector,
        combined: combined_report,
        stats: out.stats,
        profile: out.profile,
    });
    Ok((report, combined_watch.finish()))
}

/// Folds one corpus run's per-collector outputs into the comparison.
fn fold_report(out: CorpusOutput<CleaningStage<'_>, CorpusSink>) -> CorpusReport {
    let (combined_overview, combined_counts, _) = out.combined;
    let collectors: Vec<CollectorColumn> = out
        .per_collector
        .into_iter()
        .map(|(name, o)| {
            let (overview, counts, communities) = o.sink;
            CollectorColumn {
                name,
                overview: overview.finish(),
                counts: counts.finish(),
                cleaning: o.stages.report(),
                communities: communities.finish(),
                stats: o.stats,
            }
        })
        .collect();
    let mut matrix = AgreementMatrix::with_collectors(collectors.iter().map(|c| c.name.clone()));
    for col in &collectors {
        for comm in &col.communities {
            matrix.observe(&col.name, *comm, 0);
        }
    }
    CorpusReport {
        collectors,
        combined_overview: combined_overview.finish(),
        combined_counts: combined_counts.finish(),
        matrix,
        stats: out.stats,
    }
}

impl CorpusReport {
    /// Number of collectors.
    pub fn collector_count(&self) -> usize {
        self.collectors.len()
    }

    /// Registers the per-collector progress counters in `registry`,
    /// labeled `collector="name"`: updates pulled, updates kept, streams
    /// touched, and what the §4 cleaning pass dropped. Collector-order
    /// independent — the registry renders name-sorted regardless of
    /// registration order.
    pub fn export_metrics(&self, registry: &kcc_obs::Registry) {
        for col in &self.collectors {
            let labels: &[(&str, &str)] = &[("collector", &col.name)];
            registry.counter_with("kcc_corpus_updates_total", labels).add(col.stats.updates);
            registry.counter_with("kcc_corpus_updates_kept_total", labels).add(col.stats.kept);
            registry.gauge_with("kcc_corpus_streams", labels).set(col.stats.streams as i64);
            registry
                .counter_with("kcc_corpus_cleaning_dropped_asn_total", labels)
                .add(col.cleaning.removed_unallocated_asn);
            registry
                .counter_with("kcc_corpus_cleaning_dropped_prefix_total", labels)
                .add(col.cleaning.removed_unallocated_prefix);
            registry
                .counter_with("kcc_corpus_sessions_normalized_total", labels)
                .add(col.cleaning.sessions_normalized);
        }
        registry.counter("kcc_corpus_combined_updates_total").add(self.stats.updates);
    }

    /// The presence matrix: every community seen anywhere, ascending,
    /// with one presence flag per collector (column order =
    /// `self.collectors` order, i.e. sorted names). Reads the
    /// incremental [`AgreementMatrix`] — no per-call union recompute.
    pub fn presence(&self) -> Vec<(Community, Vec<bool>)> {
        self.matrix.presence()
    }

    /// A community row is disputed when some but not all collectors saw
    /// it. (Every `presence()` row has at least one flag set.)
    fn is_disputed(flags: &[bool]) -> bool {
        !flags.iter().all(|&f| f)
    }

    /// Communities seen by at least one but not every collector —
    /// the disagreement list, in ascending community order (total and
    /// deterministic).
    pub fn disagreements(&self) -> Vec<(Community, Vec<bool>)> {
        self.matrix.disagreements()
    }

    /// `(distinct communities, seen by every collector, disputed)` —
    /// `total = unanimous + disputed`.
    pub fn agreement_summary(&self) -> (usize, usize, usize) {
        self.matrix.summary()
    }

    fn summarize(presence: &[(Community, Vec<bool>)]) -> (usize, usize, usize) {
        let total = presence.len();
        let disputed = presence.iter().filter(|(_, flags)| Self::is_disputed(flags)).count();
        (total, total - disputed, disputed)
    }

    /// Renders the full comparison: per-collector Table 1 + Table 2 side
    /// by side (with the combined column), cleaning summary, agreement
    /// summary and the disputed-community presence matrix (capped at
    /// [`MATRIX_RENDER_CAP`] rows). Byte-identical for any member order
    /// or thread count.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let names: Vec<&str> = self.collectors.iter().map(|c| c.name.as_str()).collect();
        out.push_str(&format!(
            "Corpus: {} collectors ({}), {} updates\n\n",
            self.collectors.len(),
            names.join(", "),
            fmt_count(self.stats.updates),
        ));

        // Table 1, one column per collector plus the combined day.
        let mut headers: Vec<&str> = vec!["Table 1"];
        headers.extend(names.iter().copied());
        headers.push("all");
        type OverviewField = (&'static str, fn(&OverviewStats) -> u64);
        let field_rows: [OverviewField; 10] = [
            ("IPv4 prefixes", |s| s.ipv4_prefixes),
            ("IPv6 prefixes", |s| s.ipv6_prefixes),
            ("ASes", |s| s.ases),
            ("Sessions", |s| s.sessions),
            ("Peers", |s| s.peers),
            ("Announcements", |s| s.announcements),
            ("w/ communities", |s| s.with_communities),
            ("uniq. 16 bits", |s| s.uniq_16bit),
            ("uniq. AS paths", |s| s.uniq_as_paths),
            ("Withdrawals", |s| s.withdrawals),
        ];
        let rows: Vec<Vec<String>> = field_rows
            .iter()
            .map(|(label, get)| {
                let mut row = vec![label.to_string()];
                row.extend(self.collectors.iter().map(|c| fmt_count(get(&c.overview))));
                row.push(fmt_count(get(&self.combined_overview)));
                row
            })
            .collect();
        out.push_str(&render_table(&headers, &rows));
        out.push('\n');

        // §4 cleaning, per collector.
        let mut headers: Vec<&str> = vec!["Cleaning"];
        headers.extend(names.iter().copied());
        type CleaningField = (&'static str, fn(&CleaningReport) -> u64);
        let cleaning_rows: [CleaningField; 4] = [
            ("kept", |r| r.kept),
            ("bogon ASN drops", |r| r.removed_unallocated_asn),
            ("bogon prefix drops", |r| r.removed_unallocated_prefix),
            ("normalized sessions", |r| r.sessions_normalized),
        ];
        let rows: Vec<Vec<String>> = cleaning_rows
            .iter()
            .map(|(label, get)| {
                let mut row = vec![label.to_string()];
                row.extend(self.collectors.iter().map(|c| fmt_count(get(&c.cleaning))));
                row
            })
            .collect();
        out.push_str(&render_table(&headers, &rows));
        out.push('\n');

        // Table 2 side by side.
        let mut columns: Vec<(String, TypeCounts)> =
            self.collectors.iter().map(|c| (c.name.clone(), c.counts)).collect();
        columns.push(("all".into(), self.combined_counts));
        out.push_str(&TypeShares::new(columns).render());
        out.push('\n');

        // Community agreement (one presence-matrix pass feeds both the
        // summary and the disagreement rows).
        let presence = self.presence();
        let (total, unanimous, disputed) = Self::summarize(&presence);
        let share = if total == 0 { 0.0 } else { unanimous as f64 * 100.0 / total as f64 };
        out.push_str(&format!(
            "Community agreement: {total} distinct communities; {unanimous} \
             ({share:.1}%) seen at all {} collectors; {disputed} disputed\n",
            self.collectors.len(),
        ));
        let disagreements: Vec<&(Community, Vec<bool>)> =
            presence.iter().filter(|(_, flags)| Self::is_disputed(flags)).collect();
        if !disagreements.is_empty() {
            let mut headers: Vec<&str> = vec!["community"];
            headers.extend(names.iter().copied());
            let rows: Vec<Vec<String>> = disagreements
                .iter()
                .take(MATRIX_RENDER_CAP)
                .map(|(comm, flags)| {
                    let mut row = vec![comm.to_string()];
                    row.extend(flags.iter().map(|&f| (if f { "+" } else { "." }).to_string()));
                    row
                })
                .collect();
            out.push_str(&render_table(&headers, &rows));
            if disagreements.len() > MATRIX_RENDER_CAP {
                out.push_str(&format!(
                    "… and {} more disputed communities\n",
                    disagreements.len() - MATRIX_RENDER_CAP
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{Asn, CommunitySet, PathAttributes, Prefix};
    use kcc_collector::{ArchiveSource, UpdateArchive};

    fn announce(t: u64, comms: &[(u16, u16)]) -> RouteUpdate {
        let attrs = PathAttributes {
            as_path: "20205 3356 12654".parse().unwrap(),
            communities: CommunitySet::from_classic(
                comms.iter().map(|&(a, v)| Community::from_parts(a, v)),
            ),
            ..Default::default()
        };
        RouteUpdate::announce(t, "84.205.64.0/24".parse().unwrap(), attrs)
    }

    fn archive(collector: &str, comms: &[&[(u16, u16)]]) -> UpdateArchive {
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new(collector, Asn(20_205), "192.0.2.9".parse().unwrap());
        for (i, c) in comms.iter().enumerate() {
            a.record(&k, announce(i as u64, c));
        }
        a
    }

    fn registry() -> AllocationRegistry {
        let mut r = AllocationRegistry::new();
        for asn in [20_205u32, 3356, 12_654] {
            r.register_asn(Asn(asn), 0);
        }
        r.register_block("84.205.0.0/16".parse::<Prefix>().unwrap(), 0);
        r
    }

    fn report() -> CorpusReport {
        let a = archive("rrc00", &[&[(3356, 1)], &[(3356, 2)]]);
        let b = archive("rrc01", &[&[(3356, 1)], &[(3356, 3)]]);
        let corpus = Corpus::new()
            .with("rrc01", ArchiveSource::new(&b))
            .unwrap()
            .with("rrc00", ArchiveSource::new(&a))
            .unwrap();
        run_corpus_report(corpus, 2, &registry(), CleaningConfig::default()).unwrap()
    }

    #[test]
    fn presence_and_disagreements() {
        let r = report();
        assert_eq!(r.collectors[0].name, "rrc00", "columns sorted by name");
        let presence = r.presence();
        assert_eq!(presence.len(), 3, "3356:1, 3356:2, 3356:3");
        assert_eq!(presence[0], (Community::from_parts(3356, 1), vec![true, true]));
        let disputes = r.disagreements();
        assert_eq!(
            disputes,
            vec![
                (Community::from_parts(3356, 2), vec![true, false]),
                (Community::from_parts(3356, 3), vec![false, true]),
            ]
        );
        assert_eq!(r.agreement_summary(), (3, 1, 2));
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let r1 = report().render();
        let r2 = report().render();
        assert_eq!(r1, r2);
        assert!(r1.contains("Table 1"));
        assert!(r1.contains("rrc00"));
        assert!(r1.contains("rrc01"));
        assert!(r1.contains("all"));
        assert!(r1.contains("Community agreement: 3 distinct"));
        assert!(r1.contains("3356:2"));
    }

    #[test]
    fn matrix_observe_reports_first_sightings_incrementally() {
        let mut m = AgreementMatrix::new();
        let c = Community::from_parts(3356, 1);
        assert!(m.observe("rrc00", c, 3), "first sighting is a delta");
        assert!(!m.observe("rrc00", c, 5), "repeat is not");
        assert!(!m.observe("rrc00", c, 1), "earlier repeat is not a delta either");
        assert_eq!(m.window_delta(1), vec![(c, "rrc00")], "…but it rewinds the first window");
        assert!(m.window_delta(3).is_empty());
        assert!(m.observe("rrc01", c, 4), "same community, new collector: a delta");
        assert_eq!(m.summary(), (1, 1, 0));
    }

    #[test]
    fn matrix_merge_is_order_independent() {
        let a = Community::from_parts(3356, 1);
        let b = Community::from_parts(3356, 2);
        let mut left = AgreementMatrix::new();
        left.observe("rrc00", a, 2);
        left.observe("rrc00", b, 7);
        let mut right = AgreementMatrix::new();
        right.observe("rrc00", a, 5);
        right.observe("rrc01", a, 1);

        let mut fwd = left.clone();
        fwd.merge(right.clone());
        let mut rev = right;
        rev.merge(left);
        assert_eq!(fwd.presence(), rev.presence());
        assert_eq!(fwd.window_delta(1), rev.window_delta(1));
        assert_eq!(fwd.window_delta(2), vec![(a, "rrc00")], "min first-window wins");
        assert_eq!(fwd.summary(), (2, 1, 1));
    }

    #[test]
    fn matrix_keeps_empty_collector_columns() {
        let mut m = AgreementMatrix::with_collectors(["rrc00", "rrc01"]);
        m.observe("rrc00", Community::from_parts(3356, 1), 0);
        // rrc01 saw nothing, but its column still makes the row disputed.
        assert_eq!(m.summary(), (1, 0, 1));
        assert_eq!(m.presence()[0].1, vec![true, false]);
    }

    #[test]
    fn report_matrix_matches_column_sets() {
        let r = report();
        assert_eq!(r.matrix.collector_count(), 2);
        assert_eq!(r.matrix.community_count(), 3);
        assert_eq!(r.matrix.summary(), r.agreement_summary());
    }

    #[test]
    fn combined_equals_merged_columns() {
        let r = report();
        assert_eq!(
            r.combined_overview.announcements,
            r.collectors.iter().map(|c| c.overview.announcements).sum::<u64>()
        );
        assert_eq!(r.stats.updates, 4);
    }
}
